//! Product machines and miters for sequential equivalence checking.

use crate::model::{GateKind, Netlist, NetlistBuilder};
use crate::Result;

/// Builds the synchronous product of two machines driven by *shared*
/// primary inputs, with one XNOR **miter** output per output pair
/// (`1` = the outputs agree this cycle).
///
/// The two machines must have the same number of inputs (matched
/// positionally) and the same number of outputs. Internal signals are
/// prefixed `l$`/`r$` to avoid collisions; inputs keep `a`'s names.
///
/// Together with the reachability engines this gives sequential
/// equivalence checking: the machines are equivalent from their reset
/// states iff every miter output is 1 on every reachable state under
/// every input.
///
/// ```
/// use bfvr_netlist::{generators, product};
///
/// # fn main() -> Result<(), bfvr_netlist::NetlistError> {
/// let a = generators::counter(4);
/// let b = generators::counter(4);
/// let p = product::product_miter(&a, &b)?;
/// assert_eq!(p.latches().len(), 8);
/// assert_eq!(p.outputs().len(), 1); // one miter per output pair
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a [`crate::NetlistError`] if the interfaces do not match or a
/// netlist is malformed.
pub fn product_miter(a: &Netlist, b: &Netlist) -> Result<Netlist> {
    if a.inputs().len() != b.inputs().len() {
        return Err(crate::NetlistError::Parse {
            line: 0,
            message: format!(
                "input count mismatch: {} vs {}",
                a.inputs().len(),
                b.inputs().len()
            ),
        });
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(crate::NetlistError::Parse {
            line: 0,
            message: format!(
                "output count mismatch: {} vs {}",
                a.outputs().len(),
                b.outputs().len()
            ),
        });
    }
    let mut builder = NetlistBuilder::new(format!("{}_x_{}", a.name(), b.name()));
    // Shared inputs, named after `a`'s.
    let input_names: Vec<String> = a
        .inputs()
        .iter()
        .map(|&s| a.signal_name(s).to_string())
        .collect();
    for name in &input_names {
        builder.input(name)?;
    }
    copy_side(&mut builder, a, "l$", &input_names)?;
    copy_side(&mut builder, b, "r$", &input_names)?;
    for (i, (&oa, &ob)) in a.outputs().iter().zip(b.outputs()).enumerate() {
        let la = format!("l${}", a.signal_name(oa));
        let rb = format!("r${}", b.signal_name(ob));
        let miter = format!("eq{i}");
        builder.gate(&miter, GateKind::Xnor, &[la.as_str(), rb.as_str()])?;
        builder.output(&miter);
    }
    builder.finish()
}

/// Copies one machine into the product under a signal prefix, mapping its
/// primary inputs to the shared ones.
fn copy_side(
    builder: &mut NetlistBuilder,
    net: &Netlist,
    prefix: &str,
    shared_inputs: &[String],
) -> Result<()> {
    let rename = |net: &Netlist, s: crate::SignalId| -> String {
        if let Some(pos) = net.inputs().iter().position(|&i| i == s) {
            shared_inputs[pos].clone()
        } else {
            format!("{prefix}{}", net.signal_name(s))
        }
    };
    for l in net.latches() {
        builder.latch(rename(net, l.output), rename(net, l.input), l.init)?;
    }
    for g in net.gates() {
        let ins: Vec<String> = g.inputs.iter().map(|&s| rename(net, s)).collect();
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        builder.gate(rename(net, g.output), g.kind.clone(), &refs)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn product_shape() {
        let a = generators::counter(3);
        let b = generators::counter(3);
        let p = product_miter(&a, &b).unwrap();
        assert_eq!(p.inputs().len(), 1);
        assert_eq!(p.latches().len(), 6);
        assert_eq!(p.outputs().len(), 1);
        assert_eq!(p.name(), "cnt3_x_cnt3");
    }

    #[test]
    fn identical_machines_always_agree() {
        let a = generators::johnson(4);
        let b = generators::johnson(4);
        let p = product_miter(&a, &b).unwrap();
        // Simulate a while: the miter must stay 1.
        let order = crate::topo::order(&p).unwrap();
        let mut state = p.initial_state();
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..100 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let mut vals = vec![false; p.num_signals()];
            vals[p.inputs()[0].index()] = rng & 1 == 1;
            for (i, l) in p.latches().iter().enumerate() {
                vals[l.output.index()] = state[i];
            }
            for &g in &order {
                let gate = &p.gates()[g];
                let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&ins);
            }
            assert!(
                vals[p.outputs()[0].index()],
                "miter dropped on identical machines"
            );
            state = p.latches().iter().map(|l| vals[l.input.index()]).collect();
        }
    }

    #[test]
    fn interface_mismatch_rejected() {
        let a = generators::counter(3); // 1 input
        let b = generators::queue_controller(2); // 2 inputs
        assert!(product_miter(&a, &b).is_err());
    }

    #[test]
    fn different_machines_can_disagree() {
        // A counter vs a Gray counter share the interface (1 input,
        // 1 output) but differ behaviourally.
        let a = generators::counter(3);
        let b = generators::gray(3);
        let p = product_miter(&a, &b).unwrap();
        let order = crate::topo::order(&p).unwrap();
        let mut state = p.initial_state();
        let mut disagreed = false;
        for _ in 0..16 {
            let mut vals = vec![false; p.num_signals()];
            vals[p.inputs()[0].index()] = true;
            for (i, l) in p.latches().iter().enumerate() {
                vals[l.output.index()] = state[i];
            }
            for &g in &order {
                let gate = &p.gates()[g];
                let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&ins);
            }
            if !vals[p.outputs()[0].index()] {
                disagreed = true;
            }
            state = p.latches().iter().map(|l| vals[l.input.index()]).collect();
        }
        assert!(disagreed, "expected the outputs to diverge somewhere");
    }
}
