//! Generators with strong structural invariants: paired registers, FIFO
//! queue controller, one-hot rotator and coupled traffic controllers.

use crate::model::{GateKind, Netlist, NetlistBuilder};

use super::BuilderExt;

/// `p` pairs of twin registers: both registers of pair `i` load the same
/// value `a_i ⊕ d_i` each cycle, so `a_i = b_i` invariantly.
///
/// The reachable set is exactly the paper's §3 variable-ordering example
/// `χ = ⋀ᵢ (a_i ↔ b_i)`: its characteristic-function BDD is linear when
/// the pairs are interleaved in the order and *exponential* when all `a`s
/// precede all `b`s, while the Boolean functional vector stays linear
/// under **any** order (the dependency `b_i = a_i` is factored out by the
/// representation). The latch declaration order is `a0 … a{p-1} b0 …
/// b{p-1}` — the hostile order — so ordering heuristics must work for it.
///
/// # Panics
///
/// Panics if `p == 0`.
#[must_use]
pub fn paired_registers(p: u32) -> Netlist {
    assert!(p > 0, "need at least one pair");
    let mut b = NetlistBuilder::new(format!("pair{p}"));
    for i in 0..p {
        b.input(format!("d{i}")).expect("fresh");
    }
    for i in 0..p {
        b.latch(format!("a{i}"), format!("n{i}"), false)
            .expect("fresh");
    }
    for i in 0..p {
        b.latch(format!("b{i}"), format!("nb{i}"), false)
            .expect("fresh");
    }
    for i in 0..p {
        b.gate(
            format!("n{i}"),
            GateKind::Xor,
            &[format!("a{i}").as_str(), format!("d{i}").as_str()],
        )
        .expect("fresh");
        b.gate(format!("nb{i}"), GateKind::Buf, &[format!("n{i}").as_str()])
            .expect("fresh");
    }
    let eq0 = "eq0".to_string();
    b.gate(&eq0, GateKind::Xnor, &["a0", "b0"]).expect("fresh");
    b.gate("match", GateKind::Buf, &[eq0.as_str()])
        .expect("fresh");
    b.output("match");
    b.finish().expect("paired registers are structurally valid")
}

/// A FIFO queue controller with `2^k` slots: `head` and `tail` pointers
/// (`k` bits each) and a `count` register (`k+1` bits), driven by `push`
/// and `pop` requests that are ignored when full/empty.
///
/// Reachable states satisfy `tail = head + count (mod 2^k)` — a functional
/// dependency across register *groups* that the BFV representation factors
/// out while the characteristic function must encode it across the
/// variable order.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 8`.
pub fn queue_controller(k: u32) -> Netlist {
    assert!((1..=8).contains(&k), "queue supports 1..=8 pointer bits");
    let mut b = NetlistBuilder::new(format!("queue{k}"));
    b.input("push").expect("fresh");
    b.input("pop").expect("fresh");
    for i in 0..k {
        b.latch(format!("h{i}"), format!("nh{i}"), false)
            .expect("fresh");
    }
    for i in 0..=k {
        b.latch(format!("q{i}"), format!("nq{i}"), false)
            .expect("fresh");
    }
    for i in 0..k {
        b.latch(format!("t{i}"), format!("nt{i}"), false)
            .expect("fresh");
    }
    // full = count == 2^k (bit k set); empty = count == 0.
    b.gate("full", GateKind::Buf, &[format!("q{k}").as_str()])
        .expect("fresh");
    let qrefs: Vec<String> = (0..=k).map(|i| format!("q{i}")).collect();
    let qr: Vec<&str> = qrefs.iter().map(String::as_str).collect();
    b.gate("empty", GateKind::Nor, &qr).expect("fresh");
    b.gate("nfull", GateKind::Not, &["full"]).expect("fresh");
    b.gate("nempty", GateKind::Not, &["empty"]).expect("fresh");
    b.gate("do_push", GateKind::And, &["push", "nfull"])
        .expect("fresh");
    b.gate("do_pop", GateKind::And, &["pop", "nempty"])
        .expect("fresh");
    // head' = head + do_pop ; tail' = tail + do_push (k-bit wrap-around).
    incrementer(&mut b, "h", "nh", k, "do_pop");
    incrementer(&mut b, "t", "nt", k, "do_push");
    // count' = count + do_push − do_pop: up when push-only, down when
    // pop-only, hold otherwise.
    b.gate("npop", GateKind::Not, &["do_pop"]).expect("fresh");
    b.gate("npush", GateKind::Not, &["do_push"]).expect("fresh");
    b.gate("up", GateKind::And, &["do_push", "npop"])
        .expect("fresh");
    b.gate("down", GateKind::And, &["do_pop", "npush"])
        .expect("fresh");
    // Increment and decrement candidates for count.
    incrementer(&mut b, "q", "qinc", k + 1, "up");
    decrementer(&mut b, "q", "qdec", k + 1, "down");
    for i in 0..=k {
        // If up: qinc; if down: qdec; else hold. up/down are exclusive and
        // the candidate networks already hold when their enable is low, so
        // nq = down ? qdec : qinc covers all three cases.
        b.mux(
            &format!("nq{i}"),
            "down",
            &format!("qdec{i}"),
            &format!("qinc{i}"),
        );
    }
    b.output("full");
    b.output("empty");
    b.finish().expect("queue controller is structurally valid")
}

/// Ripple incrementer: `dst = src + en` over `n` bits.
fn incrementer(b: &mut NetlistBuilder, src: &str, dst: &str, n: u32, en: &str) {
    b.gate(format!("{dst}$c0"), GateKind::Buf, &[en])
        .expect("fresh");
    for i in 0..n {
        let s = format!("{src}{i}");
        let c = format!("{dst}$c{i}");
        let nc = format!("{dst}$c{}", i + 1);
        b.gate(
            format!("{dst}{i}"),
            GateKind::Xor,
            &[s.as_str(), c.as_str()],
        )
        .expect("fresh");
        b.gate(&nc, GateKind::And, &[c.as_str(), s.as_str()])
            .expect("fresh");
    }
}

/// Ripple decrementer: `dst = src − en` over `n` bits.
fn decrementer(b: &mut NetlistBuilder, src: &str, dst: &str, n: u32, en: &str) {
    b.gate(format!("{dst}$b0"), GateKind::Buf, &[en])
        .expect("fresh");
    for i in 0..n {
        let s = format!("{src}{i}");
        let c = format!("{dst}$b{i}");
        let nc = format!("{dst}$b{}", i + 1);
        b.gate(
            format!("{dst}{i}"),
            GateKind::Xor,
            &[s.as_str(), c.as_str()],
        )
        .expect("fresh");
        let sn = format!("{dst}$n{i}");
        b.gate(&sn, GateKind::Not, &[s.as_str()]).expect("fresh");
        b.gate(&nc, GateKind::And, &[c.as_str(), sn.as_str()])
            .expect("fresh");
    }
}

/// An `n`-station one-hot token rotator (round-robin arbiter core).
///
/// Exactly one of the `n` grant flops holds the token (reset: station 0);
/// the `adv` input rotates it. Only `n` of `2^n` states are reachable —
/// an extremely sparse constraint set.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn rotator(n: u32) -> Netlist {
    assert!(n >= 2, "rotator needs at least two stations");
    let mut b = NetlistBuilder::new(format!("rot{n}"));
    b.input("adv").expect("fresh");
    b.latch("t0", "nt0", true).expect("fresh");
    for i in 1..n {
        b.latch(format!("t{i}"), format!("nt{i}"), false)
            .expect("fresh");
    }
    for i in 0..n {
        let prev = format!("t{}", (i + n as usize as u32 - 1) % n);
        let cur = format!("t{i}");
        b.mux(&format!("nt{i}"), "adv", &prev, &cur);
    }
    b.gate("grant0", GateKind::Buf, &["t0"]).expect("fresh");
    b.output("grant0");
    b.finish().expect("rotator is structurally valid")
}

/// A chain of `k` two-bit cyclic controllers; stage `i` advances only when
/// stage `i-1` is in its final phase (stage 0 advances on the `go` input).
///
/// The coupling creates a long sequential depth with a product-structured
/// but constrained reachable set.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn traffic_chain(k: u32) -> Netlist {
    assert!(k > 0, "traffic chain needs at least one stage");
    let mut b = NetlistBuilder::new(format!("traffic{k}"));
    b.input("go").expect("fresh");
    for i in 0..k {
        b.latch(format!("p0_{i}"), format!("np0_{i}"), false)
            .expect("fresh");
        b.latch(format!("p1_{i}"), format!("np1_{i}"), false)
            .expect("fresh");
    }
    b.gate("en_0", GateKind::Buf, &["go"]).expect("fresh");
    for i in 0..k {
        let p0 = format!("p0_{i}");
        let p1 = format!("p1_{i}");
        let en = format!("en_{i}");
        // Two-bit counter: p0' = p0 ⊕ en; p1' = p1 ⊕ (en ∧ p0).
        b.gate(
            format!("x0_{i}"),
            GateKind::Xor,
            &[p0.as_str(), en.as_str()],
        )
        .expect("fresh");
        b.gate(format!("c_{i}"), GateKind::And, &[en.as_str(), p0.as_str()])
            .expect("fresh");
        b.gate(
            format!("x1_{i}"),
            GateKind::Xor,
            &[p1.as_str(), format!("c_{i}").as_str()],
        )
        .expect("fresh");
        b.gate(
            format!("np0_{i}"),
            GateKind::Buf,
            &[format!("x0_{i}").as_str()],
        )
        .expect("fresh");
        b.gate(
            format!("np1_{i}"),
            GateKind::Buf,
            &[format!("x1_{i}").as_str()],
        )
        .expect("fresh");
        // Next stage advances when this stage is in phase 3 and advancing.
        let both = format!("ph3_{i}");
        b.gate(&both, GateKind::And, &[p0.as_str(), p1.as_str()])
            .expect("fresh");
        b.gate(
            format!("en_{}", i + 1),
            GateKind::And,
            &[both.as_str(), en.as_str()],
        )
        .expect("fresh");
    }
    b.gate("done", GateKind::Buf, &[format!("en_{k}").as_str()])
        .expect("fresh");
    b.output("done");
    b.finish().expect("traffic chain is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::super::testutil::step;
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paired_registers_keep_twins_equal() {
        let p = 4;
        let net = paired_registers(p);
        let mut st = net.initial_state();
        let mut rng = 0x2545F4914F6CDD1Du64;
        for _ in 0..50 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let ins: Vec<bool> = (0..p).map(|i| rng >> i & 1 == 1).collect();
            st = step(&net, &st, &ins);
            for i in 0..p as usize {
                assert_eq!(st[i], st[p as usize + i], "twin {i} diverged");
            }
        }
    }

    #[test]
    fn queue_invariant_holds() {
        let k = 3;
        let net = queue_controller(k);
        let cap = 1u64 << k;
        let mut st = net.initial_state();
        let mut rng = 0x9E3779B97F4A7C15u64;
        let read = |st: &[bool]| {
            let h: u64 = (0..k as usize).map(|i| (st[i] as u64) << i).sum();
            let q: u64 = (0..=k as usize)
                .map(|i| (st[k as usize + i] as u64) << i)
                .sum();
            let t: u64 = (0..k as usize)
                .map(|i| (st[(2 * k as usize + 1) + i] as u64) << i)
                .sum();
            (h, q, t)
        };
        for _ in 0..300 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            st = step(&net, &st, &[rng & 1 == 1, rng & 2 == 2]);
            let (h, q, t) = read(&st);
            assert!(q <= cap, "count overflow: {q}");
            assert_eq!(t, (h + q) % cap, "pointer invariant violated");
        }
    }

    #[test]
    fn rotator_is_one_hot() {
        let n = 5;
        let net = rotator(n);
        let mut st = net.initial_state();
        let mut seen = HashSet::new();
        for i in 0..3 * n as usize {
            assert_eq!(
                st.iter().filter(|&&b| b).count(),
                1,
                "not one-hot at step {i}"
            );
            seen.insert(st.clone());
            st = step(&net, &st, &[true]);
        }
        assert_eq!(seen.len(), n as usize);
        let held = step(&net, &st, &[false]);
        assert_eq!(held, st);
    }

    #[test]
    fn traffic_chain_counts_slowly() {
        let net = traffic_chain(2);
        let mut st = net.initial_state();
        // Stage 1 advances once per 4 advances of stage 0.
        for _ in 0..4 {
            st = step(&net, &st, &[true]);
        }
        // After 4 go-steps: stage 0 back to phase 0, stage 1 in phase 1.
        assert_eq!(st, vec![false, false, true, false]);
    }
}
