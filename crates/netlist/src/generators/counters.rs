//! Counter-style generators: binary, mod-k and Gray-code counters.

use crate::model::{GateKind, Netlist, NetlistBuilder};

/// An `n`-bit binary up-counter with an enable input.
///
/// Latches `c0` (LSB) … `c{n-1}`; input `en`; output `ov` (carry out of
/// the top bit). All `2^n` states are reachable; the fix-point takes `2^n`
/// image steps from the all-zero reset when stepping one count per cycle,
/// but the enable keeps every prefix set closed (reached sets are the
/// intervals `[0, t]` — a dense, well-conditioned family).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn counter(n: u32) -> Netlist {
    assert!(n > 0, "counter needs at least one bit");
    let mut b = NetlistBuilder::new(format!("cnt{n}"));
    b.input("en").expect("fresh");
    for i in 0..n {
        b.latch(format!("c{i}"), format!("nc{i}"), false)
            .expect("fresh");
    }
    b.gate("cr0", GateKind::Buf, &["en"]).expect("fresh");
    for i in 0..n {
        let c = format!("c{i}");
        let cr = format!("cr{i}");
        let ncr = format!("cr{}", i + 1);
        b.gate(format!("nc{i}"), GateKind::Xor, &[c.as_str(), cr.as_str()])
            .expect("fresh");
        b.gate(&ncr, GateKind::And, &[cr.as_str(), c.as_str()])
            .expect("fresh");
    }
    b.gate("ov", GateKind::Buf, &[format!("cr{n}").as_str()])
        .expect("fresh");
    b.output("ov");
    b.finish().expect("counter is structurally valid")
}

/// An `n`-bit mod-`k` counter: counts `0 … k-1` and wraps to 0.
///
/// Exactly `k` of the `2^n` states are reachable and the traversal needs
/// `k` image computations — the "deep fix-point" family.
///
/// # Panics
///
/// Panics if `n == 0`, `k < 2` or `k > 2^n`.
pub fn counter_modk(n: u32, k: u64) -> Netlist {
    assert!(n > 0 && k >= 2, "mod-k counter needs n ≥ 1 and k ≥ 2");
    assert!(n >= 64 || k <= 1u64 << n, "k must fit in n bits");
    let mut b = NetlistBuilder::new(format!("mod{k}x{n}"));
    b.input("en").expect("fresh");
    for i in 0..n {
        b.latch(format!("c{i}"), format!("nc{i}"), false)
            .expect("fresh");
    }
    // eq = (counter == k-1)
    let top = k - 1;
    let mut eq_terms = Vec::new();
    for i in 0..n {
        let bit = (top >> i) & 1 == 1;
        let t = format!("eq{i}");
        if bit {
            b.gate(&t, GateKind::Buf, &[format!("c{i}").as_str()])
                .expect("fresh");
        } else {
            b.gate(&t, GateKind::Not, &[format!("c{i}").as_str()])
                .expect("fresh");
        }
        eq_terms.push(t);
    }
    let refs: Vec<&str> = eq_terms.iter().map(String::as_str).collect();
    b.gate("eq", GateKind::And, &refs).expect("fresh");
    b.gate("wrap", GateKind::And, &["eq", "en"]).expect("fresh");
    b.gate("keep", GateKind::Not, &["wrap"]).expect("fresh");
    // Incrementer with the wrap squashing each next bit to 0.
    b.gate("cr0", GateKind::Buf, &["en"]).expect("fresh");
    for i in 0..n {
        let c = format!("c{i}");
        let cr = format!("cr{i}");
        b.gate(format!("inc{i}"), GateKind::Xor, &[c.as_str(), cr.as_str()])
            .expect("fresh");
        b.gate(
            format!("cr{}", i + 1),
            GateKind::And,
            &[cr.as_str(), c.as_str()],
        )
        .expect("fresh");
        b.gate(
            format!("nc{i}"),
            GateKind::And,
            &[format!("inc{i}").as_str(), "keep"],
        )
        .expect("fresh");
    }
    b.gate("atmax", GateKind::Buf, &["eq"]).expect("fresh");
    b.output("atmax");
    b.finish().expect("mod-k counter is structurally valid")
}

/// An `n`-bit Gray-code counter with an enable input.
///
/// State bits hold a Gray code; the next state is the Gray encoding of the
/// incremented binary value. Adjacent states differ in one bit, all `2^n`
/// states are reachable, and the traversal takes `2^n` steps — a deep
/// fix-point with XOR-rich logic.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn gray(n: u32) -> Netlist {
    assert!(n > 0, "gray counter needs at least one bit");
    let mut b = NetlistBuilder::new(format!("gray{n}"));
    b.input("en").expect("fresh");
    for i in 0..n {
        b.latch(format!("g{i}"), format!("ng{i}"), false)
            .expect("fresh");
    }
    // Decode to binary: b_{n-1} = g_{n-1}; b_i = b_{i+1} ⊕ g_i.
    b.gate(
        format!("b{}", n - 1),
        GateKind::Buf,
        &[format!("g{}", n - 1).as_str()],
    )
    .expect("fresh");
    for i in (0..n - 1).rev() {
        b.gate(
            format!("b{i}"),
            GateKind::Xor,
            &[format!("b{}", i + 1).as_str(), format!("g{i}").as_str()],
        )
        .expect("fresh");
    }
    // Increment the binary value (gated by en).
    b.gate("cr0", GateKind::Buf, &["en"]).expect("fresh");
    for i in 0..n {
        b.gate(
            format!("s{i}"),
            GateKind::Xor,
            &[format!("b{i}").as_str(), format!("cr{i}").as_str()],
        )
        .expect("fresh");
        b.gate(
            format!("cr{}", i + 1),
            GateKind::And,
            &[format!("cr{i}").as_str(), format!("b{i}").as_str()],
        )
        .expect("fresh");
    }
    // Re-encode to Gray: ng_{n-1} = s_{n-1}; ng_i = s_i ⊕ s_{i+1}.
    b.gate(
        format!("ng{}", n - 1),
        GateKind::Buf,
        &[format!("s{}", n - 1).as_str()],
    )
    .expect("fresh");
    for i in 0..n - 1 {
        b.gate(
            format!("ng{i}"),
            GateKind::Xor,
            &[format!("s{i}").as_str(), format!("s{}", i + 1).as_str()],
        )
        .expect("fresh");
    }
    b.gate("msb", GateKind::Buf, &[format!("g{}", n - 1).as_str()])
        .expect("fresh");
    b.output("msb");
    b.finish().expect("gray counter is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::super::testutil::step;
    use super::*;

    fn as_u64(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn counter_counts() {
        let net = counter(4);
        let mut st = net.initial_state();
        for expect in 1..=20u64 {
            st = step(&net, &st, &[true]);
            assert_eq!(as_u64(&st), expect % 16);
        }
        // Disabled: holds.
        let held = step(&net, &st, &[false]);
        assert_eq!(held, st);
    }

    #[test]
    fn modk_wraps() {
        let net = counter_modk(4, 10);
        let mut st = net.initial_state();
        for expect in 1..=25u64 {
            st = step(&net, &st, &[true]);
            assert_eq!(as_u64(&st), expect % 10, "step {expect}");
        }
    }

    #[test]
    fn gray_cycles_through_all_codes() {
        let n = 4;
        let net = gray(n);
        let mut st = net.initial_state();
        let mut seen = std::collections::HashSet::new();
        seen.insert(as_u64(&st));
        for _ in 0..(1 << n) - 1 {
            let next = step(&net, &st, &[true]);
            // Gray property: exactly one bit flips.
            let diff = as_u64(&st) ^ as_u64(&next);
            assert_eq!(diff.count_ones(), 1, "not a Gray transition");
            st = next;
            seen.insert(as_u64(&st));
        }
        assert_eq!(seen.len(), 1 << n, "did not visit all codes");
        // One more step returns to 0.
        st = step(&net, &st, &[true]);
        assert_eq!(as_u64(&st), 0);
    }
}
