//! Shift-register-style generators: serial shift, LFSR, Johnson ring.

use crate::model::{GateKind, Netlist, NetlistBuilder};

use super::BuilderExt;

/// An `n`-bit serial-in shift register.
///
/// Input `d` shifts into `s0`; output is `s{n-1}`. All `2^n` states are
/// reachable after `n` steps — the "wide image" family (the frontier
/// doubles each step until saturation).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn shift_register(n: u32) -> Netlist {
    assert!(n > 0, "shift register needs at least one stage");
    let mut b = NetlistBuilder::new(format!("shift{n}"));
    b.input("d").expect("fresh");
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), false)
            .expect("fresh");
    }
    b.gate("ns0", GateKind::Buf, &["d"]).expect("fresh");
    for i in 1..n {
        b.gate(
            format!("ns{i}"),
            GateKind::Buf,
            &[format!("s{}", i - 1).as_str()],
        )
        .expect("fresh");
    }
    b.gate("serout", GateKind::Buf, &[format!("s{}", n - 1).as_str()])
        .expect("fresh");
    b.output("serout");
    b.finish().expect("shift register is structurally valid")
}

/// Maximal-length feedback taps (1-based stage numbers) for XNOR-feedback
/// Fibonacci LFSRs of 2–16 stages.
const MAXIMAL_TAPS: [&[u32]; 15] = [
    &[2, 1],
    &[3, 2],
    &[4, 3],
    &[5, 3],
    &[6, 5],
    &[7, 6],
    &[8, 6, 5, 4],
    &[9, 5],
    &[10, 7],
    &[11, 9],
    &[12, 11, 10, 4],
    &[13, 12, 11, 8],
    &[14, 13, 12, 2],
    &[15, 14],
    &[16, 15, 13, 4],
];

/// An `n`-stage maximal-length LFSR with XNOR feedback (autonomous: no
/// inputs).
///
/// Starting from the all-zero reset it cycles through `2^n − 1` states
/// (all but all-ones) — the deepest fix-point family per state bit: the
/// frontier is a single state at every iteration.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 16` (tap table coverage).
pub fn lfsr(n: u32) -> Netlist {
    assert!((2..=16).contains(&n), "lfsr supports 2..=16 stages");
    let taps = MAXIMAL_TAPS[(n - 2) as usize];
    let mut b = NetlistBuilder::new(format!("lfsr{n}"));
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), false)
            .expect("fresh");
    }
    // Feedback = XNOR of the tapped stages (stage k taps signal s{k-1}).
    let tap_names: Vec<String> = taps.iter().map(|&t| format!("s{}", t - 1)).collect();
    let refs: Vec<&str> = tap_names.iter().map(String::as_str).collect();
    b.gate("fb", GateKind::Xnor, &refs).expect("fresh");
    b.gate("ns0", GateKind::Buf, &["fb"]).expect("fresh");
    for i in 1..n {
        b.gate(
            format!("ns{i}"),
            GateKind::Buf,
            &[format!("s{}", i - 1).as_str()],
        )
        .expect("fresh");
    }
    b.gate("tap", GateKind::Buf, &[format!("s{}", n - 1).as_str()])
        .expect("fresh");
    b.output("tap");
    b.finish().expect("lfsr is structurally valid")
}

/// An `n`-stage Johnson (twisted-ring) counter with an enable input.
///
/// Only `2n` of the `2^n` states are reachable — a sparse set saturated
/// with functional dependencies between neighbouring stages, the shape
/// §3 of the paper credits for the BFV representation's compactness.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn johnson(n: u32) -> Netlist {
    assert!(n >= 2, "johnson counter needs at least two stages");
    let mut b = NetlistBuilder::new(format!("johnson{n}"));
    b.input("en").expect("fresh");
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), false)
            .expect("fresh");
    }
    b.inv("last_n", format!("s{}", n - 1).as_str());
    b.mux("ns0", "en", "last_n", "s0");
    for i in 1..n {
        let prev = format!("s{}", i - 1);
        let cur = format!("s{i}");
        b.mux(&format!("ns{i}"), "en", &prev, &cur);
    }
    b.gate("head", GateKind::Buf, &["s0"]).expect("fresh");
    b.output("head");
    b.finish().expect("johnson counter is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::super::testutil::step;
    use super::*;
    use std::collections::HashSet;

    fn as_u64(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn shift_register_shifts() {
        let net = shift_register(4);
        let mut st = net.initial_state();
        let pattern = [true, false, true, true];
        for &d in &pattern {
            st = step(&net, &st, &[d]);
        }
        // Oldest bit reaches the top stage.
        assert_eq!(st, vec![true, true, false, true]);
    }

    #[test]
    fn lfsr_has_maximal_period() {
        for n in [2u32, 3, 4, 5, 6, 7, 8] {
            let net = lfsr(n);
            let mut st = net.initial_state();
            let mut seen = HashSet::new();
            seen.insert(as_u64(&st));
            let mut period = 0u64;
            loop {
                st = step(&net, &st, &[]);
                period += 1;
                if !seen.insert(as_u64(&st)) {
                    break;
                }
            }
            assert_eq!(period, (1u64 << n) - 1, "lfsr{n} period");
            assert!(
                !seen.contains(&((1u64 << n) - 1)),
                "all-ones must be unreachable"
            );
        }
    }

    #[test]
    fn johnson_visits_2n_states() {
        let n = 5;
        let net = johnson(n);
        let mut st = net.initial_state();
        let mut seen = HashSet::new();
        seen.insert(as_u64(&st));
        for _ in 0..4 * n {
            st = step(&net, &st, &[true]);
            seen.insert(as_u64(&st));
        }
        assert_eq!(seen.len(), 2 * n as usize);
        // Hold when disabled.
        let held = step(&net, &st, &[false]);
        assert_eq!(held, st);
    }
}
