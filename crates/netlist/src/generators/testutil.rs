//! Shared test interpreter for the generator families.

use crate::model::Netlist;
use crate::topo;

/// Steps a netlist's state once under given inputs (reference
/// interpreter used to validate the generators' behaviour).
pub(crate) fn step(net: &Netlist, state: &[bool], inputs: &[bool]) -> Vec<bool> {
    let order = topo::order(net).unwrap();
    let mut vals = vec![false; net.num_signals()];
    for (i, &s) in net.inputs().iter().enumerate() {
        vals[s.index()] = inputs[i];
    }
    for (i, l) in net.latches().iter().enumerate() {
        vals[l.output.index()] = state[i];
    }
    for g in order {
        let gate = &net.gates()[g];
        let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
        vals[gate.output.index()] = gate.kind.eval(&ins);
    }
    net.latches()
        .iter()
        .map(|l| vals[l.input.index()])
        .collect()
}
