//! Datapath-style generators: registers guarded by wide pure-input
//! decode cones.
//!
//! The decode network (a popcount threshold over the whole data bus) is
//! a quadratic-size sub-DAG over *input* variables only, shared by every
//! next-state function. That is the structural phenomenon of parallel-
//! load datapaths the shift/counter families lack: an image engine that
//! re-traverses input-only logic once per latch pays for the cone `n`
//! times per step, while one that detects substitution-free sub-DAGs
//! (the frozen-function kernel's support prepass) skips it wholesale.

use crate::model::{GateKind, Netlist, NetlistBuilder};

use super::BuilderExt;

/// Builds the popcount-threshold DP network over inputs `d0..d{n-1}`:
/// `thr$i$j` = "at least `j` of the first `i` inputs are high", for
/// `1 ≤ j ≤ min(i, kmax)`. Returns the full-bus row `[th(1), …,
/// th(kmax)]`.
fn threshold_network(b: &mut NetlistBuilder, n: u32, kmax: u32) -> Vec<String> {
    debug_assert!(kmax >= 1 && kmax <= n);
    for i in 1..=n {
        let d = format!("d{}", i - 1);
        for j in 1..=kmax.min(i) {
            let out = format!("thr${i}${j}");
            let diag = format!("thr${}${}", i - 1, j - 1);
            let run = format!("thr${}${}", i - 1, j);
            if i == 1 {
                b.gate(&out, GateKind::Buf, &[d.as_str()]).expect("fresh");
            } else if j == i {
                // All of the first i inputs are high.
                b.gate(&out, GateKind::And, &[d.as_str(), diag.as_str()])
                    .expect("fresh");
            } else if j == 1 {
                b.gate(&out, GateKind::Or, &[run.as_str(), d.as_str()])
                    .expect("fresh");
            } else {
                let carry = format!("{out}$and");
                b.gate(&carry, GateKind::And, &[d.as_str(), diag.as_str()])
                    .expect("fresh");
                b.gate(&out, GateKind::Or, &[run.as_str(), carry.as_str()])
                    .expect("fresh");
            }
        }
    }
    (1..=kmax).map(|j| format!("thr${n}${j}")).collect()
}

/// An `n`-bit rotating register with majority-guarded parallel load:
/// when more than half the data bus is high the bus is loaded, otherwise
/// the register rotates by one position.
///
/// Reachable states are the all-zero reset plus every value with a
/// strict majority of ones (rotation preserves popcount, so the loaded
/// set is closed) — `1 + Σ_{j>n/2} C(n,j)` states in a 2–3 step
/// fix-point. The majority decode is a `O(n²)`-node pure-input cone
/// shared by all `n` next-state functions: the "wide decode" family.
///
/// # Panics
///
/// Panics if `n < 3` or `n > 24`.
#[must_use]
pub fn loadable_register(n: u32) -> Netlist {
    assert!(
        (3..=24).contains(&n),
        "loadable register supports 3..=24 bits"
    );
    let mut b = NetlistBuilder::new(format!("load{n}"));
    for i in 0..n {
        b.input(format!("d{i}")).expect("fresh");
    }
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), false)
            .expect("fresh");
    }
    let kmaj = n / 2 + 1;
    let th = threshold_network(&mut b, n, kmaj);
    b.gate("load", GateKind::Buf, &[th[kmaj as usize - 1].as_str()])
        .expect("fresh");
    for i in 0..n {
        let prev = format!("s{}", (i + n - 1) % n);
        b.mux(&format!("ns{i}"), "load", &format!("d{i}"), &prev);
    }
    b.output("load");
    b.finish().expect("loadable register is structurally valid")
}

/// An `n`-bit XOR accumulator with exact-popcount masking: the data bus
/// is folded into the register only when exactly `n/2` of its bits are
/// high, otherwise the state holds.
///
/// Reachable states are the span of the exact-`n/2` vectors over GF(2):
/// all `2^n` states when `n/2` is odd, the even-parity half (`2^{n-1}`)
/// when `n/2` is even. The exact-popcount decode (`th(k) ∧ ¬th(k+1)`) is
/// the same wide pure-input cone as [`loadable_register`] with an
/// accumulator-style update in place of the load mux.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 24`.
#[must_use]
pub fn masked_accumulator(n: u32) -> Netlist {
    assert!(
        (4..=24).contains(&n),
        "masked accumulator supports 4..=24 bits"
    );
    let mut b = NetlistBuilder::new(format!("mask{n}"));
    for i in 0..n {
        b.input(format!("d{i}")).expect("fresh");
    }
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), false)
            .expect("fresh");
    }
    let k = n / 2;
    let th = threshold_network(&mut b, n, k + 1);
    b.inv("nth$hi", th[k as usize].as_str());
    b.gate(
        "fire",
        GateKind::And,
        &[th[k as usize - 1].as_str(), "nth$hi"],
    )
    .expect("fresh");
    for i in 0..n {
        let mask = format!("m{i}");
        b.gate(&mask, GateKind::And, &[format!("d{i}").as_str(), "fire"])
            .expect("fresh");
        b.gate(
            format!("ns{i}"),
            GateKind::Xor,
            &[format!("s{i}").as_str(), mask.as_str()],
        )
        .expect("fresh");
    }
    b.output("fire");
    b.finish()
        .expect("masked accumulator is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::super::testutil::step;
    use super::*;

    #[test]
    fn loadable_register_loads_on_majority_and_rotates_otherwise() {
        let n = 8u32;
        let net = loadable_register(n);
        let mut st = net.initial_state();
        // Majority bus (5 of 8 high): loads the bus verbatim.
        let bus: Vec<bool> = (0..n).map(|i| i < 5).collect();
        st = step(&net, &st, &bus);
        assert_eq!(st, bus);
        // Minority bus: the register rotates by one instead.
        let idle = vec![false; n as usize];
        let rotated: Vec<bool> = (0..n as usize)
            .map(|i| bus[(i + n as usize - 1) % n as usize])
            .collect();
        st = step(&net, &st, &idle);
        assert_eq!(st, rotated);
    }

    #[test]
    fn masked_accumulator_folds_exact_popcount_only() {
        let n = 8u32;
        let net = masked_accumulator(n);
        let mut st = net.initial_state();
        // Exactly n/2 bits high: accumulated.
        let exact: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        st = step(&net, &st, &exact);
        assert_eq!(st, exact);
        // One bit over threshold: held.
        let over: Vec<bool> = (0..n).map(|i| i <= n / 2).collect();
        st = step(&net, &st, &over);
        assert_eq!(st, exact);
        // Folding the same mask again cancels back to zero.
        st = step(&net, &st, &exact);
        assert_eq!(st, net.initial_state());
    }
}
