//! Parameterized benchmark-circuit generators.
//!
//! These families stand in for the larger ISCAS89 circuits of the paper's
//! Table 2 (see `DESIGN.md` §3): each reproduces a structural phenomenon
//! the paper's evaluation exercises —
//!
//! | family | phenomenon |
//! |---|---|
//! | [`counter`], [`counter_modk`], [`gray`] | arithmetic next-state logic; deep fix-points with mod-k wrap |
//! | [`lfsr`] | maximal-period autonomous cycling (very deep fix-points) |
//! | [`shift_register`] | wide images, fast saturation |
//! | [`johnson`] | sparse reachable ring (2n of 2ⁿ states) |
//! | [`paired_registers`] | the §3 functional-dependency example `χ = ⋀(v₂ᵢ↔v₂ᵢ₊₁)` |
//! | [`queue_controller`] | pointer/counter dependency (`count = tail − head`) |
//! | [`rotator`] | one-hot token ring (n of 2ⁿ states) |
//! | [`traffic_chain`] | coupled small FSMs |
//! | [`loadable_register`], [`masked_accumulator`] | datapath updates guarded by wide pure-input decode cones |
//!
//! Every generator returns a validated [`Netlist`]; `Netlist::to_bench()`
//! style serialization is available via [`crate::bench::write`], and the
//! test suite round-trips each family through the ISCAS89 parser.

mod counters;
mod datapath;
mod shift;
mod structured;
#[cfg(test)]
pub(crate) mod testutil;

pub use counters::{counter, counter_modk, gray};
pub use datapath::{loadable_register, masked_accumulator};
pub use shift::{johnson, lfsr, shift_register};
pub use structured::{paired_registers, queue_controller, rotator, traffic_chain};

use crate::model::{GateKind, Netlist, NetlistBuilder};

/// Extension helpers shared by the generators.
pub(crate) trait BuilderExt {
    /// `out = sel ? a : b` as three gates.
    fn mux(&mut self, out: &str, sel: &str, a: &str, b: &str);
    /// `out = ¬x` as one gate, returning the output name for chaining.
    fn inv(&mut self, out: &str, x: &str);
}

impl BuilderExt for NetlistBuilder {
    fn mux(&mut self, out: &str, sel: &str, a: &str, b: &str) {
        let nsel = format!("{out}$nsel");
        let ta = format!("{out}$t");
        let tb = format!("{out}$e");
        self.inv(&nsel, sel);
        self.gate(&ta, GateKind::And, &[sel, a])
            .expect("generator signals are fresh");
        self.gate(&tb, GateKind::And, &[nsel.as_str(), b])
            .expect("generator signals are fresh");
        self.gate(out, GateKind::Or, &[ta.as_str(), tb.as_str()])
            .expect("generator signals are fresh");
    }

    fn inv(&mut self, out: &str, x: &str) {
        self.gate(out, GateKind::Not, &[x])
            .expect("generator signals are fresh");
    }
}

/// A convenient serialization alias so examples read naturally.
pub trait ToBench {
    /// Serializes to ISCAS89 `.bench` text.
    fn to_bench(&self) -> String;
}

impl ToBench for Netlist {
    fn to_bench(&self) -> String {
        crate::bench::write(self).expect("generated netlists contain no covers")
    }
}

/// The standard benchmark suite used by the Table 2 reproduction: pairs of
/// `(name, netlist)` at the sizes the experiments run at.
#[must_use]
pub fn standard_suite() -> Vec<(String, Netlist)> {
    vec![
        ("s27".to_string(), crate::circuits::s27()),
        ("cnt12".to_string(), counter(12)),
        ("mod10x4".to_string(), counter_modk(4, 10)),
        ("gray8".to_string(), gray(8)),
        ("lfsr10".to_string(), lfsr(10)),
        ("shift16".to_string(), shift_register(16)),
        ("johnson12".to_string(), johnson(12)),
        ("pair8".to_string(), paired_registers(8)),
        ("queue4".to_string(), queue_controller(4)),
        ("rot12".to_string(), rotator(12)),
        ("traffic4".to_string(), traffic_chain(4)),
        ("load12".to_string(), loadable_register(12)),
        ("mask10".to_string(), masked_accumulator(10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parses_through_iscas89_front_end() {
        // Signal interning order differs between the builder and the
        // parser, so compare shape and behaviour, not structure.
        for (name, net) in standard_suite() {
            let text = net.to_bench();
            let again = crate::bench::parse_named(&text, &name).unwrap();
            assert_eq!(again.stats(), net.stats(), "{name} shape changed");
            assert_eq!(
                again.initial_state(),
                net.initial_state(),
                "{name} reset changed"
            );
            let mut st_a = net.initial_state();
            let mut st_b = again.initial_state();
            let mut rng = 0xD1B54A32D192ED03u64;
            for step_no in 0..40 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let ins: Vec<bool> = (0..net.inputs().len()).map(|i| rng >> i & 1 == 1).collect();
                st_a = testutil::step(&net, &st_a, &ins);
                st_b = testutil::step(&again, &st_b, &ins);
                assert_eq!(st_a, st_b, "{name} diverged at step {step_no}");
            }
        }
    }

    #[test]
    fn suite_members_are_nontrivial() {
        for (name, net) in standard_suite() {
            assert!(net.latches().len() >= 3, "{name} too small");
            assert!(!net.outputs().is_empty(), "{name} has no outputs");
        }
    }
}
