//! ISCAS89 `.bench` format parser and writer.
//!
//! The format of the sequential benchmark circuits evaluated in the paper:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G14 = NOT(G0)
//! G9 = NAND(G16, G15)
//! ```
//!
//! Supported gate types: `AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR,`
//! `CONST0/GND, CONST1/VDD` and `DFF` (state element, reset to 0 per the
//! ISCAS89 convention; our dialect also accepts `DFF1` for a
//! reset-to-1 flop so the generators can express arbitrary reset states).

use std::fmt::Write as _;

use crate::model::{GateKind, Netlist, NetlistBuilder, NetlistError};
use crate::Result;

/// Parses `.bench` text into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed lines and the builder's
/// structural errors (undriven signals, cycles, …) at the end.
pub fn parse(text: &str) -> Result<Netlist> {
    parse_named(text, "bench")
}

/// Parses `.bench` text, giving the netlist an explicit name.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_named(text: &str, name: &str) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(name);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| NetlistError::Parse {
            line: lineno + 1,
            message,
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            b.input(rest).map_err(|e| err(e.to_string()))?;
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            b.output(rest);
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            let (func, args) = rhs.split_once('(').ok_or_else(|| {
                err(format!(
                    "expected FUNC(args) on right-hand side, got `{rhs}`"
                ))
            })?;
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| err("missing closing parenthesis".to_string()))?;
            let ins: Vec<&str> = args
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            let func = func.trim().to_ascii_uppercase();
            match func.as_str() {
                "DFF" | "DFF0" => {
                    let [d] = ins[..] else {
                        return Err(err(format!("DFF takes one input, got {}", ins.len())));
                    };
                    b.latch(lhs, d, false).map_err(|e| err(e.to_string()))?;
                }
                "DFF1" => {
                    let [d] = ins[..] else {
                        return Err(err(format!("DFF1 takes one input, got {}", ins.len())));
                    };
                    b.latch(lhs, d, true).map_err(|e| err(e.to_string()))?;
                }
                _ => {
                    let kind = match func.as_str() {
                        "AND" => GateKind::And,
                        "OR" => GateKind::Or,
                        "NAND" => GateKind::Nand,
                        "NOR" => GateKind::Nor,
                        "NOT" | "INV" => GateKind::Not,
                        "BUF" | "BUFF" => GateKind::Buf,
                        "XOR" => GateKind::Xor,
                        "XNOR" => GateKind::Xnor,
                        "CONST0" | "GND" => GateKind::Const0,
                        "CONST1" | "VDD" => GateKind::Const1,
                        other => return Err(err(format!("unknown gate type `{other}`"))),
                    };
                    b.gate(lhs, kind, &ins).map_err(|e| err(e.to_string()))?;
                }
            }
        } else {
            return Err(err(format!("unrecognized line `{line}`")));
        }
    }
    b.finish()
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    rest.strip_prefix('(')?
        .trim()
        .strip_suffix(')')
        .map(str::trim)
}

/// Serializes a netlist to `.bench` text.
///
/// [`GateKind::Cover`] gates (from BLIF `.names`) have no direct `.bench`
/// equivalent; they are decomposed into `NOT`/`AND`/`OR` gates with
/// `$`-prefixed auxiliary signals, so any parseable BLIF converts.
///
/// # Errors
///
/// Currently infallible; the `Result` is kept for future strictness.
pub fn write(net: &Netlist) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(out, "# {} : {}", net.name(), net.stats());
    for &i in net.inputs() {
        let _ = writeln!(out, "INPUT({})", net.signal_name(i));
    }
    for &o in net.outputs() {
        let _ = writeln!(out, "OUTPUT({})", net.signal_name(o));
    }
    for l in net.latches() {
        let func = if l.init { "DFF1" } else { "DFF" };
        let _ = writeln!(
            out,
            "{} = {}({})",
            net.signal_name(l.output),
            func,
            net.signal_name(l.input)
        );
    }
    for g in net.gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|&i| net.signal_name(i)).collect();
        let func = match &g.kind {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Cover(rows) => {
                write_cover(&mut out, net.signal_name(g.output), &ins, rows);
                continue;
            }
        };
        let _ = writeln!(
            out,
            "{} = {}({})",
            net.signal_name(g.output),
            func,
            ins.join(", ")
        );
    }
    Ok(out)
}

/// Decomposes a sum-of-products cover into NOT/AND/OR `.bench` gates.
fn write_cover(out: &mut String, name: &str, ins: &[&str], rows: &[Vec<Option<bool>>]) {
    if rows.is_empty() {
        let _ = writeln!(out, "{name} = CONST0()");
        return;
    }
    let mut row_sigs: Vec<String> = Vec::with_capacity(rows.len());
    let mut inverted: Vec<Option<String>> = vec![None; ins.len()];
    let mut aux = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut lits: Vec<String> = Vec::new();
        for (k, lit) in row.iter().enumerate() {
            match lit {
                Some(true) => lits.push(ins[k].to_string()),
                Some(false) => {
                    let inv = inverted[k].get_or_insert_with(|| {
                        let nm = format!("{name}$n{k}");
                        let _ = writeln!(aux, "{nm} = NOT({})", ins[k]);
                        nm
                    });
                    lits.push(inv.clone());
                }
                None => {}
            }
        }
        match lits.len() {
            0 => {
                // Tautological row: the whole cover is constant 1.
                let _ = writeln!(out, "{name} = CONST1()");
                return;
            }
            1 if rows.len() == 1 => {
                out.push_str(&aux);
                let _ = writeln!(out, "{name} = BUF({})", lits[0]);
                return;
            }
            1 => row_sigs.push(lits.remove(0)),
            _ => {
                let rs = format!("{name}$r{ri}");
                let _ = writeln!(aux, "{rs} = AND({})", lits.join(", "));
                row_sigs.push(rs);
            }
        }
    }
    out.push_str(&aux);
    if row_sigs.len() == 1 {
        let only = row_sigs.remove(0);
        let _ = writeln!(out, "{name} = BUF({only})");
    } else {
        let _ = writeln!(out, "{name} = OR({})", row_sigs.join(", "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
# a toy circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
r = DFF1(q)
x = AND(a, q)
y = OR(x, b)   # trailing comment
d = XOR(y, r)
";

    #[test]
    fn parse_toy() {
        let net = parse(TOY).unwrap();
        assert_eq!(net.stats().inputs, 2);
        assert_eq!(net.stats().latches, 2);
        assert_eq!(net.stats().gates, 3);
        assert_eq!(net.initial_state(), vec![false, true]);
        assert_eq!(net.signal_name(net.outputs()[0]), "y");
    }

    #[test]
    fn roundtrip() {
        let net = parse(TOY).unwrap();
        let text = write(&net).unwrap();
        let again = parse_named(&text, net.name()).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn spacing_variants() {
        let net = parse("INPUT ( a )\nOUTPUT(y)\ny = NOT ( a )\n").unwrap();
        assert_eq!(net.stats().gates, 1);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let err = parse("INPUT(a)\nx = FROB(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 2,
                message: "unknown gate type `FROB`".into()
            }
        );
        let err = parse("what is this").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
        let err = parse("x = AND(a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn dff_arity_checked() {
        let err = parse("q = DFF(a, b)\nINPUT(a)\nINPUT(b)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn structural_errors_surface() {
        let err = parse("OUTPUT(y)\ny = AND(a, b)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Undriven { .. }));
    }

    #[test]
    fn malformed_inputs_return_structured_errors() {
        // Truncated line: assignment with an empty right-hand side.
        assert!(matches!(
            parse("INPUT(a)\nx = \n"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        // Truncated INPUT (missing closing parenthesis) is not a valid
        // directive or assignment.
        assert!(matches!(
            parse("INPUT(a\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
        // Duplicate latch definition: q driven twice.
        assert!(matches!(
            parse("INPUT(a)\nq = DFF(a)\nq = DFF(a)\n"),
            Err(NetlistError::Parse { line: 3, .. })
        ));
        // Undeclared signal feeding a gate surfaces as a structural error.
        assert!(matches!(
            parse("OUTPUT(y)\ny = NOT(ghost)\n"),
            Err(NetlistError::Undriven { .. })
        ));
        // Zero-input DFF.
        assert!(matches!(
            parse("q = DFF()\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn constants_parse() {
        let net = parse("OUTPUT(y)\nz = VDD()\ny = BUF(z)\n").unwrap();
        assert_eq!(net.gates().len(), 2);
    }
}

#[cfg(test)]
mod cover_tests {
    use super::*;
    use crate::model::GateKind;

    #[test]
    fn covers_decompose_into_primitive_gates() {
        let blif = "\
.model c
.inputs a b c
.outputs y z w v
.names a b y
11 1
00 1
.names a z
0 1
.names a b c w
1-- 1
.names v
1
.end
";
        let net = crate::blif::parse(blif).unwrap();
        let text = write(&net).unwrap();
        let again = parse(&text).unwrap();
        // Behavioural equivalence over all inputs.
        let eval = |n: &crate::model::Netlist, ins: &[bool]| -> Vec<bool> {
            let order = crate::topo::order(n).unwrap();
            let mut vals = vec![false; n.num_signals()];
            for (i, &s) in n.inputs().iter().enumerate() {
                vals[s.index()] = ins[i];
            }
            for g in order {
                let gate = &n.gates()[g];
                let iv: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&iv);
            }
            n.outputs().iter().map(|&o| vals[o.index()]).collect()
        };
        for bits in 0u8..8 {
            let ins = [bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            assert_eq!(eval(&net, &ins), eval(&again, &ins), "inputs {ins:?}");
        }
        // No cover gates survive in the round-tripped netlist.
        assert!(again
            .gates()
            .iter()
            .all(|g| !matches!(g.kind, GateKind::Cover(_))));
    }

    #[test]
    fn empty_cover_is_const0() {
        let blif = ".model c\n.outputs y\n.names y\n.end\n";
        let net = crate::blif::parse(blif).unwrap();
        let text = write(&net).unwrap();
        assert!(text.contains("CONST0"));
        assert!(parse(&text).is_ok());
    }
}
