//! Structural analyses: topological order, levels, cone of influence.

use std::collections::HashMap;

use crate::model::{Driver, Netlist, NetlistError, SignalId};
use crate::Result;

/// Returns the gate indices in topological (fan-in before fan-out) order.
///
/// Latch outputs and primary inputs are sources; latch *inputs* are sinks,
/// so feedback through state elements is fine.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational logic
/// is cyclic.
pub fn order(net: &Netlist) -> Result<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; net.num_signals()];
    let mut out = Vec::with_capacity(net.gates().len());
    // Iterative DFS to keep deep chains off the call stack.
    for root in 0..net.num_signals() {
        if marks[root] != Mark::White {
            continue;
        }
        let mut stack: Vec<(u32, bool)> = vec![(root as u32, false)];
        while let Some((s, expanded)) = stack.pop() {
            let sid = SignalId(s);
            if expanded {
                marks[s as usize] = Mark::Black;
                if let Driver::Gate(g) = net.driver(sid) {
                    out.push(g);
                }
                continue;
            }
            match marks[s as usize] {
                Mark::Black => continue,
                Mark::Grey => {
                    return Err(NetlistError::CombinationalCycle {
                        name: net.signal_name(sid).to_string(),
                    })
                }
                Mark::White => {}
            }
            marks[s as usize] = Mark::Grey;
            stack.push((s, true));
            if let Driver::Gate(g) = net.driver(sid) {
                for &inp in &net.gates()[g].inputs {
                    if marks[inp.index()] == Mark::White {
                        stack.push((inp.0, false));
                    } else if marks[inp.index()] == Mark::Grey {
                        return Err(NetlistError::CombinationalCycle {
                            name: net.signal_name(inp).to_string(),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Logic level of every signal: inputs and latch outputs are level 0, a
/// gate is one more than its deepest fan-in.
pub fn levels(net: &Netlist) -> Result<Vec<usize>> {
    let order = order(net)?;
    let mut lvl = vec![0usize; net.num_signals()];
    for g in order {
        let gate = &net.gates()[g];
        let depth = gate
            .inputs
            .iter()
            .map(|i| lvl[i.index()])
            .max()
            .unwrap_or(0);
        lvl[gate.output.index()] = depth + 1;
    }
    Ok(lvl)
}

/// The set of latches and inputs in the cone of influence of `roots`
/// (transitively, through gates and latch next-state functions).
///
/// Returns `(latch_indices, input_indices)`, each sorted.
#[must_use]
pub fn cone_of_influence(net: &Netlist, roots: &[SignalId]) -> (Vec<usize>, Vec<usize>) {
    let mut seen = vec![false; net.num_signals()];
    let mut latches = Vec::new();
    let mut inputs = Vec::new();
    let input_index: HashMap<SignalId, usize> = net
        .inputs()
        .iter()
        .copied()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    let mut stack: Vec<SignalId> = roots.to_vec();
    while let Some(s) = stack.pop() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        match net.driver(s) {
            Driver::Input => inputs.push(input_index[&s]),
            Driver::Latch(l) => {
                latches.push(l);
                stack.push(net.latches()[l].input);
            }
            Driver::Gate(g) => stack.extend(net.gates()[g].inputs.iter().copied()),
        }
    }
    latches.sort_unstable();
    inputs.sort_unstable();
    (latches, inputs)
}

/// Restricts a netlist to the cone of influence of its outputs, dropping
/// latches and gates that cannot affect any output.
///
/// # Errors
///
/// Propagates builder validation errors (cannot occur for well-formed
/// inputs).
pub fn reduce_to_outputs(net: &Netlist) -> Result<Netlist> {
    let (latches, inputs) = cone_of_influence(net, net.outputs());
    let mut b = crate::model::NetlistBuilder::new(net.name().to_string());
    for &i in &inputs {
        b.input(net.signal_name(net.inputs()[i]))?;
    }
    let mut keep = vec![false; net.num_signals()];
    {
        // Mark the cone.
        let mut stack: Vec<SignalId> = net.outputs().to_vec();
        while let Some(s) = stack.pop() {
            if keep[s.index()] {
                continue;
            }
            keep[s.index()] = true;
            match net.driver(s) {
                Driver::Input => {}
                Driver::Latch(l) => stack.push(net.latches()[l].input),
                Driver::Gate(g) => stack.extend(net.gates()[g].inputs.iter().copied()),
            }
        }
    }
    for &l in &latches {
        let latch = net.latches()[l];
        b.latch(
            net.signal_name(latch.output),
            net.signal_name(latch.input),
            latch.init,
        )?;
    }
    for gate in net.gates() {
        if keep[gate.output.index()] {
            let ins: Vec<&str> = gate.inputs.iter().map(|&i| net.signal_name(i)).collect();
            b.gate(net.signal_name(gate.output), gate.kind.clone(), &ins)?;
        }
    }
    for &o in net.outputs() {
        b.output(net.signal_name(o));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GateKind, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.latch("q", "d", false).unwrap();
        // dead latch: feeds nothing observable
        b.latch("dead", "dead_next", false).unwrap();
        b.gate("dead_next", GateKind::Not, &["dead"]).unwrap();
        b.gate("x", GateKind::And, &["a", "q"]).unwrap();
        b.gate("y", GateKind::Or, &["x", "b"]).unwrap();
        b.gate("d", GateKind::Xor, &["y", "q"]).unwrap();
        b.output("y");
        b.finish().unwrap()
    }

    #[test]
    fn topological_order_respects_fanin() {
        let net = sample();
        let ord = order(&net).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; net.gates().len()];
            for (rank, &g) in ord.iter().enumerate() {
                p[g] = rank;
            }
            p
        };
        for (gi, gate) in net.gates().iter().enumerate() {
            for &inp in &gate.inputs {
                if let crate::model::Driver::Gate(pg) = net.driver(inp) {
                    assert!(pos[pg] < pos[gi], "gate {gi} before its fan-in {pg}");
                }
            }
        }
        assert_eq!(ord.len(), net.gates().len());
    }

    #[test]
    fn levels_increase_along_paths() {
        let net = sample();
        let lvl = levels(&net).unwrap();
        let x = net.find_signal("x").unwrap();
        let y = net.find_signal("y").unwrap();
        let d = net.find_signal("d").unwrap();
        let a = net.find_signal("a").unwrap();
        assert_eq!(lvl[a.index()], 0);
        assert_eq!(lvl[x.index()], 1);
        assert_eq!(lvl[y.index()], 2);
        assert_eq!(lvl[d.index()], 3);
    }

    #[test]
    fn coi_finds_relevant_state() {
        let net = sample();
        let (latches, inputs) = cone_of_influence(&net, net.outputs());
        assert_eq!(latches, vec![0]); // q, not dead
        assert_eq!(inputs, vec![0, 1]);
    }

    #[test]
    fn reduce_drops_dead_logic() {
        let net = sample();
        let red = reduce_to_outputs(&net).unwrap();
        assert_eq!(red.latches().len(), 1);
        // d (next-state of q) stays because q is in the cone... d is the
        // latch input, which the cone includes transitively.
        assert!(red.find_signal("dead").is_none());
        assert!(red.find_signal("q").is_some());
        assert_eq!(red.outputs().len(), 1);
    }
}
