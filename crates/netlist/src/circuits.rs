//! Embedded reference circuits.

use crate::model::Netlist;

/// The ISCAS89 benchmark circuit **s27** (4 inputs, 1 output, 3 flip-flops,
/// 10 gates) in `.bench` syntax — the standard smoke test for sequential
/// state-traversal tools.
pub const S27_BENCH: &str = "\
# s27 (ISCAS89): 4 inputs, 1 output, 3 D-type flip-flops, 10 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Parses the embedded s27 circuit.
///
/// # Panics
///
/// Never panics — the embedded text is valid (covered by tests).
#[must_use]
#[allow(clippy::expect_used)] // embedded text is fixed and covered by tests
pub fn s27() -> Netlist {
    crate::bench::parse_named(S27_BENCH, "s27").expect("embedded s27 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_shape() {
        let net = s27();
        let st = net.stats();
        assert_eq!(st.inputs, 4);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.latches, 3);
        assert_eq!(st.gates, 10);
        assert_eq!(net.initial_state(), vec![false, false, false]);
    }

    #[test]
    fn s27_is_acyclic_and_leveled() {
        let net = s27();
        let lv = crate::topo::levels(&net).unwrap();
        assert!(lv.iter().max().unwrap() >= &3);
    }

    #[test]
    fn s27_roundtrips_through_bench_and_blif() {
        let net = s27();
        let b = crate::bench::write(&net).unwrap();
        assert_eq!(crate::bench::parse_named(&b, "s27").unwrap(), net);
        let blif = crate::blif::write(&net);
        let from_blif = crate::blif::parse(&blif).unwrap();
        assert_eq!(from_blif.stats().latches, 3);
    }
}
