//! # bfvr-netlist — sequential gate-level netlists
//!
//! The circuit substrate for the `bfvr` reproduction: an in-memory
//! netlist model ([`Netlist`]) with
//!
//! * an **ISCAS89 `.bench`** parser and writer ([`mod@bench`]) — the format of
//!   the benchmark circuits evaluated in the paper (§3),
//! * a **BLIF** subset parser and writer ([`blif`]) and a structural
//!   **Verilog** writer ([`verilog`]),
//! * structural analyses ([`topo`]): topological ordering, combinational
//!   cycle detection, logic levels and cone-of-influence reduction,
//! * the real ISCAS89 circuit **s27** embedded for end-to-end validation
//!   ([`circuits`]), and
//! * **product machines with miters** ([`product`]) for sequential
//!   equivalence checking, and
//! * parameterized **generators** ([`generators`]) for the synthetic
//!   benchmark families that stand in for the larger ISCAS89 circuits
//!   (see `DESIGN.md` §3 for the substitution rationale). Every generator
//!   emits `.bench` text and is round-tripped through the parser in tests,
//!   so the ISCAS89 front end is exercised by the whole benchmark suite.
//!
//! ## Example
//!
//! ```
//! use bfvr_netlist::{bench, generators, generators::ToBench};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = generators::counter(4).to_bench();
//! let net = bench::parse(&text)?;
//! assert_eq!(net.latches().len(), 4);
//! assert_eq!(net.inputs().len(), 1); // the enable input
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bench;
pub mod blif;
pub mod circuits;
// Generators build fixed circuit families from validated static recipes;
// a construction failure is a bug in the recipe itself, so `expect` is the
// right failure mode and the lint wall is relaxed for the subtree.
#[allow(clippy::expect_used)]
pub mod generators;
mod model;
pub mod product;
pub mod topo;
pub mod verilog;

pub use model::{
    Driver, Gate, GateKind, Latch, Netlist, NetlistBuilder, NetlistError, NetlistStats, SignalId,
};

/// Result alias for fallible netlist operations.
pub type Result<T, E = NetlistError> = std::result::Result<T, E>;
