//! BLIF (Berkeley Logic Interchange Format) subset parser and writer.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.latch`
//! (with optional reset value), `.names` (single-output sum-of-products
//! covers, positive or negative phase), line continuation with `\`, and
//! `.end`. This covers the combinational/sequential core used by logic
//! synthesis flows (and by VIS for the ISCAS89 circuits).

use std::fmt::Write as _;

use crate::model::{GateKind, Netlist, NetlistBuilder, NetlistError};
use crate::Result;

/// Parses a BLIF description into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input and structural
/// errors from validation.
pub fn parse(text: &str) -> Result<Netlist> {
    // Join continuation lines first, tracking original line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let no_comment = raw.split('#').next().unwrap_or("");
        let (start, mut acc) = pending.take().unwrap_or((i, String::new()));
        if let Some(stripped) = no_comment.trim_end().strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
            pending = Some((start, acc));
            continue;
        }
        acc.push_str(no_comment);
        let trimmed = acc.trim().to_string();
        if !trimmed.is_empty() {
            lines.push((start + 1, trimmed));
        }
    }
    // A `\` on the final line leaves its continuation pending: flush it
    // rather than silently dropping the accumulated text.
    if let Some((start, acc)) = pending {
        let trimmed = acc.trim().to_string();
        if !trimmed.is_empty() {
            lines.push((start + 1, trimmed));
        }
    }

    let mut b: Option<NetlistBuilder> = None;
    let mut idx = 0;
    while idx < lines.len() {
        let (lineno, line) = &lines[idx];
        let lineno = *lineno;
        let err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        let mut tokens = line.split_whitespace();
        // Blank lines were filtered above; skip defensively regardless.
        let Some(head) = tokens.next() else {
            idx += 1;
            continue;
        };
        match head {
            ".model" => {
                let name = tokens.next().unwrap_or("blif");
                if b.is_some() {
                    return Err(err("only one .model per file is supported".into()));
                }
                b = Some(NetlistBuilder::new(name));
                idx += 1;
            }
            ".inputs" => {
                let b = b
                    .as_mut()
                    .ok_or_else(|| err(".inputs before .model".into()))?;
                for t in tokens {
                    b.input(t).map_err(|e| err(e.to_string()))?;
                }
                idx += 1;
            }
            ".outputs" => {
                let b = b
                    .as_mut()
                    .ok_or_else(|| err(".outputs before .model".into()))?;
                for t in tokens {
                    b.output(t);
                }
                idx += 1;
            }
            ".latch" => {
                let b = b
                    .as_mut()
                    .ok_or_else(|| err(".latch before .model".into()))?;
                let args: Vec<&str> = tokens.collect();
                // .latch <input> <output> [<type> <control>] [<init>]
                if args.len() < 2 {
                    return Err(err(".latch needs input and output".into()));
                }
                let init = match args.last() {
                    Some(&"1") => true,
                    Some(&"0") | Some(&"2") | Some(&"3") => false,
                    _ if args.len() == 2 => false,
                    Some(other) if args.len() > 2 => {
                        // Could be a control clock; treat missing init as 0.
                        let _ = other;
                        false
                    }
                    _ => false,
                };
                b.latch(args[1], args[0], init)
                    .map_err(|e| err(e.to_string()))?;
                idx += 1;
            }
            ".names" => {
                let b = b
                    .as_mut()
                    .ok_or_else(|| err(".names before .model".into()))?;
                let sigs: Vec<&str> = tokens.collect();
                if sigs.is_empty() {
                    return Err(err(".names needs at least an output".into()));
                }
                let (ins, out) = sigs.split_at(sigs.len() - 1);
                // Gather cover rows until the next dot-command.
                let mut on_rows: Vec<Vec<Option<bool>>> = Vec::new();
                let mut off_rows: Vec<Vec<Option<bool>>> = Vec::new();
                idx += 1;
                while idx < lines.len() && !lines[idx].1.starts_with('.') {
                    let (rl, row) = &lines[idx];
                    let rerr = |message: String| NetlistError::Parse { line: *rl, message };
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (cube_str, val) = match parts.len() {
                        1 if ins.is_empty() => ("", parts[0]),
                        2 => (parts[0], parts[1]),
                        _ => return Err(rerr(format!("bad cover row `{row}`"))),
                    };
                    if cube_str.len() != ins.len() {
                        return Err(rerr(format!(
                            "cube width {} does not match {} inputs",
                            cube_str.len(),
                            ins.len()
                        )));
                    }
                    let cube: Vec<Option<bool>> = cube_str
                        .chars()
                        .map(|c| match c {
                            '0' => Ok(Some(false)),
                            '1' => Ok(Some(true)),
                            '-' => Ok(None),
                            other => Err(rerr(format!("bad cube character `{other}`"))),
                        })
                        .collect::<Result<_, _>>()?;
                    match val {
                        "1" => on_rows.push(cube),
                        "0" => off_rows.push(cube),
                        other => return Err(rerr(format!("bad output value `{other}`"))),
                    }
                    idx += 1;
                }
                if !on_rows.is_empty() && !off_rows.is_empty() {
                    return Err(err("mixed-phase covers are not supported".into()));
                }
                let kind = if on_rows.is_empty() && off_rows.is_empty() {
                    GateKind::Const0
                } else if off_rows.is_empty() {
                    GateKind::Cover(on_rows)
                } else {
                    // Negative phase: output is 0 on the cover. Represent
                    // as the complementary gate via Cover + Not through an
                    // auxiliary signal.
                    let aux = format!("{}$off", out[0]);
                    b.gate(&aux, GateKind::Cover(off_rows), ins)
                        .map_err(|e| err(e.to_string()))?;
                    b.gate(out[0], GateKind::Not, &[aux.as_str()])
                        .map_err(|e| err(e.to_string()))?;
                    continue;
                };
                b.gate(out[0], kind, ins).map_err(|e| err(e.to_string()))?;
            }
            ".end" => {
                idx += 1;
            }
            other => return Err(err(format!("unsupported construct `{other}`"))),
        }
    }
    b.ok_or_else(|| NetlistError::Parse {
        line: 1,
        message: "no .model found".into(),
    })?
    .finish()
}

/// Serializes a netlist as BLIF. Every gate kind (including
/// [`GateKind::Cover`]) is expressible.
#[must_use]
pub fn write(net: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", net.name());
    if !net.inputs().is_empty() {
        let names: Vec<&str> = net.inputs().iter().map(|&s| net.signal_name(s)).collect();
        let _ = writeln!(out, ".inputs {}", names.join(" "));
    }
    if !net.outputs().is_empty() {
        let names: Vec<&str> = net.outputs().iter().map(|&s| net.signal_name(s)).collect();
        let _ = writeln!(out, ".outputs {}", names.join(" "));
    }
    for l in net.latches() {
        let _ = writeln!(
            out,
            ".latch {} {} {}",
            net.signal_name(l.input),
            net.signal_name(l.output),
            u8::from(l.init)
        );
    }
    for g in net.gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|&s| net.signal_name(s)).collect();
        let _ = writeln!(
            out,
            ".names {} {}",
            ins.join(" "),
            net.signal_name(g.output)
        );
        let n = ins.len();
        match &g.kind {
            GateKind::And => {
                let _ = writeln!(out, "{} 1", "1".repeat(n));
            }
            GateKind::Nor => {
                let _ = writeln!(out, "{} 1", "0".repeat(n));
            }
            GateKind::Or => {
                for i in 0..n {
                    let mut row: Vec<char> = vec!['-'; n];
                    row[i] = '1';
                    let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
                }
            }
            GateKind::Nand => {
                for i in 0..n {
                    let mut row: Vec<char> = vec!['-'; n];
                    row[i] = '0';
                    let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
                }
            }
            GateKind::Not => {
                let _ = writeln!(out, "0 1");
            }
            GateKind::Buf => {
                let _ = writeln!(out, "1 1");
            }
            GateKind::Xor | GateKind::Xnor => {
                let want_odd = matches!(g.kind, GateKind::Xor);
                for bits in 0u32..(1 << n) {
                    let ones = bits.count_ones() as usize;
                    if (ones % 2 == 1) == want_odd {
                        let row: String = (0..n)
                            .map(|i| {
                                if bits >> (n - 1 - i) & 1 == 1 {
                                    '1'
                                } else {
                                    '0'
                                }
                            })
                            .collect();
                        let _ = writeln!(out, "{row} 1");
                    }
                }
            }
            GateKind::Const0 => {}
            GateKind::Const1 => {
                let _ = writeln!(out, "1");
            }
            GateKind::Cover(rows) => {
                for row in rows {
                    let chars: String = row
                        .iter()
                        .map(|l| match l {
                            Some(true) => '1',
                            Some(false) => '0',
                            None => '-',
                        })
                        .collect();
                    let _ = writeln!(out, "{chars} 1");
                }
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
# toy blif
.model toy
.inputs a b
.outputs y
.latch d q 0
.names a q x
11 1
.names x b \\
y
1- 1
-1 1
.names y q d
10 1
01 1
.end
";

    #[test]
    fn parse_toy() {
        let net = parse(TOY).unwrap();
        assert_eq!(net.name(), "toy");
        assert_eq!(net.stats().inputs, 2);
        assert_eq!(net.stats().latches, 1);
        assert_eq!(net.stats().gates, 3);
    }

    #[test]
    fn roundtrip_via_blif() {
        let net = parse(TOY).unwrap();
        let text = write(&net);
        let again = parse(&text).unwrap();
        // Structure may differ (covers vs named gates) but signal counts
        // and interface must match.
        assert_eq!(net.stats().inputs, again.stats().inputs);
        assert_eq!(net.stats().latches, again.stats().latches);
        assert_eq!(net.initial_state(), again.initial_state());
    }

    #[test]
    fn bench_gates_expressible_in_blif() {
        let bench = "\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
x = XOR(a, b, c)
z = NAND(a, b)
w = XNOR(a, c)
u = NOR(b, c)
t = AND(x, z)
s = OR(w, u)
y = AND(t, s)
";
        let net = crate::bench::parse(bench).unwrap();
        let text = write(&net);
        let again = parse(&text).unwrap();
        // Exhaustive behavioural equivalence on the combinational output.
        for bits in 0u8..8 {
            let vals = [bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            assert_eq!(
                eval_output(&net, &vals),
                eval_output(&again, &vals),
                "mismatch at {vals:?}"
            );
        }
    }

    /// Tiny interpreter used by the equivalence test.
    fn eval_output(net: &Netlist, input_vals: &[bool]) -> bool {
        let order = crate::topo::order(net).unwrap();
        let mut vals = vec![false; net.num_signals()];
        for (i, &s) in net.inputs().iter().enumerate() {
            vals[s.index()] = input_vals[i];
        }
        for g in order {
            let gate = &net.gates()[g];
            let ins: Vec<bool> = gate.inputs.iter().map(|&i| vals[i.index()]).collect();
            vals[gate.output.index()] = gate.kind.eval(&ins);
        }
        vals[net.outputs()[0].index()]
    }

    #[test]
    fn negative_phase_cover() {
        let text = "\
.model neg
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let net = parse(text).unwrap();
        // y = ¬(a∧b): check via the interpreter.
        assert!(eval_output(&net, &[true, false]));
        assert!(!eval_output(&net, &[true, true]));
    }

    #[test]
    fn constant_names() {
        let text = ".model c\n.outputs y\n.names y\n1\n.end\n";
        let net = parse(text).unwrap();
        assert!(eval_output(&net, &[]));
        let text0 = ".model c\n.outputs y\n.names y\n.end\n";
        let net0 = parse(text0).unwrap();
        assert!(!eval_output(&net0, &[]));
    }

    #[test]
    fn errors() {
        assert!(matches!(parse("xyz"), Err(NetlistError::Parse { .. })));
        assert!(matches!(
            parse(".inputs a"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
        let bad_cube = ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        assert!(matches!(
            parse(bad_cube),
            Err(NetlistError::Parse { line: 5, .. })
        ));
    }

    #[test]
    fn malformed_inputs_return_structured_errors() {
        // Truncated .latch line (missing the output signal).
        let truncated = ".model m\n.outputs q\n.latch d\n.end\n";
        assert!(matches!(
            parse(truncated),
            Err(NetlistError::Parse { line: 3, .. })
        ));
        // Duplicate latch definition: same output driven twice.
        let dup = "\
.model m
.inputs a
.outputs q
.latch a q 0
.latch a q 0
.end
";
        assert!(matches!(
            parse(dup),
            Err(NetlistError::Parse { line: 5, .. })
        ));
        // Undeclared signal: referenced in a cover but never driven.
        let undriven = ".model m\n.outputs y\n.names ghost y\n1 1\n.end\n";
        assert!(matches!(
            parse(undriven),
            Err(NetlistError::Undriven { .. })
        ));
        // Cover row wider than the input list.
        let wide = ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n";
        assert!(matches!(
            parse(wide),
            Err(NetlistError::Parse { line: 5, .. })
        ));
        // Directives before .model.
        assert!(matches!(
            parse(".inputs a\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn trailing_continuation_at_eof_is_not_dropped() {
        // The final line ends in `\`: its content must still be parsed
        // (here, completing the .outputs list), not silently discarded.
        let text = ".model m\n.inputs a\n.names a y\n1 1\n.outputs \\\ny";
        let net = parse(text).unwrap();
        assert_eq!(net.outputs().len(), 1);
        assert_eq!(net.signal_name(net.outputs()[0]), "y");
    }

    #[test]
    fn latch_init_values() {
        let text = ".model l\n.outputs q\n.latch d q 1\n.names q d\n0 1\n.end\n";
        let net = parse(text).unwrap();
        assert_eq!(net.initial_state(), vec![true]);
    }
}
