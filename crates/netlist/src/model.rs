//! The in-memory netlist model and its builder.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A handle to a named signal in a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index of this signal in the netlist's signal table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a handle from a raw index (the inverse of
    /// [`SignalId::index`]); the caller is responsible for the index
    /// being in range for the netlist it is used against.
    #[must_use]
    pub fn from_index(i: usize) -> SignalId {
        SignalId(i as u32)
    }
}

/// The logic function of a combinational gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateKind {
    /// Conjunction of all fan-ins.
    And,
    /// Disjunction of all fan-ins.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Inversion (exactly one fan-in).
    Not,
    /// Identity (exactly one fan-in).
    Buf,
    /// Parity of all fan-ins.
    Xor,
    /// Negated parity.
    Xnor,
    /// Constant 0 (no fan-ins).
    Const0,
    /// Constant 1 (no fan-ins).
    Const1,
    /// A sum-of-products cover over the fan-ins (BLIF `.names`):
    /// each row is a cube (`Some(v)` = literal, `None` = don't care);
    /// the output is 1 exactly on the union of the cubes.
    Cover(Vec<Vec<Option<bool>>>),
}

impl GateKind {
    /// Evaluates the gate on concrete fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if the arity is invalid for the kind (e.g. `Not` with two
    /// fan-ins) — construction validates this, so only hand-rolled gates
    /// can trip it.
    #[must_use]
    pub fn eval(&self, ins: &[bool]) -> bool {
        match self {
            GateKind::And => ins.iter().all(|&b| b),
            GateKind::Or => ins.iter().any(|&b| b),
            GateKind::Nand => !ins.iter().all(|&b| b),
            GateKind::Nor => !ins.iter().any(|&b| b),
            GateKind::Not => !ins[0],
            GateKind::Buf => ins[0],
            GateKind::Xor => ins.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => ins.iter().filter(|&&b| b).count() % 2 == 0,
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Cover(rows) => rows.iter().any(|row| {
                row.iter()
                    .zip(ins)
                    .all(|(lit, &v)| lit.is_none_or(|want| want == v))
            }),
        }
    }

    /// Whether `n` fan-ins are legal for this gate kind.
    #[must_use]
    pub fn arity_ok(&self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buf => n == 1,
            GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Cover(rows) => rows.iter().all(|r| r.len() == n),
            _ => n >= 1,
        }
    }
}

/// A combinational gate driving one signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The driven signal.
    pub output: SignalId,
    /// The logic function.
    pub kind: GateKind,
    /// Fan-in signals, in order.
    pub inputs: Vec<SignalId>,
}

/// A D flip-flop (state element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latch {
    /// The latch output (current-state signal).
    pub output: SignalId,
    /// The next-state (data) signal.
    pub input: SignalId,
    /// Reset value (ISCAS89 convention: 0).
    pub init: bool,
}

/// How a signal is driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Primary input.
    Input,
    /// Output of the latch with this index.
    Latch(usize),
    /// Output of the gate with this index.
    Gate(usize),
}

/// A sequential gate-level netlist.
///
/// Build one with [`NetlistBuilder`] or the [`crate::bench`]/
/// [`crate::blif`] parsers. Every signal is driven exactly once (by an
/// input, a latch or a gate); [`NetlistBuilder::finish`] verifies this and
/// the absence of combinational cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) names: Vec<String>,
    pub(crate) drivers: Vec<Option<Driver>>,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) outputs: Vec<SignalId>,
    pub(crate) latches: Vec<Latch>,
    pub(crate) gates: Vec<Gate>,
}

/// Size summary of a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// State elements.
    pub latches: usize,
    /// Combinational gates.
    pub gates: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs, {} outputs, {} latches, {} gates",
            self.inputs, self.outputs, self.latches, self.gates
        )
    }
}

impl Netlist {
    /// The netlist's name (model name for BLIF, file stem for bench).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of signals (inputs + latch outputs + gate outputs).
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.names.len()
    }

    /// The name of a signal.
    #[must_use]
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.names[s.index()]
    }

    /// Looks a signal up by name.
    #[must_use]
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| SignalId(i as u32))
    }

    /// Primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// State elements, in declaration order.
    #[must_use]
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Combinational gates (unordered; see [`crate::topo::order`]).
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// What drives a signal.
    ///
    /// # Panics
    ///
    /// Panics if `s` has no driver — impossible for a finished netlist,
    /// where the builder has checked that every signal is driven.
    #[must_use]
    #[allow(clippy::expect_used)] // documented invariant of finished netlists
    pub fn driver(&self, s: SignalId) -> Driver {
        self.drivers[s.index()].expect("finished netlists have all signals driven")
    }

    /// What drives a signal, or `None` if nothing does.
    ///
    /// Finished netlists always have every signal driven (see
    /// [`Netlist::driver`]); this non-panicking variant exists for
    /// analysis tooling that inspects netlists produced by
    /// [`NetlistBuilder::finish_unchecked`], where undriven signals are
    /// a *finding*, not a precondition violation.
    #[must_use]
    pub fn driver_opt(&self, s: SignalId) -> Option<Driver> {
        self.drivers[s.index()]
    }

    /// Size summary.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            latches: self.latches.len(),
            gates: self.gates.len(),
        }
    }

    /// The initial state, one bit per latch in declaration order.
    #[must_use]
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|l| l.init).collect()
    }
}

/// Errors raised while building or parsing netlists.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal is referenced but never driven.
    Undriven {
        /// The signal's name.
        name: String,
    },
    /// A signal is driven more than once.
    MultiplyDriven {
        /// The signal's name.
        name: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalCycle {
        /// The name of a signal on the cycle.
        name: String,
    },
    /// A gate has an illegal number of fan-ins for its kind.
    BadArity {
        /// The driven signal's name.
        name: String,
        /// Fan-ins supplied.
        got: usize,
    },
    /// A syntax error in a parsed description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Undriven { name } => write!(f, "signal `{name}` is never driven"),
            NetlistError::MultiplyDriven { name } => {
                write!(f, "signal `{name}` is driven more than once")
            }
            NetlistError::CombinationalCycle { name } => {
                write!(f, "combinational cycle through signal `{name}`")
            }
            NetlistError::BadArity { name, got } => {
                write!(f, "gate driving `{name}` has invalid fan-in count {got}")
            }
            NetlistError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for NetlistError {}

/// Incrementally constructs a [`Netlist`].
///
/// Signals are created on first mention (by name); [`NetlistBuilder::finish`]
/// checks that every signal is driven exactly once and that the
/// combinational logic is acyclic.
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    name: String,
    names: Vec<String>,
    by_name: HashMap<String, SignalId>,
    drivers: Vec<Option<Driver>>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    latches: Vec<Latch>,
    gates: Vec<Gate>,
}

impl NetlistBuilder {
    /// Starts building a netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Interns (or finds) a signal by name.
    pub fn signal(&mut self, name: impl AsRef<str>) -> SignalId {
        let name = name.as_ref();
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SignalId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.drivers.push(None);
        id
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Fails if the signal is already driven.
    pub fn input(&mut self, name: impl AsRef<str>) -> Result<SignalId, NetlistError> {
        let id = self.signal(&name);
        self.drive(id, Driver::Input)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Declares a primary output (a reference to an existing or future
    /// signal).
    pub fn output(&mut self, name: impl AsRef<str>) -> SignalId {
        let id = self.signal(&name);
        self.outputs.push(id);
        id
    }

    /// Adds a D flip-flop: `out` holds the registered value of `next`.
    ///
    /// # Errors
    ///
    /// Fails if `out` is already driven.
    pub fn latch(
        &mut self,
        out: impl AsRef<str>,
        next: impl AsRef<str>,
        init: bool,
    ) -> Result<SignalId, NetlistError> {
        let output = self.signal(&out);
        let input = self.signal(&next);
        self.drive(output, Driver::Latch(self.latches.len()))?;
        self.latches.push(Latch {
            output,
            input,
            init,
        });
        Ok(output)
    }

    /// Adds a combinational gate driving `out`.
    ///
    /// # Errors
    ///
    /// Fails if `out` is already driven or the fan-in count is illegal for
    /// `kind`.
    pub fn gate<S: AsRef<str>>(
        &mut self,
        out: impl AsRef<str>,
        kind: GateKind,
        ins: &[S],
    ) -> Result<SignalId, NetlistError> {
        let output = self.signal(&out);
        if !kind.arity_ok(ins.len()) {
            return Err(NetlistError::BadArity {
                name: self.names[output.index()].clone(),
                got: ins.len(),
            });
        }
        let inputs = ins.iter().map(|s| self.signal(s)).collect();
        self.drive(output, Driver::Gate(self.gates.len()))?;
        self.gates.push(Gate {
            output,
            kind,
            inputs,
        });
        Ok(output)
    }

    fn drive(&mut self, id: SignalId, d: Driver) -> Result<(), NetlistError> {
        let slot = &mut self.drivers[id.index()];
        if slot.is_some() {
            return Err(NetlistError::MultiplyDriven {
                name: self.names[id.index()].clone(),
            });
        }
        *slot = Some(d);
        Ok(())
    }

    /// Validates and produces the netlist.
    ///
    /// # Errors
    ///
    /// Fails if a signal is undriven or the combinational logic is cyclic.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        for (i, d) in self.drivers.iter().enumerate() {
            if d.is_none() {
                return Err(NetlistError::Undriven {
                    name: self.names[i].clone(),
                });
            }
        }
        let net = Netlist {
            name: self.name,
            names: self.names,
            drivers: self.drivers,
            inputs: self.inputs,
            outputs: self.outputs,
            latches: self.latches,
            gates: self.gates,
        };
        // Cycle check doubles as a build of the topological order.
        crate::topo::order(&net).map(|_| net)
    }

    /// Produces the netlist **without** the undriven-signal and
    /// combinational-cycle checks of [`NetlistBuilder::finish`].
    ///
    /// Exists for analysis tooling (the `bfvr-nlint` mutation harness in
    /// particular) that needs to construct deliberately broken netlists
    /// and then watch the analyzer diagnose them. Anything downstream
    /// that calls [`Netlist::driver`] on an undriven signal will panic;
    /// use [`Netlist::driver_opt`] when walking such a netlist.
    #[must_use]
    pub fn finish_unchecked(self) -> Netlist {
        Netlist {
            name: self.name,
            names: self.names,
            drivers: self.drivers,
            inputs: self.inputs,
            outputs: self.outputs,
            latches: self.latches,
            gates: self.gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> NetlistBuilder {
        let mut b = NetlistBuilder::new("toy");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("x", GateKind::And, &["a", "q"]).unwrap();
        b.gate("d", GateKind::Xor, &["x", "b"]).unwrap();
        b.output("x");
        b
    }

    #[test]
    fn build_and_query() {
        let net = toy().finish().unwrap();
        assert_eq!(net.name(), "toy");
        assert_eq!(
            net.stats().to_string(),
            "2 inputs, 1 outputs, 1 latches, 2 gates"
        );
        assert_eq!(net.signal_name(net.inputs()[0]), "a");
        let q = net.find_signal("q").unwrap();
        assert_eq!(net.driver(q), Driver::Latch(0));
        assert!(net.find_signal("nope").is_none());
        assert_eq!(net.initial_state(), vec![false]);
    }

    #[test]
    fn undriven_detected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").unwrap();
        b.gate("x", GateKind::And, &["a", "ghost"]).unwrap();
        assert_eq!(
            b.finish().unwrap_err(),
            NetlistError::Undriven {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn multiply_driven_detected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").unwrap();
        let err = b.input("a").unwrap_err();
        assert_eq!(err, NetlistError::MultiplyDriven { name: "a".into() });
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a").unwrap();
        b.gate("x", GateKind::And, &["a", "y"]).unwrap();
        b.gate("y", GateKind::Or, &["x", "a"]).unwrap();
        assert!(matches!(
            b.finish().unwrap_err(),
            NetlistError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn latch_breaks_cycles() {
        // Feedback through a latch is sequential, not combinational.
        let mut b = NetlistBuilder::new("seq");
        b.latch("q", "d", true).unwrap();
        b.gate("d", GateKind::Not, &["q"]).unwrap();
        let net = b.finish().unwrap();
        assert_eq!(net.initial_state(), vec![true]);
    }

    #[test]
    fn arity_validation() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").unwrap();
        b.input("b").unwrap();
        let err = b.gate("x", GateKind::Not, &["a", "b"]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::BadArity {
                name: "x".into(),
                got: 2
            }
        );
    }

    #[test]
    fn gate_eval_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(Or.eval(&[false, true]));
        assert!(Nand.eval(&[true, false]));
        assert!(!Nor.eval(&[false, true]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
        assert!(Xor.eval(&[true, false, false]));
        assert!(!Xor.eval(&[true, true]));
        assert!(Xnor.eval(&[true, true]));
        assert!(!Const0.eval(&[]));
        assert!(Const1.eval(&[]));
        let cover = Cover(vec![vec![Some(true), None], vec![Some(false), Some(false)]]);
        assert!(cover.eval(&[true, false]));
        assert!(cover.eval(&[false, false]));
        assert!(!cover.eval(&[false, true]));
    }

    #[test]
    fn cover_arity() {
        let cover = GateKind::Cover(vec![vec![Some(true), None]]);
        assert!(cover.arity_ok(2));
        assert!(!cover.arity_ok(3));
    }
}
