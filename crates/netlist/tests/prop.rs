//! Property tests: random netlists survive both serialization formats
//! with identical behaviour.
//!
//! Deterministic xorshift generation keeps the suite dependency-free; a
//! failing case is reproducible from the printed case number.

use bfvr_netlist::{bench, blif, GateKind, Netlist, NetlistBuilder};

const CASES: u64 = 64;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A recipe for one random gate: kind selector and fan-in picks.
#[derive(Clone, Debug)]
struct GateSpec {
    kind: u8,
    fanins: Vec<u8>,
}

/// A recipe for a random sequential netlist.
#[derive(Clone, Debug)]
struct NetSpec {
    num_inputs: u8,
    num_latches: u8,
    gates: Vec<GateSpec>,
    latch_sources: Vec<u8>,
    inits: Vec<bool>,
}

impl NetSpec {
    fn random(rng: &mut Rng) -> NetSpec {
        let num_inputs = 1 + rng.below(3) as u8;
        let num_latches = 1 + rng.below(4) as u8;
        let gates = (0..1 + rng.below(11))
            .map(|_| GateSpec {
                kind: rng.next() as u8,
                fanins: (0..1 + rng.below(3)).map(|_| rng.next() as u8).collect(),
            })
            .collect();
        let latch_sources = (0..num_latches).map(|_| rng.next() as u8).collect();
        let inits = (0..num_latches).map(|_| rng.flip()).collect();
        NetSpec {
            num_inputs,
            num_latches,
            gates,
            latch_sources,
            inits,
        }
    }
}

fn for_cases(seed: u64, mut check: impl FnMut(u64, &mut Rng)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

/// Materializes a spec into a valid netlist: gates may only read inputs,
/// latch outputs and *earlier* gates, which makes the result acyclic by
/// construction.
fn build(spec: &NetSpec) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut readable: Vec<String> = Vec::new();
    for i in 0..spec.num_inputs {
        let name = format!("in{i}");
        b.input(&name).expect("fresh input");
        readable.push(name);
    }
    for l in 0..spec.num_latches {
        let name = format!("q{l}");
        b.latch(&name, format!("d{l}"), spec.inits[l as usize])
            .expect("fresh latch");
        readable.push(name);
    }
    for (gi, g) in spec.gates.iter().enumerate() {
        let kind = match g.kind % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Not,
            5 => GateKind::Buf,
            6 => GateKind::Xor,
            _ => GateKind::Xnor,
        };
        let arity = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            g.fanins.len()
        };
        let ins: Vec<String> = (0..arity)
            .map(|k| {
                let pick = g.fanins[k % g.fanins.len()] as usize % readable.len();
                readable[pick].clone()
            })
            .collect();
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        let name = format!("g{gi}");
        b.gate(&name, kind, &refs).expect("fresh gate");
        readable.push(name);
    }
    // Latch data inputs and one primary output pick from anything readable.
    for l in 0..spec.num_latches {
        let pick = spec.latch_sources[l as usize] as usize % readable.len();
        b.gate(format!("d{l}"), GateKind::Buf, &[readable[pick].as_str()])
            .expect("fresh data buf");
    }
    b.output(readable.last().expect("non-empty"));
    b.finish().expect("acyclic by construction")
}

/// Reference interpreter step.
fn step(net: &Netlist, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let order = bfvr_netlist::topo::order(net).expect("validated");
    let mut vals = vec![false; net.num_signals()];
    for (i, &s) in net.inputs().iter().enumerate() {
        vals[s.index()] = inputs[i];
    }
    for (i, l) in net.latches().iter().enumerate() {
        vals[l.output.index()] = state[i];
    }
    for g in order {
        let gate = &net.gates()[g];
        let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
        vals[gate.output.index()] = gate.kind.eval(&ins);
    }
    let next = net
        .latches()
        .iter()
        .map(|l| vals[l.input.index()])
        .collect();
    let outs = net.outputs().iter().map(|&o| vals[o.index()]).collect();
    (next, outs)
}

fn behaviourally_equal(a: &Netlist, b: &Netlist, seed: u64) {
    assert_eq!(a.initial_state(), b.initial_state());
    let mut sa = a.initial_state();
    let mut sb = b.initial_state();
    let mut rng = seed | 1;
    for t in 0..32 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let ins: Vec<bool> = (0..a.inputs().len()).map(|i| rng >> i & 1 == 1).collect();
        let (na, oa) = step(a, &sa, &ins);
        let (nb, ob) = step(b, &sb, &ins);
        assert_eq!(oa, ob, "outputs diverged at step {t}");
        assert_eq!(na, nb, "states diverged at step {t}");
        sa = na;
        sb = nb;
    }
}

#[test]
fn bench_roundtrip_is_behaviour_preserving() {
    for_cases(0xE711, |case, rng| {
        let spec = NetSpec::random(rng);
        let seed = rng.next();
        let net = build(&spec);
        let text = bench::write(&net).expect("no covers in random nets");
        let again = bench::parse(&text).expect("own output parses");
        assert_eq!(again.stats(), net.stats(), "case {case}");
        behaviourally_equal(&net, &again, seed);
    });
}

#[test]
fn blif_roundtrip_is_behaviour_preserving() {
    for_cases(0xE712, |case, rng| {
        let spec = NetSpec::random(rng);
        let seed = rng.next();
        let net = build(&spec);
        let text = blif::write(&net);
        let again = blif::parse(&text).expect("own output parses");
        // BLIF re-expresses gates as covers, so only behaviour matches.
        assert_eq!(again.inputs().len(), net.inputs().len(), "case {case}");
        assert_eq!(again.latches().len(), net.latches().len(), "case {case}");
        behaviourally_equal(&net, &again, seed);
    });
}

#[test]
fn cone_reduction_preserves_outputs() {
    for_cases(0xE713, |case, rng| {
        let spec = NetSpec::random(rng);
        let seed = rng.next();
        let net = build(&spec);
        let reduced = bfvr_netlist::topo::reduce_to_outputs(&net).expect("reducible");
        assert!(
            reduced.latches().len() <= net.latches().len(),
            "case {case}"
        );
        // Compare output traces (states may differ in dead latches).
        let mut sa = net.initial_state();
        let mut sb = reduced.initial_state();
        let mut s = seed | 1;
        for _ in 0..32 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ins_full: Vec<bool> = (0..net.inputs().len()).map(|i| s >> i & 1 == 1).collect();
            // The reduced net may have dropped inputs; map by name.
            let ins_red: Vec<bool> = reduced
                .inputs()
                .iter()
                .map(|&sig| {
                    let name = reduced.signal_name(sig);
                    let pos = net
                        .inputs()
                        .iter()
                        .position(|&t| net.signal_name(t) == name)
                        .expect("input names preserved");
                    ins_full[pos]
                })
                .collect();
            let (na, oa) = step(&net, &sa, &ins_full);
            let (nb, ob) = step(&reduced, &sb, &ins_red);
            assert_eq!(oa, ob, "case {case}: outputs diverged after reduction");
            sa = na;
            sb = nb;
        }
    });
}
