//! The diagnostic vocabulary: passes, severities, witnesses, findings and
//! the sorted report.

use std::fmt;

use bfvr_bdd::{Bdd, BddManager, Var};

/// How serious a finding is.
///
/// Ordered so that `Info < Warning < Error`; reports sort descending.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Context the caller may want (e.g. an audit skipped as inconclusive).
    Info,
    /// A quality problem that does not make results wrong (e.g. a leak).
    Warning,
    /// A broken invariant: results can no longer be trusted.
    Error,
}

impl Severity {
    /// Lowercase label, as rendered in diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysis passes of the framework, in the order they run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Graph well-formedness: variable-order monotonicity, the
    /// no-complemented-hi canonical rule, unique-table canonicity and the
    /// refcount/arena audit (subsumes the old `check_invariants`).
    GraphWf,
    /// Dead-node and cache-residue leak detection after collection.
    Leak,
    /// BFV support restriction: `f_i` depends only on `v_1 … v_i` (§2.2).
    BfvSupport,
    /// Exclusivity and completeness of the `f¹`/`f⁰`/`fᶜ` condition
    /// partition (§2.2).
    BfvPartition,
    /// Idempotence `F(F(X)) = F(X)`, checked symbolically: members map to
    /// themselves (§2.2, canonicity condition 2).
    BfvIdempotence,
    /// CDec prefix restriction: constraint `c_i` ranges over `v_1 … v_i`
    /// only, and the decomposition has one constraint per component
    /// (§2.7).
    CdecPrefix,
    /// Cross-representation equivalence: χ, the BFV range and the CDec
    /// constraints describe the same set.
    CrossEquiv,
}

impl Pass {
    /// Every pass, in run order.
    pub const ALL: [Pass; 7] = [
        Pass::GraphWf,
        Pass::Leak,
        Pass::BfvSupport,
        Pass::BfvPartition,
        Pass::BfvIdempotence,
        Pass::CdecPrefix,
        Pass::CrossEquiv,
    ];

    /// Stable pass identifier, as rendered in diagnostics (`error[bfv-support]`).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Pass::GraphWf => "graph-wf",
            Pass::Leak => "leak",
            Pass::BfvSupport => "bfv-support",
            Pass::BfvPartition => "bfv-partition",
            Pass::BfvIdempotence => "bfv-idempotence",
            Pass::CdecPrefix => "cdec-prefix",
            Pass::CrossEquiv => "cross-equiv",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A concrete counterexample cube: one assignment of the violating BDD's
/// support variables under which the reported property fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// `(variable, value)` pairs, in variable order. Empty means the
    /// violation holds under every assignment.
    pub assignment: Vec<(Var, bool)>,
}

impl Witness {
    /// Extracts a witness cube from a non-⊥ violation function: a minterm
    /// of `violation`, restricted to its support variables. Returns `None`
    /// for ⊥ (no violation to witness).
    #[must_use]
    pub fn from_violation(m: &BddManager, violation: Bdd) -> Option<Witness> {
        let minterm = m.pick_minterm(violation, m.num_vars())?;
        let assignment = m
            .support(violation)
            .vars()
            .into_iter()
            .map(|v| (v, minterm[v.0 as usize]))
            .collect();
        Some(Witness { assignment })
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.assignment.is_empty() {
            return f.write_str("(any assignment)");
        }
        for (i, (v, val)) in self.assignment.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{v}={}", u8::from(*val))?;
        }
        Ok(())
    }
}

/// One diagnostic: a pass, a severity, the path of the violating object,
/// a message and (where extractable) a concrete witness cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced this finding.
    pub pass: Pass,
    /// How serious it is.
    pub severity: Severity,
    /// Path of the violating object, e.g. `bfv/component[2]` or
    /// `manager/slot[17]`, optionally scoped (`iter[3]/bfv/component[2]`).
    pub path: String,
    /// One-line description with the concrete numbers.
    pub message: String,
    /// A counterexample cube, when one can be extracted from the
    /// violating BDD.
    pub witness: Option<Witness>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.pass, self.message)?;
        write!(f, "\n  --> {}", self.path)?;
        if let Some(w) = &self.witness {
            write!(f, "\n  witness: {w}")?;
        }
        Ok(())
    }
}

/// An accumulating collection of findings with stable, diff-friendly
/// ordering: severity (most severe first), then pass id, then path.
#[derive(Clone, Debug, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings in sorted order (severity desc, pass id, path,
    /// message).
    #[must_use]
    pub fn sorted(&self) -> Vec<&Finding> {
        let mut v: Vec<&Finding> = self.findings.iter().collect();
        v.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.pass.id().cmp(b.pass.id()))
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.message.cmp(&b.message))
        });
        v
    }

    /// The most severe finding level, if any.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether any finding is at [`Severity::Error`] (the exit-code
    /// contract of `bfvr audit`: nonzero iff this is true).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Count of findings at exactly `severity`.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// All findings produced by `pass`, unsorted.
    pub fn by_pass(&self, pass: Pass) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.pass == pass)
    }

    /// Renders every finding in sorted order, one compiler-style block
    /// per finding, separated by blank lines.
    #[must_use]
    pub fn render(&self) -> String {
        let blocks: Vec<String> = self.sorted().iter().map(|f| f.to_string()).collect();
        blocks.join("\n\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: Pass, severity: Severity, path: &str) -> Finding {
        Finding {
            pass,
            severity,
            path: path.to_string(),
            message: "m".to_string(),
            witness: None,
        }
    }

    #[test]
    fn report_sorts_by_severity_then_pass_then_path() {
        let mut r = Report::new();
        r.push(finding(Pass::Leak, Severity::Warning, "b"));
        r.push(finding(Pass::BfvSupport, Severity::Error, "z"));
        r.push(finding(Pass::GraphWf, Severity::Error, "a"));
        r.push(finding(Pass::Leak, Severity::Warning, "a"));
        let order: Vec<(&str, &str)> = r
            .sorted()
            .iter()
            .map(|f| (f.pass.id(), f.path.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("bfv-support", "z"),
                ("graph-wf", "a"),
                ("leak", "a"),
                ("leak", "b"),
            ]
        );
        assert!(r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(r.count_at(Severity::Warning), 2);
    }

    #[test]
    fn witness_renders_as_cube() {
        let w = Witness {
            assignment: vec![(Var(0), true), (Var(3), false)],
        };
        assert_eq!(w.to_string(), "v0=1 v3=0");
        let any = Witness { assignment: vec![] };
        assert_eq!(any.to_string(), "(any assignment)");
    }

    #[test]
    fn finding_renders_compiler_style() {
        let f = Finding {
            pass: Pass::BfvSupport,
            severity: Severity::Error,
            path: "iter[3]/bfv/component[2]".to_string(),
            message: "component 2 depends on v5".to_string(),
            witness: Some(Witness {
                assignment: vec![(Var(5), true)],
            }),
        };
        assert_eq!(
            f.to_string(),
            "error[bfv-support]: component 2 depends on v5\n  --> iter[3]/bfv/component[2]\n  witness: v5=1"
        );
    }

    #[test]
    fn witness_extraction_restricts_to_support() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let c = m.var(Var(2));
        let f = m.and(a, c).unwrap();
        let w = Witness::from_violation(&m, f).unwrap();
        assert_eq!(w.assignment, vec![(Var(0), true), (Var(2), true)]);
        assert!(Witness::from_violation(&m, Bdd::FALSE).is_none());
        assert_eq!(
            Witness::from_violation(&m, Bdd::TRUE).unwrap().assignment,
            vec![]
        );
    }
}
