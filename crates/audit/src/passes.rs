//! The analysis passes and their driver, [`run_passes`].

use bfvr_bdd::{bdd_from_zdd, zdd_from_bdd, Bdd, BddManager, GraphIssueKind, Var, ZddStore};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::convert::{from_characteristic, to_characteristic};
use bfvr_bfv::{Bfv, Result, Space};
use bfvr_setrepr::Zonotope;

use crate::finding::{Finding, Pass, Report, Severity, Witness};

/// What to audit: a variable space plus whichever representations of the
/// set under scrutiny the caller holds. [`run_passes`] derives the missing
/// representations through the crate-boundary converters — so a χ-engine
/// iteration still exercises the full BFV/CDec battery, and the converters
/// themselves are audited on every call.
#[derive(Clone, Copy, Debug)]
pub struct AuditTargets<'a> {
    /// The component space the set lives in.
    pub space: &'a Space,
    /// The set as a canonical Boolean functional vector, if held.
    pub bfv: Option<&'a Bfv>,
    /// The set as a conjunctive decomposition, if held.
    pub cdec: Option<&'a CDec>,
    /// The set as a characteristic function, if held.
    pub chi: Option<Bdd>,
    /// The complete set of BDD roots the owner still holds; enables the
    /// leak pass (anything live but unreachable from these is garbage a
    /// collection should have reclaimed).
    pub leak_roots: Option<&'a [Bdd]>,
}

impl<'a> AuditTargets<'a> {
    /// Targets for a set held as a canonical BFV.
    #[must_use]
    pub fn for_bfv(space: &'a Space, bfv: &'a Bfv) -> Self {
        AuditTargets {
            space,
            bfv: Some(bfv),
            cdec: None,
            chi: None,
            leak_roots: None,
        }
    }

    /// Targets for a set held as a characteristic function.
    #[must_use]
    pub fn for_chi(space: &'a Space, chi: Bdd) -> Self {
        AuditTargets {
            space,
            bfv: None,
            cdec: None,
            chi: Some(chi),
            leak_roots: None,
        }
    }

    /// Targets for a set held as a conjunctive decomposition.
    #[must_use]
    pub fn for_cdec(space: &'a Space, cdec: &'a CDec) -> Self {
        AuditTargets {
            space,
            bfv: None,
            cdec: Some(cdec),
            chi: None,
            leak_roots: None,
        }
    }

    /// Adds a characteristic function to compare against.
    #[must_use]
    pub fn with_chi(mut self, chi: Bdd) -> Self {
        self.chi = Some(chi);
        self
    }

    /// Enables the leak pass with the owner's complete root set.
    #[must_use]
    pub fn with_leak_roots(mut self, roots: &'a [Bdd]) -> Self {
        self.leak_roots = Some(roots);
        self
    }
}

/// Runs every applicable pass over `targets`, appending findings to
/// `report` with paths prefixed by `scope` (pass an empty string for
/// none).
///
/// Pass order: graph well-formedness and leak detection first (pure
/// reads), then the semantic passes, which allocate scratch BDDs in `m`
/// (unrooted, so the owner's next collection reclaims them).
///
/// # Errors
///
/// Fails only on BDD resource exhaustion (node limit, deadline, injected
/// faults) inside the audit's own scratch work — the audit is then
/// *inconclusive*, not failed; findings already appended remain valid.
pub fn run_passes(
    m: &mut BddManager,
    targets: &AuditTargets<'_>,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    graph_pass(m, scope, report);
    if let Some(roots) = targets.leak_roots {
        leak_pass(m, roots, scope, report);
    }
    residue_pass(m, scope, report);

    let space = targets.space;
    // Derive the missing representations so every audit exercises the
    // full battery (and the converters along the way).
    let derived_bfv: Option<Bfv> = if targets.bfv.is_some() {
        None
    } else if let Some(chi) = targets.chi {
        let d = from_characteristic(m, space, chi)?;
        if d.is_none() && !chi.is_false() {
            report.push(scoped(
                scope,
                Pass::CrossEquiv,
                Severity::Error,
                "chi",
                "from_characteristic reported an empty set for a non-empty χ".to_string(),
                Witness::from_violation(m, chi),
            ));
        }
        d
    } else if let Some(d) = targets.cdec {
        // A malformed decomposition (wrong constraint count) cannot be
        // converted; the cdec pass reports the count mismatch instead.
        if d.constraints().len() == space.len() {
            Some(d.to_bfv(m, space)?)
        } else {
            None
        }
    } else {
        None
    };
    let bfv: Option<&Bfv> = targets.bfv.or(derived_bfv.as_ref());

    if let Some(f) = bfv {
        support_pass(m, space, f, scope, report)?;
        partition_pass(m, space, f, scope, report)?;
        idempotence_pass(m, space, f, scope, report)?;
    }

    let derived_cdec: Option<CDec> = match (targets.cdec, bfv) {
        (None, Some(f)) => Some(CDec::from_bfv(m, space, f)?),
        _ => None,
    };
    let cdec = targets.cdec.or(derived_cdec.as_ref());
    if let Some(d) = cdec {
        cdec_pass(m, space, d, scope, report)?;
    }

    cross_equiv_pass(m, space, targets.chi, bfv, cdec, scope, report)?;
    Ok(())
}

/// Prepends the scope to an object path.
fn scoped_path(scope: &str, path: &str) -> String {
    if scope.is_empty() {
        path.to_string()
    } else {
        format!("{scope}/{path}")
    }
}

/// Builds a finding with a scoped path.
fn scoped(
    scope: &str,
    pass: Pass,
    severity: Severity,
    path: &str,
    message: String,
    witness: Option<Witness>,
) -> Finding {
    Finding {
        pass,
        severity,
        path: scoped_path(scope, path),
        message,
        witness,
    }
}

/// Pass 1 — graph well-formedness: every structural rule of the
/// complement-edge ROBDD representation, via [`BddManager::audit_graph`].
fn graph_pass(m: &BddManager, scope: &str, report: &mut Report) {
    for issue in m.audit_graph() {
        // A counterexample cube can only be extracted when the violation
        // is local to a live node whose children are still walkable;
        // dead-child / free-list damage makes traversal unsafe.
        let walkable = matches!(
            issue.kind,
            GraphIssueKind::ComplementedHi
                | GraphIssueKind::RedundantNode
                | GraphIssueKind::OrderViolation
        );
        let f = issue.edge();
        let witness = if walkable && m.is_live(f) {
            Witness::from_violation(m, f)
        } else {
            None
        };
        report.push(scoped(
            scope,
            Pass::GraphWf,
            Severity::Error,
            &format!("manager/slot[{}]", issue.slot),
            format!("[{}] {}", issue.kind.label(), issue.detail),
            witness,
        ));
    }
}

/// Pass 6a — dead-node leak detection: live nodes unreachable from the
/// owner's complete root set right after a collection.
fn leak_pass(m: &BddManager, roots: &[Bdd], scope: &str, report: &mut Report) {
    let leaked = m.audit_leaks(roots);
    if leaked.is_empty() {
        return;
    }
    let first = leaked[0];
    report.push(scoped(
        scope,
        Pass::Leak,
        Severity::Warning,
        &format!("manager/slot[{}]", first.index() >> 1),
        format!(
            "{} live node(s) unreachable from any root survived collection",
            leaked.len()
        ),
        Witness::from_violation(m, first),
    ));
}

/// Pass 6b — cache residue: computed-cache entries referencing freed
/// slots (stale memoization that a recycled slot would resurrect).
fn residue_pass(m: &BddManager, scope: &str, report: &mut Report) {
    for issue in m.audit_cache_residue() {
        report.push(scoped(
            scope,
            Pass::Leak,
            Severity::Error,
            &format!("manager/slot[{}]", issue.slot),
            format!("[{}] {}", issue.kind.label(), issue.detail),
            None,
        ));
    }
}

/// The support violations of `f` against the prefix `v_1 … v_{i+1}`:
/// for each out-of-prefix variable, a function that is ⊤ exactly where
/// the two cofactors differ (so any of its minterms is a witness).
fn prefix_violations(
    m: &mut BddManager,
    space: &Space,
    f: Bdd,
    i: usize,
) -> Result<Vec<(Var, Bdd)>> {
    let allowed = &space.vars()[..=i];
    let mut out = Vec::new();
    for v in m.support(f).vars() {
        if !allowed.contains(&v) {
            let f0 = m.cofactor(f, v, false)?;
            let f1 = m.cofactor(f, v, true)?;
            let diff = m.xor(f0, f1)?;
            out.push((v, diff));
        }
    }
    Ok(out)
}

/// Pass 2 — BFV support restriction (§2.2, canonicity condition 1):
/// component `f_i` depends only on the choice variables `v_1 … v_i`.
fn support_pass(
    m: &mut BddManager,
    space: &Space,
    f: &Bfv,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    for i in 0..f.len() {
        for (v, diff) in prefix_violations(m, space, f.component(i), i)? {
            report.push(scoped(
                scope,
                Pass::BfvSupport,
                Severity::Error,
                &format!("bfv/component[{i}]"),
                format!(
                    "component {i} depends on {v}, outside its allowed prefix {}..={}",
                    space.var(0),
                    space.var(i)
                ),
                Witness::from_violation(m, diff),
            ));
        }
    }
    Ok(())
}

/// Pass 3 — condition-partition exclusivity and completeness (§2.2): the
/// selection conditions `f_i¹`, `f_i⁰`, `f_iᶜ` are pairwise disjoint and
/// cover every assignment of the earlier choice variables.
fn partition_pass(
    m: &mut BddManager,
    space: &Space,
    f: &Bfv,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    for i in 0..f.len() {
        let c = f.conditions(m, space, i)?;
        let named = [("f¹", c.one), ("f⁰", c.zero), ("fᶜ", c.choice)];
        for a in 0..named.len() {
            for b in a + 1..named.len() {
                let overlap = m.and(named[a].1, named[b].1)?;
                if !overlap.is_false() {
                    report.push(scoped(
                        scope,
                        Pass::BfvPartition,
                        Severity::Error,
                        &format!("bfv/component[{i}]"),
                        format!(
                            "conditions {} and {} of component {i} overlap",
                            named[a].0, named[b].0
                        ),
                        Witness::from_violation(m, overlap),
                    ));
                }
            }
        }
        let oz = m.or(c.one, c.zero)?;
        let cover = m.or(oz, c.choice)?;
        if !cover.is_true() {
            report.push(scoped(
                scope,
                Pass::BfvPartition,
                Severity::Error,
                &format!("bfv/component[{i}]"),
                format!("conditions of component {i} do not cover all earlier choices"),
                Witness::from_violation(m, m.not(cover)),
            ));
        }
    }
    Ok(())
}

/// Pass 4 — idempotence `F(F(X)) = F(X)` (§2.2, canonicity condition 2),
/// checked symbolically: composing every component with the vector itself
/// must be a fixed point, i.e. members map to themselves.
fn idempotence_pass(
    m: &mut BddManager,
    space: &Space,
    f: &Bfv,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    let mut map: Vec<Option<Bdd>> = vec![None; m.num_vars() as usize];
    for (j, &fj) in f.components().iter().enumerate() {
        map[space.var(j).0 as usize] = Some(fj);
    }
    for i in 0..f.len() {
        let ff = m.vector_compose(f.component(i), &map)?;
        if ff != f.component(i) {
            let diff = m.xor(ff, f.component(i))?;
            report.push(scoped(
                scope,
                Pass::BfvIdempotence,
                Severity::Error,
                &format!("bfv/component[{i}]"),
                format!("F(F(X)) differs from F(X) in component {i}: some member does not map to itself"),
                Witness::from_violation(m, diff),
            ));
        }
    }
    Ok(())
}

/// Pass 5 — CDec prefix restriction (§2.7): one constraint per component,
/// each `c_i` ranging over `v_1 … v_i` only.
fn cdec_pass(
    m: &mut BddManager,
    space: &Space,
    d: &CDec,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    if d.constraints().len() != space.len() {
        report.push(scoped(
            scope,
            Pass::CdecPrefix,
            Severity::Error,
            "cdec",
            format!(
                "decomposition has {} constraints for a {}-component space",
                d.constraints().len(),
                space.len()
            ),
            None,
        ));
    }
    for (i, &c) in d.constraints().iter().enumerate() {
        if i >= space.len() {
            break; // already reported as a count mismatch
        }
        for (v, diff) in prefix_violations(m, space, c, i)? {
            report.push(scoped(
                scope,
                Pass::CdecPrefix,
                Severity::Error,
                &format!("cdec/constraint[{i}]"),
                format!(
                    "constraint {i} depends on {v}, outside its allowed prefix {}..={}",
                    space.var(0),
                    space.var(i)
                ),
                Witness::from_violation(m, diff),
            ));
        }
    }
    Ok(())
}

/// Cube cap for the zonotope hull enumeration; past it the hull check
/// degrades to the (always sound) universe hull.
const HULL_CUBE_CAP: usize = 1024;

/// Pass 7 — cross-representation equivalence: every representation the
/// caller holds (or that was derived) must describe the same set of
/// states; any disagreement yields a witness state in the symmetric
/// difference. The same χ is also round-tripped through the two
/// non-BDD backends' production converters: `χ → ZDD → χ` must be the
/// identity, and the logical-zonotope affine hull of χ must *contain*
/// χ (zonotopes over-approximate, so containment is the contract, not
/// equality).
fn cross_equiv_pass(
    m: &mut BddManager,
    space: &Space,
    chi: Option<Bdd>,
    bfv: Option<&Bfv>,
    cdec: Option<&CDec>,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    let mut reps: Vec<(&'static str, Bdd)> = Vec::new();
    if let Some(chi) = chi {
        reps.push(("chi", chi));
    }
    if let Some(f) = bfv {
        reps.push(("bfv-range", to_characteristic(m, space, f)?));
    }
    if let Some(d) = cdec {
        reps.push(("cdec-conjunction", d.conjoin_all(m)?));
    }
    for w in reps.windows(2) {
        let ((na, a), (nb, b)) = (w[0], w[1]);
        let diff = m.xor(a, b)?;
        if !diff.is_false() {
            report.push(scoped(
                scope,
                Pass::CrossEquiv,
                Severity::Error,
                &format!("equiv/{na}<->{nb}"),
                format!("{na} and {nb} disagree on at least one state"),
                Witness::from_violation(m, diff),
            ));
        }
    }
    if let Some(&(name, chi)) = reps.first() {
        roundtrip_pass(m, space, name, chi, scope, report)?;
    }
    Ok(())
}

/// Pass 7b — new-backend round-trips of a χ through the production
/// converters (see [`cross_equiv_pass`]).
fn roundtrip_pass(
    m: &mut BddManager,
    space: &Space,
    name: &str,
    chi: Bdd,
    scope: &str,
    report: &mut Report,
) -> Result<()> {
    // χ → ZDD → χ: the zero-suppressed reduction is a bijection on
    // families over the state variables, so the round-trip is exact.
    // `zdd_from_bdd` walks the χ top-down, so its variable list must
    // ascend in the manager's *current* order — which a dynamic reorder
    // may have permuted away from the space's component order. Sorting
    // by level keeps the pass valid after `--sift`; the ZDD level ↔
    // variable assignment is private to this round-trip, so any
    // consistent order is correct.
    let mut zvars = space.vars().to_vec();
    zvars.sort_unstable_by_key(|&v| m.var_to_level(v));
    let mut store = ZddStore::new(space.len() as u32);
    let z = zdd_from_bdd(m, &mut store, chi, &zvars)?;
    let back = bdd_from_zdd(m, &store, z, &zvars)?;
    if back != chi {
        let diff = m.xor(back, chi)?;
        report.push(scoped(
            scope,
            Pass::CrossEquiv,
            Severity::Error,
            &format!("equiv/{name}<->zdd-roundtrip"),
            format!("{name} does not survive the χ → ZDD → χ round-trip"),
            Witness::from_violation(m, diff),
        ));
    }
    // χ → zonotope hull → χ: the affine hull must contain every state
    // of χ. (`hull_of_chi` is `None` only for χ = ⊥, which is trivially
    // contained in anything.)
    if let Some(hull) = Zonotope::hull_of_chi(m, chi, space.vars(), HULL_CUBE_CAP) {
        let hull_chi = hull.to_chi(m, space.vars())?;
        let escapes = {
            let not_hull = m.not(hull_chi);
            m.and(chi, not_hull)?
        };
        if !escapes.is_false() {
            report.push(scoped(
                scope,
                Pass::CrossEquiv,
                Severity::Error,
                &format!("equiv/{name}<->zonotope-hull"),
                format!("a state of {name} escapes its own affine hull"),
                Witness::from_violation(m, escapes),
            ));
        }
    } else if !chi.is_false() {
        report.push(scoped(
            scope,
            Pass::CrossEquiv,
            Severity::Error,
            &format!("equiv/{name}<->zonotope-hull"),
            format!("hull_of_chi reported an empty hull for a non-empty {name}"),
            Witness::from_violation(m, chi),
        ));
    }
    Ok(())
}
