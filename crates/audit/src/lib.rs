//! # bfvr-audit — pass-based semantic analysis with compiler-style diagnostics
//!
//! Every algorithm in the `bfvr` reproduction of *"Set Manipulation with
//! Boolean Functional Vectors for Symbolic Reachability Analysis"* (Goel &
//! Bryant, DATE 2003) rests on structural invariants: the canonical-BFV
//! conditions of §2.2, the CDec correspondence of §2.7, and the
//! complement-edge/ordered-DAG rules of the BDD core. A bug in `reparam`,
//! `ops` or `cdec` would otherwise surface only as a wrong reached-state
//! count many iterations later. This crate makes those invariants
//! machine-checked analysis passes that emit structured, compiler-style
//! diagnostics — each [`Finding`] names its [`Pass`], a [`Severity`], the
//! violating object's path, a message with the concrete numbers, and
//! (where extractable) a [`Witness`]: a concrete counterexample cube from
//! the violating BDD.
//!
//! The seven passes, in run order:
//!
//! 1. **`graph-wf`** — BDD graph well-formedness: variable-order
//!    monotonicity, the no-complemented-hi canonical rule, unique-table
//!    canonicity and the refcount/arena audit (subsumes the old
//!    `BddManager::check_invariants`).
//! 2. **`leak`** — dead-node and cache-residue detection after
//!    collection.
//! 3. **`bfv-support`** — each component `f_i` depends only on
//!    `v_1 … v_i` (§2.2, canonicity condition 1).
//! 4. **`bfv-partition`** — the selection conditions `f¹`/`f⁰`/`fᶜ` are
//!    mutually exclusive and complete (§2.2).
//! 5. **`bfv-idempotence`** — `F(F(X)) = F(X)`, checked symbolically:
//!    members map to themselves (§2.2, canonicity condition 2).
//! 6. **`cdec-prefix`** — McMillan decompositions have one constraint per
//!    component, each over its variable prefix (§2.7).
//! 7. **`cross-equiv`** — χ, the BFV range and the CDec conjunction
//!    describe the same set; missing representations are derived through
//!    the converters, so those are audited too. The same χ is also
//!    round-tripped through the two non-BDD backends' production
//!    converters: `χ → ZDD → χ` must be the identity, and the
//!    logical-zonotope affine hull of χ must contain χ (zonotopes
//!    over-approximate, so the contract is containment, not equality).
//!
//! Entry points: [`run_passes`] over an [`AuditTargets`] bundle
//! (used per-iteration by the reach engines' `audit` feature and by the
//! `bfvr audit` CLI subcommand), and [`run_mutations`] — the
//! mutation-based self-test harness that seeds deliberate corruptions and
//! proves each detector fires.
//!
//! ```
//! use bfvr_bdd::{BddManager, Var};
//! use bfvr_bfv::{Space, StateSet};
//! use bfvr_audit::{run_passes, AuditTargets, Report};
//!
//! # fn main() -> Result<(), bfvr_bfv::BfvError> {
//! let mut m = BddManager::new(3);
//! let space = Space::contiguous(3);
//! let s = StateSet::from_points(
//!     &mut m,
//!     &space,
//!     &[vec![false, true, false], vec![true, false, true]],
//! )?;
//! let mut report = Report::new();
//! run_passes(
//!     &mut m,
//!     &AuditTargets::for_bfv(&space, s.as_bfv().unwrap()),
//!     "",
//!     &mut report,
//! )?;
//! assert!(report.is_empty(), "{}", report.render());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod finding;
mod mutation;
mod passes;

pub use finding::{Finding, Pass, Report, Severity, Witness};
pub use mutation::{run_mutations, MutationOutcome};
pub use passes::{run_passes, AuditTargets};
