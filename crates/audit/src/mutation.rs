//! Mutation-based self-test harness: seeds deliberate corruptions and
//! reports whether the matching pass detects each one.
//!
//! An analysis framework is only trustworthy if its detectors are
//! themselves tested. [`run_mutations`] takes a *clean* canonical vector,
//! applies one corruption per pass — flip a complement bit, widen a
//! support, drop a constraint, free a live slot, strand an unrooted node,
//! flip a member in χ — runs the full pass battery over each corrupted
//! object, and reports per mutation whether the targeted pass fired and
//! whether it produced a concrete witness cube.
//!
//! Graph-level corruptions run in private scratch managers (via
//! [`bfvr_bdd::Corruption`]) so the caller's manager is never poisoned;
//! object-level corruptions build new corrupted objects in the caller's
//! manager, which its next collection reclaims.

use bfvr_bdd::{Bdd, BddManager, Corruption, Var};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::convert::to_characteristic;
use bfvr_bfv::{Bfv, Result, Space};

use crate::finding::{Pass, Report};
use crate::passes::{run_passes, AuditTargets};

/// The result of one seeded corruption.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// Stable mutation label, e.g. `bfv/widen-support`.
    pub label: &'static str,
    /// The pass this corruption targets.
    pub expected: Pass,
    /// Whether the targeted pass produced at least one finding.
    pub fired: bool,
    /// Whether at least one of the targeted pass's findings carried a
    /// concrete witness cube.
    pub with_witness: bool,
    /// Total findings across all passes (other passes may fire too; a
    /// corruption rarely violates exactly one invariant).
    pub findings: usize,
}

/// Summarizes a report against the pass a mutation targets.
fn outcome(label: &'static str, expected: Pass, report: &Report) -> MutationOutcome {
    let mut fired = false;
    let mut with_witness = false;
    for f in report.by_pass(expected) {
        fired = true;
        if f.witness.is_some() {
            with_witness = true;
        }
    }
    MutationOutcome {
        label,
        expected,
        fired,
        with_witness,
        findings: report.len(),
    }
}

/// Runs the full battery over `targets` into a fresh report.
fn audit(m: &mut BddManager, targets: &AuditTargets<'_>) -> Result<Report> {
    let mut report = Report::new();
    run_passes(m, targets, "", &mut report)?;
    Ok(report)
}

/// A scratch manager holding one binary operation's result, for graph
/// corruptions that must not poison the caller's manager.
fn scratch() -> Result<(BddManager, Bdd)> {
    let mut s = BddManager::new(3);
    let a = s.var(Var(0));
    let b = s.var(Var(1));
    let g = s.xor(a, b)?;
    Ok((s, g))
}

/// Structure-only targets (no set representations): on a deliberately
/// corrupted manager the semantic passes cannot run safely, so only the
/// graph, residue and (optionally) leak passes apply.
fn graph_only(space: &Space) -> AuditTargets<'_> {
    AuditTargets {
        space,
        bfv: None,
        cdec: None,
        chi: None,
        leak_roots: None,
    }
}

/// Seeds one corruption per pass and reports which detectors fired.
///
/// `clean` must be a canonical vector over `space` (audit it first to be
/// sure). For every pass to be demonstrable the set needs some internal
/// structure: at least two components, at least two members, and a
/// non-constant first component — the reached set of any bundled
/// benchmark circuit after a few iterations qualifies, as does the
/// paper's Table 1 example. Degenerate sets make some corruptions
/// *semantics-preserving* (negating a constant component of a singleton
/// yields a different but perfectly valid set), which no invariant check
/// can or should flag; the corresponding outcome honestly reports
/// `fired: false`.
///
/// # Errors
///
/// Fails only on BDD resource exhaustion during the audits themselves.
pub fn run_mutations(
    m: &mut BddManager,
    space: &Space,
    clean: &Bfv,
) -> Result<Vec<MutationOutcome>> {
    let mut out = Vec::new();

    // 1. graph/complement-hi — flip the complement bit on a stored hi
    //    edge: breaks the canonical form (pass 1).
    {
        let (mut s, g) = scratch()?;
        s.corrupt_for_audit(g, Corruption::ComplementHi);
        let sp = Space::contiguous(2);
        let rep = audit(&mut s, &graph_only(&sp))?;
        out.push(outcome("graph/complement-hi", Pass::GraphWf, &rep));
    }

    // 2. graph/free-live-slot — free a slot the unique table and the
    //    computed caches still reference: dangling references (pass 6,
    //    cache residue; pass 1 also fires on the unique table).
    {
        let (mut s, g) = scratch()?;
        s.corrupt_for_audit(g, Corruption::FreeLiveSlot);
        let sp = Space::contiguous(2);
        let rep = audit(&mut s, &graph_only(&sp))?;
        out.push(outcome("graph/free-live-slot", Pass::Leak, &rep));
    }

    // 3. leak/unrooted-survivor — a live node unreachable from every
    //    root right after a collection (pass 6, dead-node leak).
    {
        let (mut s, g) = scratch()?;
        let pin = s.func(g);
        s.collect_garbage(&[]);
        drop(pin);
        let sp = Space::contiguous(2);
        let roots: [Bdd; 0] = [];
        let rep = audit(&mut s, &graph_only(&sp).with_leak_roots(&roots))?;
        out.push(outcome("leak/unrooted-survivor", Pass::Leak, &rep));
    }

    // 4. bfv/widen-support — make component 0 depend on the last choice
    //    variable, outside its allowed prefix (pass 2).
    {
        let late = m.var(space.var(space.len() - 1));
        let mut comps = clean.components().to_vec();
        comps[0] = m.xor(comps[0], late)?;
        let bad = Bfv::from_components(space, comps)?;
        let rep = audit(m, &AuditTargets::for_bfv(space, &bad))?;
        out.push(outcome("bfv/widen-support", Pass::BfvSupport, &rep));
    }

    // 5. bfv/flip-complement — negate a component with a non-⊥ choice
    //    condition: the flipped component's f¹ and f⁰ overlap exactly on
    //    the old fᶜ (pass 3).
    {
        let mut flip = None;
        for i in 0..clean.len() {
            if !clean.conditions(m, space, i)?.choice.is_false() {
                flip = Some(i);
                break;
            }
        }
        let i = flip.unwrap_or(clean.len() - 1);
        let mut comps = clean.components().to_vec();
        comps[i] = m.not(comps[i]);
        let bad = Bfv::from_components(space, comps)?;
        let rep = audit(m, &AuditTargets::for_bfv(space, &bad))?;
        out.push(outcome("bfv/flip-complement", Pass::BfvPartition, &rep));
    }

    // 6. bfv/negate-head — negate the first non-constant component: a
    //    member X now maps to X with that bit flipped, breaking
    //    F(F(X)) = F(X) (pass 4).
    {
        let i = (0..clean.len())
            .find(|&i| !clean.component(i).is_const())
            .unwrap_or(0);
        let mut comps = clean.components().to_vec();
        comps[i] = m.not(comps[i]);
        let bad = Bfv::from_components(space, comps)?;
        let rep = audit(m, &AuditTargets::for_bfv(space, &bad))?;
        out.push(outcome("bfv/negate-head", Pass::BfvIdempotence, &rep));
    }

    // 7. cdec/widen-constraint — make constraint 0 depend on the last
    //    choice variable, outside its allowed prefix (pass 5).
    {
        let d = CDec::from_bfv(m, space, clean)?;
        let late = m.var(space.var(space.len() - 1));
        let mut cs = d.constraints().to_vec();
        cs[0] = m.xor(cs[0], late)?;
        let bad = CDec::from_constraints(cs);
        let rep = audit(m, &AuditTargets::for_cdec(space, &bad))?;
        out.push(outcome("cdec/widen-constraint", Pass::CdecPrefix, &rep));
    }

    // 8. cdec/drop-constraint — remove a constraint: the decomposition no
    //    longer has one constraint per component (pass 5).
    {
        let d = CDec::from_bfv(m, space, clean)?;
        let mut cs = d.constraints().to_vec();
        cs.remove(0);
        let bad = CDec::from_constraints(cs);
        let rep = audit(m, &AuditTargets::for_cdec(space, &bad))?;
        out.push(outcome("cdec/drop-constraint", Pass::CdecPrefix, &rep));
    }

    // 9. chi/flip-member — flip one state's membership in χ while the
    //    vector still describes the original set (pass 7).
    {
        let chi = to_characteristic(m, space, clean)?;
        let point = m
            .pick_minterm(chi, m.num_vars())
            .unwrap_or_else(|| vec![false; m.num_vars() as usize]);
        let mut cube = Bdd::TRUE;
        for &v in space.vars() {
            let lit = if point[v.0 as usize] {
                m.var(v)
            } else {
                m.nvar(v)
            };
            cube = m.and(cube, lit)?;
        }
        let bad_chi = m.xor(chi, cube)?;
        let rep = audit(m, &AuditTargets::for_bfv(space, clean).with_chi(bad_chi))?;
        out.push(outcome("chi/flip-member", Pass::CrossEquiv, &rep));
    }

    Ok(out)
}
