//! Seeded-corruption regression tests: one per analysis pass, plus
//! clean-run zero-findings baselines and the full mutation-harness sweep.
//!
//! Each test corrupts exactly one invariant and asserts that the
//! *targeted* pass produces a finding — with a concrete witness cube
//! where one is extractable — so a future regression in any detector
//! fails its own named test, not a distant aggregate.

use bfvr_audit::{run_mutations, run_passes, AuditTargets, Pass, Report, Severity};
use bfvr_bdd::{BddManager, Corruption, Var};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::convert::to_characteristic;
use bfvr_bfv::{Bfv, Space, StateSet};

/// A structurally rich sample set over three components: four members,
/// non-constant first component — enough for every corruption to be
/// semantics-changing.
fn sample(m: &mut BddManager) -> (Space, Bfv) {
    let space = Space::contiguous(3);
    let pts = [
        vec![false, false, true],
        vec![false, true, false],
        vec![true, false, false],
        vec![true, true, true],
    ];
    let s = StateSet::from_points(m, &space, &pts).unwrap();
    let bfv = s.as_bfv().unwrap().clone();
    (space, bfv)
}

fn audit(m: &mut BddManager, targets: &AuditTargets<'_>) -> Report {
    let mut report = Report::new();
    run_passes(m, targets, "", &mut report).unwrap();
    report
}

fn graph_only(space: &Space) -> AuditTargets<'_> {
    AuditTargets {
        space,
        bfv: None,
        cdec: None,
        chi: None,
        leak_roots: None,
    }
}

// ---------------------------------------------------------------- clean

#[test]
fn clean_bfv_audits_with_zero_findings() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let chi = to_characteristic(&mut m, &space, &bfv).unwrap();
    let report = audit(&mut m, &AuditTargets::for_bfv(&space, &bfv).with_chi(chi));
    assert!(report.is_empty(), "{}", report.render());
}

#[test]
fn clean_chi_audits_with_zero_findings() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let chi = to_characteristic(&mut m, &space, &bfv).unwrap();
    let report = audit(&mut m, &AuditTargets::for_chi(&space, chi));
    assert!(report.is_empty(), "{}", report.render());
}

#[test]
fn clean_cdec_audits_with_zero_findings() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let dec = CDec::from_bfv(&mut m, &space, &bfv).unwrap();
    let report = audit(&mut m, &AuditTargets::for_cdec(&space, &dec));
    assert!(report.is_empty(), "{}", report.render());
}

// ------------------------------------------------- pass 1: graph-wf

#[test]
fn complemented_hi_fires_graph_pass_with_witness() {
    let mut m = BddManager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let g = m.xor(a, b).unwrap();
    m.corrupt_for_audit(g, Corruption::ComplementHi);
    let sp = Space::contiguous(2);
    let report = audit(&mut m, &graph_only(&sp));
    let f = report
        .by_pass(Pass::GraphWf)
        .next()
        .expect("graph pass must fire");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.witness.is_some(), "complemented-hi is walkable: {f}");
}

#[test]
fn swapped_children_fire_graph_pass() {
    let mut m = BddManager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let g = m.and(a, b).unwrap();
    m.corrupt_for_audit(g, Corruption::SwapChildren);
    let sp = Space::contiguous(2);
    let report = audit(&mut m, &graph_only(&sp));
    assert!(report.by_pass(Pass::GraphWf).next().is_some());
    assert!(report.has_errors());
}

// ---------------------------------------------------- pass 2: leak

#[test]
fn freed_live_slot_fires_leak_pass_as_cache_residue() {
    let mut m = BddManager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let g = m.xor(a, b).unwrap();
    m.corrupt_for_audit(g, Corruption::FreeLiveSlot);
    let sp = Space::contiguous(2);
    let report = audit(&mut m, &graph_only(&sp));
    let f = report
        .by_pass(Pass::Leak)
        .next()
        .expect("residue pass must fire");
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn unrooted_survivor_fires_leak_pass_with_witness() {
    let mut m = BddManager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let g = m.xor(a, b).unwrap();
    let pin = m.func(g);
    m.collect_garbage(&[]);
    drop(pin); // g survived the collection but no root holds it now
    let sp = Space::contiguous(2);
    let roots: [bfvr_bdd::Bdd; 0] = [];
    let report = audit(&mut m, &graph_only(&sp).with_leak_roots(&roots));
    let f = report
        .by_pass(Pass::Leak)
        .next()
        .expect("leak pass must fire");
    assert_eq!(f.severity, Severity::Warning);
    assert!(f.witness.is_some(), "leaked node is walkable: {f}");
}

// -------------------------------------------- pass 3: bfv-support

#[test]
fn widened_support_fires_support_pass_with_witness() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let late = m.var(space.var(2));
    let mut comps = bfv.components().to_vec();
    comps[0] = m.xor(comps[0], late).unwrap();
    let bad = Bfv::from_components(&space, comps).unwrap();
    let report = audit(&mut m, &AuditTargets::for_bfv(&space, &bad));
    let f = report
        .by_pass(Pass::BfvSupport)
        .next()
        .expect("support pass must fire");
    assert_eq!(f.severity, Severity::Error);
    // The cofactor diff may be a tautology (every assignment witnesses
    // the dependence), so the cube can be empty — but it must exist, and
    // the message must name the out-of-prefix variable.
    assert!(f.witness.is_some(), "support violation has a cube: {f}");
    assert!(
        f.message.contains("v2"),
        "message must name the out-of-prefix variable: {f}"
    );
}

// ------------------------------------------ pass 4: bfv-partition

#[test]
fn flipped_complement_fires_partition_pass() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let i = (0..bfv.len())
        .find(|&i| !bfv.conditions(&mut m, &space, i).unwrap().choice.is_false())
        .expect("sample set has a free-choice component");
    let mut comps = bfv.components().to_vec();
    comps[i] = m.not(comps[i]);
    let bad = Bfv::from_components(&space, comps).unwrap();
    let report = audit(&mut m, &AuditTargets::for_bfv(&space, &bad));
    let f = report
        .by_pass(Pass::BfvPartition)
        .next()
        .expect("partition pass must fire");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.witness.is_some(), "overlap has a concrete cube: {f}");
}

// ---------------------------------------- pass 5: bfv-idempotence

#[test]
fn negated_component_fires_idempotence_pass() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let i = (0..bfv.len())
        .find(|&i| !bfv.component(i).is_const())
        .expect("sample set has a non-constant component");
    let mut comps = bfv.components().to_vec();
    comps[i] = m.not(comps[i]);
    let bad = Bfv::from_components(&space, comps).unwrap();
    let report = audit(&mut m, &AuditTargets::for_bfv(&space, &bad));
    assert!(
        report.by_pass(Pass::BfvIdempotence).next().is_some(),
        "{}",
        report.render()
    );
}

// ------------------------------------------- pass 6: cdec-prefix

#[test]
fn widened_constraint_fires_cdec_pass_with_witness() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let d = CDec::from_bfv(&mut m, &space, &bfv).unwrap();
    let late = m.var(space.var(2));
    let mut cs = d.constraints().to_vec();
    cs[0] = m.xor(cs[0], late).unwrap();
    let bad = CDec::from_constraints(cs);
    let report = audit(&mut m, &AuditTargets::for_cdec(&space, &bad));
    let f = report
        .by_pass(Pass::CdecPrefix)
        .next()
        .expect("cdec pass must fire");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.witness.is_some(), "prefix violation has a cube: {f}");
}

#[test]
fn dropped_constraint_fires_cdec_pass() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let d = CDec::from_bfv(&mut m, &space, &bfv).unwrap();
    let mut cs = d.constraints().to_vec();
    cs.remove(0);
    let bad = CDec::from_constraints(cs);
    let report = audit(&mut m, &AuditTargets::for_cdec(&space, &bad));
    assert!(
        report.by_pass(Pass::CdecPrefix).next().is_some(),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

// ------------------------------------------- pass 7: cross-equiv

#[test]
fn flipped_chi_member_fires_cross_equiv_pass() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let chi = to_characteristic(&mut m, &space, &bfv).unwrap();
    // Remove one member from χ while the vector keeps it.
    let v0 = m.nvar(space.var(0));
    let v1 = m.nvar(space.var(1));
    let v2 = m.var(space.var(2));
    let a = m.and(v0, v1).unwrap();
    let cube = m.and(a, v2).unwrap(); // the member 001
    let bad_chi = m.xor(chi, cube).unwrap();
    let report = audit(
        &mut m,
        &AuditTargets::for_bfv(&space, &bfv).with_chi(bad_chi),
    );
    let f = report
        .by_pass(Pass::CrossEquiv)
        .next()
        .expect("cross-equiv pass must fire");
    assert_eq!(f.severity, Severity::Error);
    let w = f.witness.as_ref().expect("disagreement has a cube");
    assert!(!w.assignment.is_empty());
}

// ----------------------------------------------- the full harness

#[test]
fn mutation_harness_detects_every_corruption() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let outcomes = run_mutations(&mut m, &space, &bfv).unwrap();
    assert_eq!(outcomes.len(), 9, "one mutation per corruption kind");
    for o in &outcomes {
        assert!(
            o.fired,
            "{} was not detected by {}",
            o.label,
            o.expected.id()
        );
        // Every corruption except the freed-slot cache residue (whose
        // dangling entries reference unwalkable storage) yields a
        // concrete witness cube.
        if o.label != "graph/free-live-slot" {
            assert!(o.with_witness, "{} fired without a witness", o.label);
        }
    }
    // The harness never poisons the caller's manager.
    m.check_invariants().unwrap();
}

#[test]
fn findings_sort_by_severity_then_pass() {
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    // A corruption that yields both Error (support) and Warning (leak)
    // findings in one report: a support-widened vector plus an interior
    // node that survived the last collection with no remaining root.
    let a = m.var(space.var(0));
    let b = m.var(space.var(1));
    let g = m.and(a, b).unwrap();
    let g_pin = m.func(g);
    let late = m.var(space.var(2));
    let mut comps = bfv.components().to_vec();
    comps[0] = m.xor(comps[0], late).unwrap();
    let bad = Bfv::from_components(&space, comps).unwrap();
    let _bad_pins = bad.pin(&m);
    m.collect_garbage(&[]);
    drop(g_pin);
    let roots: [bfvr_bdd::Bdd; 0] = [];
    let mut report = Report::new();
    run_passes(
        &mut m,
        &AuditTargets::for_bfv(&space, &bad).with_leak_roots(&roots),
        "",
        &mut report,
    )
    .unwrap();
    let sorted = report.sorted();
    assert!(sorted.len() >= 2);
    for pair in sorted.windows(2) {
        assert!(
            pair[0].severity >= pair[1].severity,
            "not sorted by severity:\n{}",
            report.render()
        );
    }
    assert_eq!(sorted[0].severity, Severity::Error);
    assert_eq!(sorted.last().unwrap().severity, Severity::Warning);
}

#[test]
fn clean_chi_survives_the_new_backend_roundtrips() {
    // The cross-equiv pass now round-trips every audited χ through the
    // production χ↔ZDD converters and the zonotope hull. A clean set
    // must produce zero findings through both.
    let mut m = BddManager::new(3);
    let (space, bfv) = sample(&mut m);
    let chi = to_characteristic(&mut m, &space, &bfv).unwrap();
    let report = audit(&mut m, &AuditTargets::for_chi(&space, chi));
    assert!(report.is_empty(), "{}", report.render());
}

#[test]
fn empty_and_universe_chi_roundtrip_clean() {
    // Degenerate sets stress the zero-suppression rules (⊥ has no ZDD
    // nodes; ⊤ over three variables is the full-family ZDD) and the
    // hull edge case (⊥ has no affine hull, vacuously contained).
    let mut m = BddManager::new(3);
    let space = Space::contiguous(3);
    for chi in [bfvr_bdd::Bdd::FALSE, bfvr_bdd::Bdd::TRUE] {
        let report = audit(&mut m, &AuditTargets::for_chi(&space, chi));
        assert!(report.is_empty(), "{}", report.render());
    }
}
