//! Property tests: random formulas checked against a truth-table oracle.

use bfvr_bdd::{Bdd, BddManager, Var};
use proptest::prelude::*;

const NVARS: u32 = 5;

/// A tiny formula AST used to generate random functions.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Var(v) => asg[*v as usize],
            Expr::Const(b) => *b,
            Expr::Not(a) => !a.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
            Expr::Ite(c, t, e) => {
                if c.eval(asg) {
                    t.eval(asg)
                } else {
                    e.eval(asg)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(Var(*v)),
            Expr::Const(true) => Bdd::TRUE,
            Expr::Const(false) => Bdd::FALSE,
            Expr::Not(a) => {
                let a = a.build(m);
                m.not(a).unwrap()
            }
            Expr::And(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.and(a, b).unwrap()
            }
            Expr::Or(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.or(a, b).unwrap()
            }
            Expr::Xor(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.xor(a, b).unwrap()
            }
            Expr::Ite(c, t, e) => {
                let (c, t, e) = (c.build(m), t.build(m), e.build(m));
                m.ite(c, t, e).unwrap()
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0u32..1 << NVARS).map(|bits| (0..NVARS).map(|i| (bits >> (NVARS - 1 - i)) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_oracle(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), e.eval(&asg));
        }
    }

    #[test]
    fn semantically_equal_exprs_get_same_node(e in expr_strategy()) {
        // Canonicity: rebuilding ¬¬e and e ∨ e must give the identical node.
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        prop_assert_eq!(f, nnf);
        let ff = m.or(f, f).unwrap();
        prop_assert_eq!(f, ff);
    }

    #[test]
    fn sat_count_matches_all_sat(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let sats = m.all_sat(f, NVARS);
        prop_assert_eq!(m.sat_count(f, NVARS) as usize, sats.len());
        prop_assert_eq!(m.sat_count_exact(f, NVARS), Some(sats.len() as u128));
    }

    #[test]
    fn exists_matches_oracle(e in expr_strategy(), v in 0..NVARS) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let cube = m.cube_from_vars(&[Var(v)]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        let fa = m.forall(f, cube).unwrap();
        for asg in assignments() {
            let mut a0 = asg.clone();
            a0[v as usize] = false;
            let mut a1 = asg.clone();
            a1[v as usize] = true;
            let or = e.eval(&a0) || e.eval(&a1);
            let and = e.eval(&a0) && e.eval(&a1);
            prop_assert_eq!(m.eval(ex, &asg), or);
            prop_assert_eq!(m.eval(fa, &asg), and);
        }
    }

    #[test]
    fn and_exists_is_relational_product(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        v1 in 0..NVARS,
        v2 in 0..NVARS,
    ) {
        let mut m = BddManager::new(NVARS);
        let f = e1.build(&mut m);
        let g = e2.build(&mut m);
        let cube = m.cube_from_vars(&[Var(v1), Var(v2)]).unwrap();
        let direct = m.and_exists(f, g, cube).unwrap();
        let fg = m.and(f, g).unwrap();
        let two_step = m.exists(fg, cube).unwrap();
        prop_assert_eq!(direct, two_step);
    }

    #[test]
    fn constrain_and_restrict_agree_on_care_set(
        e in expr_strategy(),
        c in expr_strategy(),
    ) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let care = c.build(&mut m);
        prop_assume!(!care.is_false());
        let con = m.constrain(f, care).unwrap();
        let res = m.restrict(f, care).unwrap();
        for asg in assignments() {
            if m.eval(care, &asg) {
                prop_assert_eq!(m.eval(con, &asg), e.eval(&asg));
                prop_assert_eq!(m.eval(res, &asg), e.eval(&asg));
            }
        }
        // restrict never grows the support beyond f's.
        let sup_f = m.support(f);
        let sup_r = m.support(res);
        for v in sup_r.vars() {
            prop_assert!(sup_f.contains(v), "restrict introduced {v}");
        }
    }

    #[test]
    fn vector_compose_matches_semantic_substitution(
        e in expr_strategy(),
        g0 in expr_strategy(),
        g1 in expr_strategy(),
    ) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let s0 = g0.build(&mut m);
        let s1 = g1.build(&mut m);
        let mut map = vec![None; NVARS as usize];
        map[0] = Some(s0);
        map[1] = Some(s1);
        let composed = m.vector_compose(f, &map).unwrap();
        for asg in assignments() {
            let mut sub = asg.clone();
            sub[0] = g0.eval(&asg);
            sub[1] = g1.eval(&asg);
            prop_assert_eq!(m.eval(composed, &asg), e.eval(&sub));
        }
    }

    #[test]
    fn cofactor_matches_oracle(e in expr_strategy(), v in 0..NVARS, val: bool) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let cf = m.cofactor(f, Var(v), val).unwrap();
        for asg in assignments() {
            let mut a = asg.clone();
            a[v as usize] = val;
            prop_assert_eq!(m.eval(cf, &asg), e.eval(&a));
        }
        // The cofactor no longer depends on v.
        prop_assert!(!m.support(cf).contains(Var(v)));
    }

    #[test]
    fn gc_preserves_rooted_functions(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let truth: Vec<bool> = assignments().map(|a| e.eval(&a)).collect();
        m.collect_garbage(&[f]);
        for (asg, expect) in assignments().zip(truth) {
            prop_assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn permute_roundtrip(e in expr_strategy(), seed in any::<u64>()) {
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        // Build a random permutation from the seed.
        let mut perm: Vec<Var> = (0..NVARS).map(Var).collect();
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let g = m.permute(f, &perm).unwrap();
        // Inverse permutation restores f.
        let mut inv = vec![Var(0); NVARS as usize];
        for (old, &new) in perm.iter().enumerate() {
            inv[new.0 as usize] = Var(old as u32);
        }
        let back = m.permute(g, &inv).unwrap();
        prop_assert_eq!(back, f);
    }
}
