//! Property tests: random formulas checked against a truth-table oracle.
//!
//! Deterministic xorshift generation keeps the suite dependency-free (the
//! container builds offline), while covering the same ground a proptest
//! harness would: every case derives from a seeded PRNG, so failures are
//! reproducible from the printed case number.

use bfvr_bdd::{Bdd, BddManager, Var};

const NVARS: u32 = 5;
const CASES: u64 = 128;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A tiny formula AST used to generate random functions.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Random expression over `nvars` variables, depth-bounded.
    fn random(rng: &mut Rng, nvars: u32, depth: u32) -> Expr {
        if depth == 0 || rng.below(8) == 0 {
            return if rng.below(4) == 0 {
                Expr::Const(rng.flip())
            } else {
                Expr::Var(rng.below(nvars as u64) as u32)
            };
        }
        let sub = |rng: &mut Rng| Box::new(Expr::random(rng, nvars, depth - 1));
        match rng.below(5) {
            0 => Expr::Not(sub(rng)),
            1 => Expr::And(sub(rng), sub(rng)),
            2 => Expr::Or(sub(rng), sub(rng)),
            3 => Expr::Xor(sub(rng), sub(rng)),
            _ => Expr::Ite(sub(rng), sub(rng), sub(rng)),
        }
    }

    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Var(v) => asg[*v as usize],
            Expr::Const(b) => *b,
            Expr::Not(a) => !a.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
            Expr::Ite(c, t, e) => {
                if c.eval(asg) {
                    t.eval(asg)
                } else {
                    e.eval(asg)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(Var(*v)),
            Expr::Const(true) => Bdd::TRUE,
            Expr::Const(false) => Bdd::FALSE,
            Expr::Not(a) => {
                let a = a.build(m);
                m.not(a)
            }
            Expr::And(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.and(a, b).unwrap()
            }
            Expr::Or(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.or(a, b).unwrap()
            }
            Expr::Xor(a, b) => {
                let (a, b) = (a.build(m), b.build(m));
                m.xor(a, b).unwrap()
            }
            Expr::Ite(c, t, e) => {
                let (c, t, e) = (c.build(m), t.build(m), e.build(m));
                m.ite(c, t, e).unwrap()
            }
        }
    }
}

fn assignments_over(nvars: u32) -> impl Iterator<Item = Vec<bool>> {
    (0u32..1 << nvars).map(move |bits| {
        (0..nvars)
            .map(|i| (bits >> (nvars - 1 - i)) & 1 == 1)
            .collect()
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    assignments_over(NVARS)
}

/// Runs `CASES` random cases, each with its own manager and expression.
fn for_cases(seed: u64, mut check: impl FnMut(u64, &mut Rng)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

#[test]
fn bdd_matches_oracle() {
    for_cases(0xB001, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        for asg in assignments() {
            assert_eq!(m.eval(f, &asg), e.eval(&asg), "case {case}: {e:?}");
        }
    });
}

#[test]
fn semantically_equal_exprs_get_same_node() {
    // Canonicity: ¬¬e and e ∨ e must give the identical edge handle.
    for_cases(0xB002, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf, "case {case}: ¬¬f != f");
        let ff = m.or(f, f).unwrap();
        assert_eq!(f, ff, "case {case}: f ∨ f != f");
    });
}

#[test]
fn negation_is_involutive_and_free() {
    // The complement-edge acceptance property: ¬ is O(1), allocation-free
    // and involutive on arbitrary functions.
    for_cases(0xB003, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let allocated = m.allocated();
        let nf = m.not(f);
        assert_eq!(
            m.allocated(),
            allocated,
            "case {case}: not() allocated nodes"
        );
        assert_eq!(m.not(nf), f, "case {case}");
        for asg in assignments() {
            assert_eq!(m.eval(nf, &asg), !e.eval(&asg), "case {case}");
        }
    });
}

#[test]
fn ite_duality_laws() {
    // ite(f,g,h) == ite(¬f,h,g) and ite(f,g,h) == ¬ite(¬f,¬h,¬g):
    // the two complement-edge normalization identities the ITE core uses.
    for_cases(0xB004, |case, rng| {
        let ef = Expr::random(rng, NVARS, 3);
        let eg = Expr::random(rng, NVARS, 3);
        let eh = Expr::random(rng, NVARS, 3);
        let mut m = BddManager::new(NVARS);
        let f = ef.build(&mut m);
        let g = eg.build(&mut m);
        let h = eh.build(&mut m);
        let nf = m.not(f);
        let lhs = m.ite(f, g, h).unwrap();
        let swapped = m.ite(nf, h, g).unwrap();
        assert_eq!(lhs, swapped, "case {case}: ite(f,g,h) != ite(¬f,h,g)");
        let ng = m.not(g);
        let nh = m.not(h);
        let dual = m.ite(nf, nh, ng).unwrap();
        assert_eq!(
            lhs,
            m.not(dual),
            "case {case}: ite(f,g,h) != ¬ite(¬f,¬h,¬g)"
        );
    });
}

#[test]
fn sat_count_matches_all_sat() {
    for_cases(0xB005, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let sats = m.all_sat(f, NVARS);
        assert_eq!(m.sat_count(f, NVARS) as usize, sats.len(), "case {case}");
        assert_eq!(
            m.sat_count_exact(f, NVARS),
            Some(sats.len() as u128),
            "case {case}"
        );
    });
}

#[test]
fn exists_matches_oracle() {
    for_cases(0xB006, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let v = rng.below(NVARS as u64) as u32;
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let cube = m.cube_from_vars(&[Var(v)]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        let fa = m.forall(f, cube).unwrap();
        for asg in assignments() {
            let mut a0 = asg.clone();
            a0[v as usize] = false;
            let mut a1 = asg.clone();
            a1[v as usize] = true;
            let or = e.eval(&a0) || e.eval(&a1);
            let and = e.eval(&a0) && e.eval(&a1);
            assert_eq!(m.eval(ex, &asg), or, "case {case}: ∃v{v}");
            assert_eq!(m.eval(fa, &asg), and, "case {case}: ∀v{v}");
        }
    });
}

#[test]
fn and_exists_is_relational_product() {
    for_cases(0xB007, |case, rng| {
        let e1 = Expr::random(rng, NVARS, 3);
        let e2 = Expr::random(rng, NVARS, 3);
        let v1 = rng.below(NVARS as u64) as u32;
        let v2 = rng.below(NVARS as u64) as u32;
        let mut m = BddManager::new(NVARS);
        let f = e1.build(&mut m);
        let g = e2.build(&mut m);
        let vars = if v1 == v2 {
            vec![Var(v1)]
        } else {
            vec![Var(v1), Var(v2)]
        };
        let cube = m.cube_from_vars(&vars).unwrap();
        let direct = m.and_exists(f, g, cube).unwrap();
        let fg = m.and(f, g).unwrap();
        let two_step = m.exists(fg, cube).unwrap();
        assert_eq!(direct, two_step, "case {case}");
    });
}

#[test]
fn constrain_and_restrict_agree_on_care_set() {
    for_cases(0xB008, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let c = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let care = c.build(&mut m);
        if care.is_false() {
            return;
        }
        let con = m.constrain(f, care).unwrap();
        let res = m.restrict(f, care).unwrap();
        for asg in assignments() {
            if m.eval(care, &asg) {
                assert_eq!(m.eval(con, &asg), e.eval(&asg), "case {case}: constrain");
                assert_eq!(m.eval(res, &asg), e.eval(&asg), "case {case}: restrict");
            }
        }
        // restrict never grows the support beyond f's.
        let sup_f = m.support(f);
        let sup_r = m.support(res);
        for v in sup_r.vars() {
            assert!(sup_f.contains(v), "case {case}: restrict introduced {v}");
        }
    });
}

/// The ISSUE's equivalence check: `apply`/`exists`/`constrain` on random
/// 8-variable functions agree with the truth-table semantics on all 256
/// assignments — the new complement-edge core computes the same functions
/// the seed core did.
#[test]
fn eight_var_operations_match_semantics() {
    const N8: u32 = 8;
    for_cases(0xB009, |case, rng| {
        let ef = Expr::random(rng, N8, 4);
        let eg = Expr::random(rng, N8, 4);
        let v = rng.below(N8 as u64) as u32;
        let mut m = BddManager::new(N8);
        let f = ef.build(&mut m);
        let g = eg.build(&mut m);
        let conj = m.and(f, g).unwrap();
        let disj = m.or(f, g).unwrap();
        let xo = m.xor(f, g).unwrap();
        let cube = m.cube_from_vars(&[Var(v)]).unwrap();
        let ex = m.exists(conj, cube).unwrap();
        let con = if g.is_false() {
            None
        } else {
            Some(m.constrain(f, g).unwrap())
        };
        for asg in assignments_over(N8) {
            let (bf, bg) = (ef.eval(&asg), eg.eval(&asg));
            assert_eq!(m.eval(conj, &asg), bf && bg, "case {case}: and");
            assert_eq!(m.eval(disj, &asg), bf || bg, "case {case}: or");
            assert_eq!(m.eval(xo, &asg), bf ^ bg, "case {case}: xor");
            let mut a0 = asg.clone();
            a0[v as usize] = false;
            let mut a1 = asg.clone();
            a1[v as usize] = true;
            let sem = (ef.eval(&a0) && eg.eval(&a0)) || (ef.eval(&a1) && eg.eval(&a1));
            assert_eq!(m.eval(ex, &asg), sem, "case {case}: exists");
            if let Some(con) = con {
                if bg {
                    assert_eq!(m.eval(con, &asg), bf, "case {case}: constrain");
                }
            }
        }
    });
}

#[test]
fn vector_compose_matches_semantic_substitution() {
    for_cases(0xB00A, |case, rng| {
        let e = Expr::random(rng, NVARS, 3);
        let g0 = Expr::random(rng, NVARS, 3);
        let g1 = Expr::random(rng, NVARS, 3);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let s0 = g0.build(&mut m);
        let s1 = g1.build(&mut m);
        let mut map = vec![None; NVARS as usize];
        map[0] = Some(s0);
        map[1] = Some(s1);
        let composed = m.vector_compose(f, &map).unwrap();
        for asg in assignments() {
            let mut sub = asg.clone();
            sub[0] = g0.eval(&asg);
            sub[1] = g1.eval(&asg);
            assert_eq!(m.eval(composed, &asg), e.eval(&sub), "case {case}");
        }
    });
}

#[test]
fn cofactor_matches_oracle() {
    for_cases(0xB00B, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let v = rng.below(NVARS as u64) as u32;
        let val = rng.flip();
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let cf = m.cofactor(f, Var(v), val).unwrap();
        for asg in assignments() {
            let mut a = asg.clone();
            a[v as usize] = val;
            assert_eq!(m.eval(cf, &asg), e.eval(&a), "case {case}");
        }
        // The cofactor no longer depends on v.
        assert!(!m.support(cf).contains(Var(v)), "case {case}");
    });
}

#[test]
fn gc_preserves_rooted_functions() {
    for_cases(0xB00C, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        let truth: Vec<bool> = assignments().map(|a| e.eval(&a)).collect();
        // Root half the cases through the RAII handle, half via the
        // explicit root list — both must pin the function.
        let guard = if case % 2 == 0 { Some(m.func(f)) } else { None };
        let roots: &[Bdd] = if guard.is_some() {
            &[]
        } else {
            std::slice::from_ref(&f)
        };
        m.collect_garbage(roots);
        for (asg, expect) in assignments().zip(truth) {
            assert_eq!(m.eval(f, &asg), expect, "case {case}");
        }
        drop(guard);
    });
}

#[test]
fn permute_roundtrip() {
    for_cases(0xB00D, |case, rng| {
        let e = Expr::random(rng, NVARS, 4);
        let mut m = BddManager::new(NVARS);
        let f = e.build(&mut m);
        // Random permutation (Fisher–Yates).
        let mut perm: Vec<Var> = (0..NVARS).map(Var).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let g = m.permute(f, &perm).unwrap();
        // Inverse permutation restores f.
        let mut inv = vec![Var(0); NVARS as usize];
        for (old, &new) in perm.iter().enumerate() {
            inv[new.0 as usize] = Var(old as u32);
        }
        let back = m.permute(g, &inv).unwrap();
        assert_eq!(back, f, "case {case}");
    });
}
