//! Zero-suppressed decision diagrams (ZDDs) over the manager's arena and
//! unique-table machinery, plus the χ↔ZDD production converters.
//!
//! A reached-state set is a *set of states* — a sparse family of subsets
//! of the state variables — which is exactly the shape ZDDs represent
//! natively (Minato; see also Kojima, *BDDs Naturally Represent Boolean
//! Functions, and ZDDs Naturally Represent Sets of Sets*). The
//! [`ZddStore`] layers the zero-suppressed reduction rule on the same
//! arena/unique-table core the ROBDD manager uses:
//!
//! * a node whose **hi child is ∅ is eliminated** (variable absent means
//!   "0 only"), instead of the ROBDD rule eliminating `lo == hi`;
//! * there are **no complement edges** on the ZDD side: zero-suppression
//!   breaks the `f`/`¬f` subgraph-sharing symmetry (the complement of a
//!   sparse family is dense), so edges are plain node indexes with two
//!   distinct terminals [`Zdd::EMPTY`] (∅) and [`Zdd::BASE`] ({ε}).
//!
//! The converters bridge the two worlds over an explicit, ascending
//! variable list (the state variables of an encoded FSM):
//! [`zdd_from_bdd`] walks a χ — resolving the ROBDD's complement edges
//! and level skips, which mean "don't care" there but "0 only" here —
//! and [`bdd_from_zdd`] rebuilds the χ, reintroducing the `¬v`
//! constraints that zero-suppression elides. Round-tripping any χ whose
//! support lies in the variable list is exact.

use crate::arena::Arena;
use crate::error::BddError;
use crate::hash::{FxHashMap, FxHashSet};
use crate::node::{Node, TERMINAL_LEVEL};
use crate::unique::UniqueTable;
use crate::{Bdd, BddManager, Var};

/// A ZDD edge: a plain index into its [`ZddStore`]'s arena (no complement
/// bit — see the module docs for why zero-suppression forbids one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Zdd(u32);

impl Zdd {
    /// The empty family ∅ (no combination at all).
    pub const EMPTY: Zdd = Zdd(u32::MAX);
    /// The unit family {ε}: the single combination with every variable 0.
    pub const BASE: Zdd = Zdd(0);

    /// Whether this edge is one of the two terminals.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == Zdd::EMPTY || self == Zdd::BASE
    }

    /// Raw index (diagnostics only).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A hash-consed zero-suppressed DD store with mark-sweep collection.
///
/// Deliberately separate from [`BddManager`]: a ZDD lane owns its store
/// the way an engine owns its manager, and the two node spaces never
/// alias. Levels `0..num_levels` index into the caller's variable list
/// (component order), not the manager's global variable order.
pub struct ZddStore {
    arena: Arena,
    unique: UniqueTable,
    /// Computed cache for the binary set operations, keyed by
    /// `(op, lhs, rhs)` with commutative operands normalized.
    cache: FxHashMap<(u8, u32, u32), u32>,
    num_levels: u32,
}

const OP_UNION: u8 = 0;
const OP_INTERSECT: u8 = 1;

impl std::fmt::Debug for ZddStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZddStore")
            .field("levels", &self.num_levels)
            .field("allocated", &self.allocated())
            .finish()
    }
}

impl ZddStore {
    /// Creates a store for families over `num_levels` variables.
    #[must_use]
    pub fn new(num_levels: u32) -> Self {
        ZddStore {
            arena: Arena::new(64),
            unique: UniqueTable::new(num_levels),
            cache: FxHashMap::default(),
            num_levels,
        }
    }

    /// Number of variable levels the store was created with.
    #[must_use]
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Live (non-terminal) nodes currently allocated.
    #[must_use]
    pub fn allocated(&self) -> usize {
        // Slot 0 is the BASE terminal, not a decision node.
        self.arena.allocated().saturating_sub(1)
    }

    /// Level of a non-terminal edge.
    fn level(&self, z: Zdd) -> u32 {
        if z == Zdd::EMPTY {
            TERMINAL_LEVEL
        } else {
            self.arena.get(z.0).var
        }
    }

    /// Children of a non-terminal edge.
    fn children(&self, z: Zdd) -> (Zdd, Zdd) {
        let n = self.arena.get(z.0);
        (Zdd(n.lo), Zdd(n.hi))
    }

    /// The hash-consing constructor with the zero-suppressed reduction
    /// rule: a node whose hi child is ∅ *is* its lo child.
    ///
    /// # Errors
    ///
    /// [`BddError::Capacity`] when the index space is exhausted,
    /// [`BddError::VarOutOfRange`] for a level outside the store.
    pub fn mk(&mut self, level: u32, lo: Zdd, hi: Zdd) -> Result<Zdd, BddError> {
        if level >= self.num_levels {
            return Err(BddError::VarOutOfRange {
                var: level,
                num_vars: self.num_levels,
            });
        }
        if hi == Zdd::EMPTY {
            return Ok(lo);
        }
        debug_assert!(self.level(lo) > level && self.level(hi) > level);
        if let Some(idx) = self.unique.get(level, lo.0, hi.0) {
            return Ok(Zdd(idx));
        }
        let idx = self.arena.alloc(Node {
            var: level,
            lo: lo.0,
            hi: hi.0,
        })?;
        self.unique.insert(level, lo.0, hi.0, idx);
        Ok(Zdd(idx))
    }

    /// The family containing exactly one combination, described by one
    /// `true`/`false` per level (ascending).
    ///
    /// # Errors
    ///
    /// Propagates [`ZddStore::mk`] failures.
    pub fn singleton(&mut self, bits: &[bool]) -> Result<Zdd, BddError> {
        let mut z = Zdd::BASE;
        for (i, &b) in bits.iter().enumerate().rev() {
            if b {
                z = self.mk(i as u32, Zdd::EMPTY, z)?;
            }
            // A 0 bit is implicit: zero-suppression elides the level.
        }
        Ok(z)
    }

    /// Set union of two families.
    ///
    /// # Errors
    ///
    /// Propagates [`ZddStore::mk`] failures.
    pub fn union(&mut self, p: Zdd, q: Zdd) -> Result<Zdd, BddError> {
        if p == Zdd::EMPTY || p == q {
            return Ok(q);
        }
        if q == Zdd::EMPTY {
            return Ok(p);
        }
        let (a, b) = if p.0 <= q.0 { (p, q) } else { (q, p) };
        if let Some(&r) = self.cache.get(&(OP_UNION, a.0, b.0)) {
            return Ok(Zdd(r));
        }
        let (lp, lq) = (self.level(p), self.level(q));
        let r = if lp < lq {
            let (lo, hi) = self.children(p);
            let lo = self.union(lo, q)?;
            self.mk(lp, lo, hi)?
        } else if lq < lp {
            let (lo, hi) = self.children(q);
            let lo = self.union(p, lo)?;
            self.mk(lq, lo, hi)?
        } else {
            let (plo, phi) = self.children(p);
            let (qlo, qhi) = self.children(q);
            let lo = self.union(plo, qlo)?;
            let hi = self.union(phi, qhi)?;
            self.mk(lp, lo, hi)?
        };
        self.cache.insert((OP_UNION, a.0, b.0), r.0);
        Ok(r)
    }

    /// Set intersection of two families.
    ///
    /// # Errors
    ///
    /// Propagates [`ZddStore::mk`] failures.
    pub fn intersect(&mut self, p: Zdd, q: Zdd) -> Result<Zdd, BddError> {
        if p == Zdd::EMPTY || q == Zdd::EMPTY {
            return Ok(Zdd::EMPTY);
        }
        if p == q {
            return Ok(p);
        }
        let (a, b) = if p.0 <= q.0 { (p, q) } else { (q, p) };
        if let Some(&r) = self.cache.get(&(OP_INTERSECT, a.0, b.0)) {
            return Ok(Zdd(r));
        }
        let (lp, lq) = (self.level(p), self.level(q));
        let r = if lp < lq {
            // p branches on a level q skips; q admits only 0 there.
            let (lo, _) = self.children(p);
            self.intersect(lo, q)?
        } else if lq < lp {
            let (lo, _) = self.children(q);
            self.intersect(p, lo)?
        } else {
            let (plo, phi) = self.children(p);
            let (qlo, qhi) = self.children(q);
            let lo = self.intersect(plo, qlo)?;
            let hi = self.intersect(phi, qhi)?;
            self.mk(lp, lo, hi)?
        };
        self.cache.insert((OP_INTERSECT, a.0, b.0), r.0);
        Ok(r)
    }

    /// Number of combinations in the family. Exact for families that fit
    /// an `f64` mantissa (every state space in this project does).
    #[must_use]
    pub fn count(&self, z: Zdd) -> f64 {
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        self.count_rec(z, &mut memo)
    }

    fn count_rec(&self, z: Zdd, memo: &mut FxHashMap<u32, f64>) -> f64 {
        if z == Zdd::EMPTY {
            return 0.0;
        }
        if z == Zdd::BASE {
            return 1.0;
        }
        if let Some(&c) = memo.get(&z.0) {
            return c;
        }
        let (lo, hi) = self.children(z);
        let c = self.count_rec(lo, memo) + self.count_rec(hi, memo);
        memo.insert(z.0, c);
        c
    }

    /// Decision nodes reachable from `z` (the representation size).
    #[must_use]
    pub fn size(&self, z: Zdd) -> usize {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![z];
        let mut n = 0usize;
        while let Some(e) = stack.pop() {
            if e.is_terminal() || !seen.insert(e.0) {
                continue;
            }
            n += 1;
            let (lo, hi) = self.children(e);
            stack.push(lo);
            stack.push(hi);
        }
        n
    }

    /// Mark-sweep collection: frees every decision node not reachable
    /// from `roots` and drops the computed cache (its entries may
    /// reference freed slots). Returns the number of nodes reclaimed.
    pub fn collect(&mut self, roots: &[Zdd]) -> usize {
        let mut marked: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<Zdd> = roots.to_vec();
        while let Some(e) = stack.pop() {
            if e.is_terminal() || !marked.insert(e.0) {
                continue;
            }
            let (lo, hi) = self.children(e);
            stack.push(lo);
            stack.push(hi);
        }
        let mut reclaimed = 0usize;
        for idx in 1..self.arena.len() as u32 {
            if self.arena.is_live_slot(idx) && !marked.contains(&idx) {
                let n = self.arena.get(idx);
                self.unique.remove(n.var, n.lo, n.hi);
                self.arena.free(idx);
                reclaimed += 1;
            }
        }
        self.unique.compact();
        self.cache.clear();
        reclaimed
    }
}

/// Converts a χ over the ascending variable list `vars` into a ZDD
/// family in `store` (one level per list position).
///
/// Complement edges on the ROBDD side are resolved by walking the
/// *function* — [`BddManager::low`]/[`BddManager::high`] push the
/// parent's complement bit into the children, and the memo keys on the
/// polarity-carrying edge word — so `f` and `¬f` convert to different
/// (correct) families even though they share one subgraph. A skipped
/// level in the ROBDD (don't-care) expands to both branches here,
/// because the ZDD elides a level only when the variable is 0.
///
/// # Errors
///
/// [`BddError::VarOutOfRange`] if `f` depends on a variable outside
/// `vars`; propagates store capacity failures.
pub fn zdd_from_bdd(
    m: &BddManager,
    store: &mut ZddStore,
    f: Bdd,
    vars: &[Var],
) -> Result<Zdd, BddError> {
    // The recursion descends `vars` in list order while walking the BDD
    // top-down, so the list must ascend in the manager's *current* order
    // (identical to ascending-by-number until a dynamic reorder).
    debug_assert!(
        vars.windows(2)
            .all(|w| m.var_to_level(w[0]) < m.var_to_level(w[1])),
        "vars must ascend in the current variable order"
    );
    let mut memo: FxHashMap<(u32, u32), Zdd> = FxHashMap::default();
    from_bdd_rec(m, store, f, vars, 0, &mut memo)
}

fn from_bdd_rec(
    m: &BddManager,
    store: &mut ZddStore,
    f: Bdd,
    vars: &[Var],
    i: u32,
    memo: &mut FxHashMap<(u32, u32), Zdd>,
) -> Result<Zdd, BddError> {
    if i as usize == vars.len() {
        if f.is_true() {
            return Ok(Zdd::BASE);
        }
        if f.is_false() {
            return Ok(Zdd::EMPTY);
        }
        // Still non-constant past the last listed variable: the support
        // leaks outside the state space.
        return Err(BddError::VarOutOfRange {
            var: m.top_var(f).0,
            num_vars: vars.len() as u32,
        });
    }
    if let Some(&z) = memo.get(&(f.index(), i)) {
        return Ok(z);
    }
    let v = vars[i as usize];
    let (f0, f1) = if f.is_const() || m.top_var(f) != v {
        (f, f)
    } else {
        (m.low(f), m.high(f))
    };
    let lo = from_bdd_rec(m, store, f0, vars, i + 1, memo)?;
    let hi = from_bdd_rec(m, store, f1, vars, i + 1, memo)?;
    let z = store.mk(i, lo, hi)?;
    memo.insert((f.index(), i), z);
    Ok(z)
}

/// Converts a ZDD family back into a χ over `vars` — the inverse of
/// [`zdd_from_bdd`]. Levels the ZDD skips are reintroduced as `¬v`
/// constraints (zero-suppression means "absent variable is 0").
///
/// # Errors
///
/// Propagates manager allocation failures (node limit, deadline).
pub fn bdd_from_zdd(
    m: &mut BddManager,
    store: &ZddStore,
    z: Zdd,
    vars: &[Var],
) -> Result<Bdd, BddError> {
    let mut memo: FxHashMap<(u32, u32), Bdd> = FxHashMap::default();
    to_bdd_rec(m, store, z, vars, 0, &mut memo)
}

fn to_bdd_rec(
    m: &mut BddManager,
    store: &ZddStore,
    z: Zdd,
    vars: &[Var],
    i: u32,
    memo: &mut FxHashMap<(u32, u32), Bdd>,
) -> Result<Bdd, BddError> {
    if z == Zdd::EMPTY {
        return Ok(Bdd::FALSE);
    }
    if i as usize == vars.len() {
        debug_assert_eq!(z, Zdd::BASE, "levels exhausted before the family");
        return Ok(Bdd::TRUE);
    }
    if let Some(&b) = memo.get(&(z.0, i)) {
        return Ok(b);
    }
    let v = vars[i as usize];
    let b = if store.level(z) == i {
        let (lo, hi) = store.children(z);
        let blo = to_bdd_rec(m, store, lo, vars, i + 1, memo)?;
        let bhi = to_bdd_rec(m, store, hi, vars, i + 1, memo)?;
        let vv = m.var(v);
        m.ite(vv, bhi, blo)?
    } else {
        // Skipped level: the variable is 0 in every member.
        let inner = to_bdd_rec(m, store, z, vars, i + 1, memo)?;
        let nv = m.nvar(v);
        m.and(nv, inner)?
    };
    memo.insert((z.0, i), b);
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64*: the project-standard seeded generator for random
    /// test cases (no external dependencies).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Builds a random χ over `n` vars from `k` random minterms and
    /// returns it with the expected member set.
    fn random_chi(
        m: &mut BddManager,
        rng: &mut XorShift,
        n: usize,
        k: usize,
    ) -> (Bdd, std::collections::BTreeSet<Vec<bool>>) {
        let mut chi = Bdd::FALSE;
        let mut members = std::collections::BTreeSet::new();
        for _ in 0..k {
            let bits: Vec<bool> = (0..n).map(|_| rng.next() & 1 == 1).collect();
            let mut cube = Bdd::TRUE;
            for (i, &b) in bits.iter().enumerate() {
                let lit = if b {
                    m.var(Var(i as u32))
                } else {
                    m.nvar(Var(i as u32))
                };
                cube = m.and(cube, lit).unwrap();
            }
            chi = m.or(chi, cube).unwrap();
            members.insert(bits);
        }
        (chi, members)
    }

    fn all_vars(n: usize) -> Vec<Var> {
        (0..n).map(|i| Var(i as u32)).collect()
    }

    #[test]
    fn reduction_rule_eliminates_empty_hi() {
        let mut s = ZddStore::new(4);
        let inner = s.mk(2, Zdd::BASE, Zdd::BASE).unwrap();
        // hi = ∅ must collapse to the lo child, allocating nothing.
        let before = s.allocated();
        let z = s.mk(0, inner, Zdd::EMPTY).unwrap();
        assert_eq!(z, inner);
        assert_eq!(s.allocated(), before);
        // Unlike the ROBDD rule, lo == hi is a real node here.
        let dup = s.mk(1, inner, inner).unwrap();
        assert_ne!(dup, inner);
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut s = ZddStore::new(3);
        let a = s.mk(1, Zdd::BASE, Zdd::BASE).unwrap();
        let b = s.mk(1, Zdd::BASE, Zdd::BASE).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.allocated(), 1);
    }

    #[test]
    fn singleton_and_count() {
        let mut s = ZddStore::new(5);
        let z = s.singleton(&[true, false, true, false, false]).unwrap();
        assert_eq!(s.count(z), 1.0);
        // All-zero state is the BASE terminal itself.
        let zero = s.singleton(&[false; 5]).unwrap();
        assert_eq!(zero, Zdd::BASE);
        let u = s.union(z, zero).unwrap();
        assert_eq!(s.count(u), 2.0);
    }

    #[test]
    fn union_and_intersect_algebra() {
        let mut s = ZddStore::new(4);
        let a = s.singleton(&[true, false, false, true]).unwrap();
        let b = s.singleton(&[false, true, true, false]).unwrap();
        let ab = s.union(a, b).unwrap();
        assert_eq!(s.count(ab), 2.0);
        // Idempotent, commutative, absorbing.
        assert_eq!(s.union(ab, ab).unwrap(), ab);
        assert_eq!(s.union(b, a).unwrap(), ab);
        assert_eq!(s.union(ab, a).unwrap(), ab);
        assert_eq!(s.intersect(ab, a).unwrap(), a);
        assert_eq!(s.intersect(a, b).unwrap(), Zdd::EMPTY);
    }

    #[test]
    fn random_roundtrip_preserves_sets() {
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        for trial in 0..24 {
            let n = 3 + (trial % 5);
            let k = 1 + (rng.next() as usize) % 12;
            let mut m = BddManager::new(n as u32);
            let mut s = ZddStore::new(n as u32);
            let (chi, members) = random_chi(&mut m, &mut rng, n, k);
            let vars = all_vars(n);
            let z = zdd_from_bdd(&m, &mut s, chi, &vars).unwrap();
            assert_eq!(
                s.count(z),
                members.len() as f64,
                "trial {trial}: member count"
            );
            let back = bdd_from_zdd(&mut m, &s, z, &vars).unwrap();
            assert_eq!(back, chi, "trial {trial}: round trip not exact");
        }
    }

    #[test]
    fn complement_edges_convert_correctly() {
        // f and ¬f share one ROBDD subgraph through complement edges; the
        // converter must still produce the complementary families.
        let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
        for trial in 0..12 {
            let n = 4;
            let mut m = BddManager::new(n as u32);
            let mut s = ZddStore::new(n as u32);
            let (chi, members) = random_chi(&mut m, &mut rng, n, 5);
            let nchi = m.not(chi);
            let vars = all_vars(n);
            let z = zdd_from_bdd(&m, &mut s, chi, &vars).unwrap();
            let nz = zdd_from_bdd(&m, &mut s, nchi, &vars).unwrap();
            assert_eq!(s.count(z) + s.count(nz), 16.0, "trial {trial}");
            assert_eq!(s.intersect(z, nz).unwrap(), Zdd::EMPTY, "trial {trial}");
            let back = bdd_from_zdd(&mut m, &s, nz, &vars).unwrap();
            assert_eq!(back, nchi, "trial {trial}: ¬χ round trip");
            // The two families over-approximate nothing: χ ∨ ¬χ = ⊤.
            let uz = s.union(z, nz).unwrap();
            assert_eq!(s.count(uz), 16.0);
            let _ = members;
        }
    }

    #[test]
    fn random_unions_agree_with_bdd_or() {
        let mut rng = XorShift(42);
        for trial in 0..16 {
            let n = 5;
            let mut m = BddManager::new(n as u32);
            let mut s = ZddStore::new(n as u32);
            let (c1, _) = random_chi(&mut m, &mut rng, n, 6);
            let (c2, _) = random_chi(&mut m, &mut rng, n, 6);
            let vars = all_vars(n);
            let z1 = zdd_from_bdd(&m, &mut s, c1, &vars).unwrap();
            let z2 = zdd_from_bdd(&m, &mut s, c2, &vars).unwrap();
            let zu = s.union(z1, z2).unwrap();
            let or = m.or(c1, c2).unwrap();
            let via_bdd = zdd_from_bdd(&m, &mut s, or, &vars).unwrap();
            assert_eq!(zu, via_bdd, "trial {trial}: union diverges from ∨");
            assert_eq!(s.count(zu), m.sat_count(or, n as u32), "trial {trial}");
        }
    }

    #[test]
    fn true_and_false_convert_to_universe_and_empty() {
        let mut m = BddManager::new(3);
        let mut s = ZddStore::new(3);
        let vars = all_vars(3);
        let all = zdd_from_bdd(&m, &mut s, Bdd::TRUE, &vars).unwrap();
        assert_eq!(s.count(all), 8.0);
        let none = zdd_from_bdd(&m, &mut s, Bdd::FALSE, &vars).unwrap();
        assert_eq!(none, Zdd::EMPTY);
        let back = bdd_from_zdd(&mut m, &s, all, &vars).unwrap();
        assert!(back.is_true());
    }

    #[test]
    fn support_outside_vars_is_an_error() {
        let m = BddManager::new(4);
        let f = m.var(Var(3));
        let mut s = ZddStore::new(2);
        let err = zdd_from_bdd(&m, &mut s, f, &[Var(0), Var(1)]).unwrap_err();
        assert!(matches!(err, BddError::VarOutOfRange { .. }));
    }

    #[test]
    fn collect_reclaims_garbage_and_keeps_roots() {
        let mut s = ZddStore::new(6);
        let keep = s
            .singleton(&[true, true, false, true, false, true])
            .unwrap();
        let dead = s
            .singleton(&[false, true, true, false, true, true])
            .unwrap();
        let count_before = s.count(keep);
        let _ = dead;
        let reclaimed = s.collect(&[keep]);
        assert!(reclaimed > 0);
        assert_eq!(s.count(keep), count_before);
        // The reclaimed slots are reusable and canonicity survives.
        let again = s
            .singleton(&[true, true, false, true, false, true])
            .unwrap();
        assert_eq!(again, keep);
    }
}
