//! A small, fast, non-cryptographic hasher for interior hash tables.
//!
//! The unique table and the computed cache hash millions of small integer
//! keys; `std`'s SipHash is needlessly slow for that. This is the classic
//! Fx multiply-rotate mix (as used by rustc), implemented locally to keep
//! the crate dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash family (64-bit golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for small fixed-size keys (node triples, cache keys).
///
/// Not suitable for untrusted input (no DoS resistance), which is fine for
/// interior tables keyed on node indices.
#[derive(Default, Debug, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast interior hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast interior hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
    }

    #[test]
    fn distinguishes_small_keys() {
        let a = hash_of(&(1u32, 2u32, 3u32));
        let b = hash_of(&(1u32, 3u32, 2u32));
        let c = hash_of(&(2u32, 1u32, 3u32));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
    }

    #[test]
    fn spread_is_reasonable() {
        // Sequential keys should not collapse into a few buckets.
        let mut buckets = [0u32; 64];
        for i in 0..4096u32 {
            let h = hash_of(&(i, 0u32, 0u32));
            buckets[(h >> 58) as usize] += 1;
        }
        let max = buckets.iter().copied().max().unwrap();
        assert!(max < 4096 / 8, "pathological clustering: {max}");
    }
}
