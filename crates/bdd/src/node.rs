//! Edge handles, variable handles and the packed node representation.
//!
//! A [`Bdd`] is an *edge*: a node index plus a complement bit in the low
//! bit. The arena stores only one terminal node (the constant ⊤ at index
//! 0); the constant ⊥ is the complemented edge to it. Negation is
//! therefore a bit flip, and a function and its complement share one
//! subgraph.

use std::fmt;

/// A handle to a BDD edge owned by a [`crate::BddManager`].
///
/// Handles are complement-edge encoded: bit 0 carries the complement
/// flag, the remaining bits index the target node in the manager's arena.
/// They are `Copy`, 4 bytes, and remain valid across garbage collections
/// as long as the node is reachable from the roots supplied to
/// [`crate::BddManager::collect_garbage`] or pinned by a live
/// [`crate::Func`] handle. The two constant functions have dedicated
/// constants, [`Bdd::FALSE`] and [`Bdd::TRUE`], both referring to the
/// single terminal node.
///
/// A `Bdd` is only meaningful together with the manager that created it;
/// mixing handles from different managers is a logic error (caught only on
/// out-of-range indices).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant function `1` (the universe): the regular edge to the
    /// terminal node.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant function `0` (the empty set): the complemented edge to
    /// the terminal node.
    pub const FALSE: Bdd = Bdd(1);

    /// Returns `true` if this handle is one of the two constant functions.
    #[inline]
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the constant-false function.
    #[inline]
    #[must_use]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this is the constant-true function.
    #[inline]
    #[must_use]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Raw edge word (node index plus complement bit).
    ///
    /// Exposed for hashing/interning by higher layers (e.g. memo tables
    /// keyed on vectors of functions); distinct functions — including a
    /// function and its complement — have distinct values. Not useful for
    /// interpreting the node.
    #[inline]
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Arena index of the target node (complement bit stripped).
    #[inline]
    pub(crate) fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge carries the complement flag.
    #[inline]
    pub(crate) fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same edge with the complement flag flipped: `¬f`, for free.
    #[inline]
    pub(crate) fn complement(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// The regular (uncomplemented) version of this edge.
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "Bdd(⊥)"),
            Bdd::TRUE => write!(f, "Bdd(⊤)"),
            b if b.is_complemented() => write!(f, "Bdd(¬{})", b.node()),
            b => write!(f, "Bdd({})", b.node()),
        }
    }
}

/// A *semantic* BDD variable, numbered at manager construction.
///
/// The manager is created with a fixed number of variables; initially
/// `Var(0)` sits at the top of the order and `Var(n-1)` at the bottom.
/// Dynamic reordering ([`crate::BddManager::sift`]) may later move
/// variables to other *levels* — the variable's identity never changes,
/// and every `Var`-taking API resolves the current level through the
/// manager ([`crate::BddManager::var_to_level`]). Higher layers map
/// design signals (latches, inputs, choice variables) onto variables —
/// see the `bfvr-sim` crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The level this variable occupied at construction (0 = top).
    ///
    /// Once a dynamic reorder has run this is only the *initial* level;
    /// ask [`crate::BddManager::var_to_level`] for the current one.
    #[inline]
    #[must_use]
    pub fn level(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Level value used by the terminal node (and free slots): sorts after
/// every real variable, so `min(var(f), var(g))` naturally skips terminals.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Level value marking a recycled (dead) node slot on the free list.
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;

/// Packed in-arena node: decision variable level plus the two cofactor
/// *edges* (complement-encoded, like [`Bdd`]). The canonical form stores
/// no complemented `hi` edge; complement flags appear only on `lo`.
///
/// The terminal uses `var == TERMINAL_LEVEL`; free-list entries use
/// `var == FREE_LEVEL` and store the next free slot in `lo`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_const() {
        assert!(Bdd::FALSE.is_const());
        assert!(Bdd::TRUE.is_const());
        assert!(Bdd::FALSE.is_false());
        assert!(Bdd::TRUE.is_true());
        assert!(!Bdd(7).is_const());
    }

    #[test]
    fn complement_encoding() {
        assert_eq!(Bdd::TRUE.complement(), Bdd::FALSE);
        assert_eq!(Bdd::FALSE.complement(), Bdd::TRUE);
        let e = Bdd(6);
        assert!(!e.is_complemented());
        assert!(e.complement().is_complemented());
        assert_eq!(e.complement().complement(), e);
        assert_eq!(e.complement().node(), e.node());
        assert_eq!(e.complement().regular(), e);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Bdd::FALSE), "Bdd(⊥)");
        assert_eq!(format!("{:?}", Bdd::TRUE), "Bdd(⊤)");
        assert_eq!(format!("{:?}", Bdd(6)), "Bdd(3)");
        assert_eq!(format!("{:?}", Bdd(7)), "Bdd(¬3)");
        assert_eq!(format!("{:?}", Var(3)), "v3");
        assert_eq!(format!("{}", Var(3)), "v3");
    }

    #[test]
    fn ordering_of_handles_is_by_edge_word() {
        assert!(Bdd::TRUE < Bdd::FALSE); // ⊤ is the regular edge
        assert!(Bdd(2) < Bdd(3));
    }

    #[test]
    fn node_is_small() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
        assert_eq!(std::mem::size_of::<Bdd>(), 4);
    }
}
