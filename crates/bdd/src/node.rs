//! Node handles, variable handles and the packed node representation.

use std::fmt;

/// A handle to a BDD node owned by a [`crate::BddManager`].
///
/// Handles are plain indices; they are `Copy`, 4 bytes, and remain valid
/// across garbage collections as long as the node is reachable from the
/// roots supplied to [`crate::BddManager::collect_garbage`]. The two
/// terminal nodes have dedicated constants, [`Bdd::FALSE`] and
/// [`Bdd::TRUE`].
///
/// A `Bdd` is only meaningful together with the manager that created it;
/// mixing handles from different managers is a logic error (caught only on
/// out-of-range indices).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The terminal node for the constant function `0` (the empty set).
    pub const FALSE: Bdd = Bdd(0);
    /// The terminal node for the constant function `1` (the universe).
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is one of the two terminal nodes.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the constant-false terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this is the constant-true terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Raw index of the node in the manager arena.
    ///
    /// Exposed for hashing/interning by higher layers (e.g. memo tables
    /// keyed on vectors of nodes); not useful for interpreting the node.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "Bdd(⊥)"),
            Bdd::TRUE => write!(f, "Bdd(⊤)"),
            Bdd(i) => write!(f, "Bdd({i})"),
        }
    }
}

/// A BDD variable, identified by its *level* in the fixed variable order.
///
/// The manager is created with a fixed number of variables; `Var(0)` is the
/// topmost (highest-weight) variable, `Var(n-1)` the bottommost. Higher
/// layers map design signals (latches, inputs, choice variables) onto
/// levels — see the `bfvr-sim` crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The level of this variable (0 = top of the order).
    #[inline]
    pub fn level(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Level value used by terminal nodes (and free slots): sorts after every
/// real variable, so `min(var(f), var(g))` naturally skips terminals.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Level value marking a recycled (dead) node slot on the free list.
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;

/// Packed in-arena node: decision variable level plus the two cofactors.
///
/// Terminals use `var == TERMINAL_LEVEL`; free-list entries use
/// `var == FREE_LEVEL` and store the next free slot in `lo`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_const() {
        assert!(Bdd::FALSE.is_const());
        assert!(Bdd::TRUE.is_const());
        assert!(Bdd::FALSE.is_false());
        assert!(Bdd::TRUE.is_true());
        assert!(!Bdd(7).is_const());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Bdd::FALSE), "Bdd(⊥)");
        assert_eq!(format!("{:?}", Bdd::TRUE), "Bdd(⊤)");
        assert_eq!(format!("{:?}", Bdd(5)), "Bdd(5)");
        assert_eq!(format!("{:?}", Var(3)), "v3");
        assert_eq!(format!("{}", Var(3)), "v3");
    }

    #[test]
    fn ordering_of_handles_is_by_index() {
        assert!(Bdd::FALSE < Bdd::TRUE);
        assert!(Bdd(2) < Bdd(3));
    }

    #[test]
    fn node_is_small() {
        assert_eq!(std::mem::size_of::<Node>(), 12);
        assert_eq!(std::mem::size_of::<Bdd>(), 4);
    }
}
