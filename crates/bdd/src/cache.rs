//! Memoization layer: one computed cache per operation.
//!
//! The seed core funnelled every operation through a single
//! `FxHashMap<(op_tag, a, b, c), result>`; this layer gives each operation
//! its own table with its own hit/miss counters, so `exists`-heavy image
//! computations no longer evict `ite` results (and vice versa) and
//! [`crate::BddManager::cache_stats`] can report which operation a
//! workload actually exercises. Keys are raw edge words — a function and
//! its complement hash to different keys, which is exactly right because
//! their results differ.

use crate::hash::FxHashMap;
use crate::node::Bdd;

/// Per-operation cache counters, as reported by
/// [`crate::BddManager::cache_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Operation name (`"ite"`, `"exists"`, …).
    pub name: &'static str,
    /// Lookups since the manager was created (survives cache clears).
    pub lookups: u64,
    /// Hits since the manager was created.
    pub hits: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// One operation's memo table plus lifetime counters.
#[derive(Debug, Default)]
pub(crate) struct OpCache {
    map: FxHashMap<(u32, u32, u32), u32>,
    lookups: u64,
    hits: u64,
}

impl OpCache {
    #[inline]
    pub fn get(&mut self, key: (u32, u32, u32)) -> Option<Bdd> {
        self.lookups += 1;
        let hit = self.map.get(&key).copied().map(Bdd);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Inserts, wholesale-clearing the table first when it is at `limit`
    /// (the standard CUDD-style safety valve; counters are preserved).
    #[inline]
    pub fn put(&mut self, key: (u32, u32, u32), val: Bdd, limit: usize) {
        if self.map.len() >= limit {
            self.map.clear();
        }
        self.map.insert(key, val.0);
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Resident entries, for the cache-residue audit: `(key, result)`
    /// pairs where every component is a raw edge word (or a literal 0,
    /// which reads as the always-live terminal edge).
    pub fn entries(&self) -> impl Iterator<Item = ((u32, u32, u32), u32)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    fn stats(&self, name: &'static str) -> CacheStats {
        CacheStats {
            name,
            lookups: self.lookups,
            hits: self.hits,
            entries: self.map.len(),
        }
    }
}

/// Default maximum entries per operation cache before it is cleared.
const DEFAULT_CACHE_LIMIT: usize = 1 << 22;

/// The full set of per-operation caches owned by a manager.
#[derive(Debug)]
pub(crate) struct Caches {
    pub ite: OpCache,
    pub exists: OpCache,
    pub and_exists: OpCache,
    pub constrain: OpCache,
    pub restrict: OpCache,
    /// Per-cache entry cap; reaching it clears that cache.
    pub limit: usize,
}

impl Caches {
    pub fn new() -> Self {
        Caches {
            ite: OpCache::default(),
            exists: OpCache::default(),
            and_exists: OpCache::default(),
            constrain: OpCache::default(),
            restrict: OpCache::default(),
            limit: DEFAULT_CACHE_LIMIT,
        }
    }

    /// Drops all memoized results (counters survive).
    pub fn clear_all(&mut self) {
        self.ite.clear();
        self.exists.clear();
        self.and_exists.clear();
        self.constrain.clear();
        self.restrict.clear();
    }

    /// Lifetime totals across all operations: `(lookups, hits)`.
    pub fn totals(&self) -> (u64, u64) {
        let all = [
            &self.ite,
            &self.exists,
            &self.and_exists,
            &self.constrain,
            &self.restrict,
        ];
        let lookups = all.iter().map(|c| c.lookups).sum();
        let hits = all.iter().map(|c| c.hits).sum();
        (lookups, hits)
    }

    /// All caches with their operation names, for the cache-residue audit.
    pub fn named(&self) -> [(&'static str, &OpCache); 5] {
        [
            ("ite", &self.ite),
            ("exists", &self.exists),
            ("and_exists", &self.and_exists),
            ("constrain", &self.constrain),
            ("restrict", &self.restrict),
        ]
    }

    /// Per-operation counter snapshot.
    pub fn stats(&self) -> Vec<CacheStats> {
        vec![
            self.ite.stats("ite"),
            self.exists.stats("exists"),
            self.and_exists.stats("and_exists"),
            self.constrain.stats("constrain"),
            self.restrict.stats("restrict"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_counters() {
        let mut c = OpCache::default();
        assert_eq!(c.get((1, 2, 3)), None);
        c.put((1, 2, 3), Bdd(8), 16);
        assert_eq!(c.get((1, 2, 3)), Some(Bdd(8)));
        let s = c.stats("t");
        assert_eq!((s.lookups, s.hits, s.entries), (2, 1, 1));
    }

    #[test]
    fn limit_clears_but_keeps_counters() {
        let mut c = OpCache::default();
        c.put((1, 0, 0), Bdd(2), 2);
        c.put((2, 0, 0), Bdd(2), 2);
        // Table is at the limit of 2: the next put clears first.
        c.put((3, 0, 0), Bdd(2), 2);
        assert_eq!(c.get((1, 0, 0)), None);
        assert_eq!(c.get((3, 0, 0)), Some(Bdd(2)));
        assert_eq!(c.stats("t").entries, 1);
        assert_eq!(c.stats("t").lookups, 2);
    }

    #[test]
    fn caches_aggregate_totals() {
        let mut cs = Caches::new();
        cs.ite.put((0, 0, 0), Bdd(2), cs.limit);
        let _ = cs.ite.get((0, 0, 0));
        let _ = cs.exists.get((9, 9, 9));
        assert_eq!(cs.totals(), (2, 1));
        assert_eq!(cs.stats().len(), 5);
        cs.clear_all();
        assert_eq!(cs.stats()[0].entries, 0);
        assert_eq!(cs.totals(), (2, 1), "clearing keeps counters");
    }
}
