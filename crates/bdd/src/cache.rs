//! Memoization layer: one computed cache per operation.
//!
//! Each operation owns a CUDD-style *lossy direct-mapped* computed table:
//! a power-of-two array of `(key, result)` entries where a colliding
//! insert simply overwrites the previous occupant. Losing an entry only
//! costs a recomputation — never a wrong result, because lookups compare
//! the full key. This buys three things over the hash maps the previous
//! layer used:
//!
//! * a lookup is one hash, one slot load (a single cache line) and one
//!   compare — no bucket walk, no tombstones, no `Entry` machinery;
//! * residency is bounded by the slot count, so the cache can never pin
//!   unbounded memory behind the manager's back (and
//!   [`crate::BddManager::cache_stats`] reports the resident bytes);
//! * `clear` is an O(1) generation bump — every slot is stamped with the
//!   generation that wrote it, and a stale stamp reads as empty — so the
//!   garbage collector's cache flush costs nothing per entry.
//!
//! Tables start tiny and double as distinct entries accumulate, up to the
//! per-cache slot limit; growth rehashes the live entries so a hot cache
//! is not cold after a resize. Keys are raw edge words — a function and
//! its complement hash to different keys, which is exactly right because
//! their results differ.

use crate::node::Bdd;

/// Multiplicative mixing constant (64-bit golden ratio), shared with the
/// [`crate::hash`] module's Fx-style hasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Smallest slot allocation once a cache is first written.
const MIN_SLOTS: usize = 1 << 8;

/// Default maximum slots per operation cache (see
/// [`crate::BddManager::set_cache_limit`]).
pub(crate) const DEFAULT_CACHE_LIMIT: usize = 1 << 22;

/// One direct-mapped slot: the three key words, the memoized result and
/// the generation stamp that says which `clear` epoch wrote it.
#[derive(Clone, Copy, Debug)]
struct Slot {
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    stamp: u32,
}

const EMPTY_SLOT: Slot = Slot {
    a: 0,
    b: 0,
    c: 0,
    result: 0,
    stamp: 0,
};

/// Mixes a key triple into a slot hash (Fx multiply-rotate over the three
/// words; the *high* bits of the product are the well-mixed ones, so slot
/// selection shifts from the top).
#[inline]
fn mix(a: u32, b: u32, c: u32) -> u64 {
    let mut h = u64::from(a).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
    (h.rotate_left(5) ^ u64::from(c)).wrapping_mul(SEED)
}

/// Per-operation cache counters, as reported by
/// [`crate::BddManager::cache_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Operation name (`"ite"`, `"exists"`, …).
    pub name: &'static str,
    /// Lookups since the manager was created (survives cache clears).
    pub lookups: u64,
    /// Hits since the manager was created.
    pub hits: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Allocated slots (power of two; zero until the first insert).
    pub capacity: usize,
    /// Resident bytes behind this cache's slot array.
    pub bytes: usize,
}

/// One operation's lossy direct-mapped memo table plus lifetime counters.
#[derive(Debug, Default)]
pub(crate) struct OpCache {
    slots: Vec<Slot>,
    /// `log2(slots.len())`, cached for top-bit slot selection.
    shift: u32,
    /// The current generation; a slot is live iff `stamp == generation`.
    /// Starts at 1 so zeroed slots read as empty.
    generation: u32,
    /// Distinct entries written this generation (drives growth).
    live: usize,
    lookups: u64,
    hits: u64,
}

impl OpCache {
    #[inline]
    fn slot_of(&self, a: u32, b: u32, c: u32) -> usize {
        (mix(a, b, c) >> (64 - self.shift)) as usize
    }

    #[inline]
    pub fn get(&mut self, key: (u32, u32, u32)) -> Option<Bdd> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        let s = self.slots[self.slot_of(key.0, key.1, key.2)];
        if s.stamp == self.generation && (s.a, s.b, s.c) == key {
            self.hits += 1;
            Some(Bdd(s.result))
        } else {
            None
        }
    }

    /// Inserts, overwriting whatever occupied the slot (direct-mapped
    /// collision policy: the newest computation wins). The table doubles —
    /// rehashing its live entries — once resident entries pass 3/4 of the
    /// slots, until `limit` slots.
    #[inline]
    pub fn put(&mut self, key: (u32, u32, u32), val: Bdd, limit: usize) {
        if self.slots.is_empty() || (self.live * 4 >= self.slots.len() * 3 && !self.at_cap(limit)) {
            self.grow(limit);
        }
        let i = self.slot_of(key.0, key.1, key.2);
        let s = &mut self.slots[i];
        if s.stamp != self.generation {
            self.live += 1;
        }
        *s = Slot {
            a: key.0,
            b: key.1,
            c: key.2,
            result: val.0,
            stamp: self.generation,
        };
    }

    fn at_cap(&self, limit: usize) -> bool {
        self.slots.len() >= limit.next_power_of_two().max(MIN_SLOTS)
    }

    /// Doubles the slot array (or allocates the first one) and rehashes
    /// the current generation's entries into it.
    fn grow(&mut self, limit: usize) {
        let cap = limit.next_power_of_two().max(MIN_SLOTS);
        let new_len = if self.slots.is_empty() {
            MIN_SLOTS.min(cap)
        } else {
            (self.slots.len() * 2).min(cap)
        };
        if new_len <= self.slots.len() {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_len]);
        let generation = self.generation.max(1);
        self.generation = generation;
        self.shift = new_len.trailing_zeros();
        self.live = 0;
        for s in old {
            if s.stamp == generation {
                let i = self.slot_of(s.a, s.b, s.c);
                if self.slots[i].stamp != generation {
                    self.live += 1;
                }
                self.slots[i] = s;
            }
        }
    }

    /// Shrinks (or re-caps) the slot array when the limit drops below the
    /// current allocation; entries are discarded (it is a cache).
    pub fn apply_limit(&mut self, limit: usize) {
        let cap = limit.next_power_of_two().max(MIN_SLOTS);
        if self.slots.len() > cap {
            self.slots = vec![EMPTY_SLOT; cap];
            self.shift = cap.trailing_zeros();
            self.generation = 1;
            self.live = 0;
        }
    }

    /// Drops all memoized results: an O(1) generation bump (slot storage
    /// is retained; stale stamps read as empty).
    pub fn clear(&mut self) {
        if self.generation == u32::MAX {
            // Stamp wrap: do the one-in-4-billion full wipe.
            self.slots.fill(EMPTY_SLOT);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        self.live = 0;
    }

    /// Resident entries, for the cache-residue audit: `(key, result)`
    /// pairs where every component is a raw edge word (or a literal 0,
    /// which reads as the always-live terminal edge).
    pub fn entries(&self) -> impl Iterator<Item = ((u32, u32, u32), u32)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.stamp == self.generation && self.generation != 0)
            .map(|s| ((s.a, s.b, s.c), s.result))
    }

    /// Resident bytes behind the slot array.
    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }

    fn stats(&self, name: &'static str) -> CacheStats {
        CacheStats {
            name,
            lookups: self.lookups,
            hits: self.hits,
            entries: self.live,
            capacity: self.slots.len(),
            bytes: self.bytes(),
        }
    }
}

/// The full set of per-operation caches owned by a manager.
#[derive(Debug)]
pub(crate) struct Caches {
    pub ite: OpCache,
    pub exists: OpCache,
    pub and_exists: OpCache,
    pub constrain: OpCache,
    pub restrict: OpCache,
    /// Scoped substitution memo shared by `vector_compose` and
    /// `cofactor`: each call opens a fresh scope with an O(1) `clear`,
    /// because memoized results are valid only for that call's map.
    pub subst: OpCache,
    /// Per-cache slot cap (rounded up to a power of two on use).
    pub limit: usize,
}

impl Caches {
    pub fn new() -> Self {
        Caches {
            ite: OpCache::default(),
            exists: OpCache::default(),
            and_exists: OpCache::default(),
            constrain: OpCache::default(),
            restrict: OpCache::default(),
            subst: OpCache::default(),
            limit: DEFAULT_CACHE_LIMIT,
        }
    }

    fn all_mut(&mut self) -> [&mut OpCache; 6] {
        [
            &mut self.ite,
            &mut self.exists,
            &mut self.and_exists,
            &mut self.constrain,
            &mut self.restrict,
            &mut self.subst,
        ]
    }

    /// Drops all memoized results (counters survive; O(1) per cache).
    pub fn clear_all(&mut self) {
        for c in self.all_mut() {
            c.clear();
        }
    }

    /// Installs a new per-cache slot cap, shrinking any cache already
    /// over it.
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
        for c in self.all_mut() {
            c.apply_limit(limit);
        }
    }

    /// Lifetime totals across all operations: `(lookups, hits)`.
    pub fn totals(&self) -> (u64, u64) {
        let all = [
            &self.ite,
            &self.exists,
            &self.and_exists,
            &self.constrain,
            &self.restrict,
            &self.subst,
        ];
        let lookups = all.iter().map(|c| c.lookups).sum();
        let hits = all.iter().map(|c| c.hits).sum();
        (lookups, hits)
    }

    /// Resident bytes across all operation caches' slot arrays.
    pub fn bytes(&self) -> usize {
        self.named().iter().map(|(_, c)| c.bytes()).sum()
    }

    /// All caches with their operation names, for the cache-residue audit.
    pub fn named(&self) -> [(&'static str, &OpCache); 6] {
        [
            ("ite", &self.ite),
            ("exists", &self.exists),
            ("and_exists", &self.and_exists),
            ("constrain", &self.constrain),
            ("restrict", &self.restrict),
            ("subst", &self.subst),
        ]
    }

    /// Per-operation counter snapshot.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.named().iter().map(|(n, c)| c.stats(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_counters() {
        let mut c = OpCache::default();
        assert_eq!(c.get((1, 2, 3)), None);
        c.put((1, 2, 3), Bdd(8), 16);
        assert_eq!(c.get((1, 2, 3)), Some(Bdd(8)));
        let s = c.stats("t");
        assert_eq!((s.lookups, s.hits, s.entries), (2, 1, 1));
        assert!(s.capacity >= MIN_SLOTS);
        assert_eq!(s.bytes, s.capacity * std::mem::size_of::<Slot>());
    }

    #[test]
    fn clear_is_a_generation_bump_that_keeps_counters() {
        let mut c = OpCache::default();
        c.put((1, 0, 0), Bdd(2), 16);
        c.put((2, 0, 0), Bdd(4), 16);
        let cap = c.stats("t").capacity;
        c.clear();
        assert_eq!(c.get((1, 0, 0)), None);
        assert_eq!(c.get((2, 0, 0)), None);
        let s = c.stats("t");
        assert_eq!(s.entries, 0);
        assert_eq!(s.capacity, cap, "clear must not deallocate");
        assert_eq!(s.lookups, 2, "clearing keeps counters");
        assert_eq!(c.entries().count(), 0, "stale stamps are not resident");
        // The cleared table is immediately usable again.
        c.put((1, 0, 0), Bdd(6), 16);
        assert_eq!(c.get((1, 0, 0)), Some(Bdd(6)));
    }

    #[test]
    fn collision_overwrites_never_serve_a_wrong_result() {
        // Direct-mapped with a minimum-size table: by pigeonhole, some of
        // these keys collide. Whatever happens, a lookup must return
        // either the exact value stored for that key or a miss.
        let mut c = OpCache::default();
        let n = (MIN_SLOTS * 4) as u32;
        for k in 0..n {
            c.put((k, k ^ 7, 3), Bdd(k << 1), MIN_SLOTS);
        }
        let mut hits = 0;
        for k in 0..n {
            // A miss means the entry was evicted; the caller recomputes.
            if let Some(v) = c.get((k, k ^ 7, 3)) {
                assert_eq!(v, Bdd(k << 1), "evicted entry served a wrong result");
                hits += 1;
            }
        }
        assert!(hits > 0, "a bounded table still retains something");
        assert!(
            c.stats("t").capacity <= MIN_SLOTS,
            "limit caps the slot count"
        );
        assert!(c.stats("t").entries <= MIN_SLOTS);
    }

    #[test]
    fn growth_rehashes_live_entries() {
        let mut c = OpCache::default();
        let n = (MIN_SLOTS * 2) as u32;
        for k in 0..n {
            c.put((k, 1, 2), Bdd(k << 1), DEFAULT_CACHE_LIMIT);
        }
        // Well past MIN_SLOTS: the table must have grown…
        assert!(c.stats("t").capacity > MIN_SLOTS);
        // …and a freshly-inserted spread of keys survives mostly intact
        // (growth rehashes; only genuine collisions are lost).
        let retained = (0..n).filter(|&k| c.get((k, 1, 2)).is_some()).count();
        assert!(retained as u32 > n / 2, "retained only {retained}/{n}");
    }

    #[test]
    fn entries_enumerates_exactly_the_resident_generation() {
        let mut c = OpCache::default();
        c.put((1, 2, 3), Bdd(8), 64);
        c.put((4, 5, 6), Bdd(10), 64);
        let mut got: Vec<_> = c.entries().collect();
        got.sort_unstable();
        assert_eq!(got, vec![((1, 2, 3), 8), ((4, 5, 6), 10)]);
        c.clear();
        c.put((7, 8, 9), Bdd(12), 64);
        let got: Vec<_> = c.entries().collect();
        assert_eq!(got, vec![((7, 8, 9), 12)]);
    }

    #[test]
    fn fresh_cache_has_no_entries_and_no_bytes() {
        let c = OpCache::default();
        assert_eq!(c.entries().count(), 0);
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.stats("t").capacity, 0);
    }

    #[test]
    fn apply_limit_shrinks_an_oversized_table() {
        let mut c = OpCache::default();
        for k in 0..(MIN_SLOTS * 4) as u32 {
            c.put((k, 0, 0), Bdd(2), DEFAULT_CACHE_LIMIT);
        }
        assert!(c.stats("t").capacity > MIN_SLOTS);
        c.apply_limit(MIN_SLOTS);
        assert_eq!(c.stats("t").capacity, MIN_SLOTS);
        assert_eq!(c.stats("t").entries, 0, "shrinking drops entries");
        c.put((1, 0, 0), Bdd(2), MIN_SLOTS);
        assert_eq!(c.get((1, 0, 0)), Some(Bdd(2)));
    }

    #[test]
    fn caches_aggregate_totals() {
        let mut cs = Caches::new();
        cs.ite.put((0, 0, 0), Bdd(2), cs.limit);
        let _ = cs.ite.get((0, 0, 0));
        let _ = cs.exists.get((9, 9, 9));
        assert_eq!(cs.totals(), (2, 1));
        assert_eq!(cs.stats().len(), 6);
        assert!(cs.bytes() > 0);
        cs.clear_all();
        assert_eq!(cs.stats()[0].entries, 0);
        assert_eq!(cs.totals(), (2, 1), "clearing keeps counters");
    }

    #[test]
    fn set_limit_caps_every_cache() {
        let mut cs = Caches::new();
        for k in 0..(MIN_SLOTS * 4) as u32 {
            cs.ite.put((k, 0, 0), Bdd(2), cs.limit);
        }
        cs.set_limit(MIN_SLOTS);
        assert_eq!(cs.limit, MIN_SLOTS);
        assert!(cs.stats()[0].capacity <= MIN_SLOTS);
    }
}
