//! # bfvr-bdd — a reduced ordered binary decision diagram (ROBDD) package
//!
//! This crate is the Boolean-function substrate for the `bfvr` project, a
//! reproduction of *"Set Manipulation with Boolean Functional Vectors for
//! Symbolic Reachability Analysis"* (Goel & Bryant, DATE 2003). It provides
//! the machinery a 2003-era model checker obtained from CUDD/VIS:
//!
//! * hash-consed ROBDD nodes with a fixed variable order ([`BddManager`]),
//! * logical operations through an ITE core with a computed cache
//!   ([`BddManager::ite`], [`BddManager::and`], ...),
//! * existential/universal quantification and the relational product
//!   ([`BddManager::exists`], [`BddManager::and_exists`]),
//! * functional composition, simultaneous vector composition and variable
//!   permutation ([`BddManager::compose`], [`BddManager::vector_compose`]),
//! * the generalized cofactor (`constrain`) and `restrict` operators of
//!   Coudert/Berthet/Madre ([`BddManager::constrain`],
//!   [`BddManager::restrict`]),
//! * structural exploration: support, DAG sizes, satisfying-assignment
//!   counts, minterm extraction and DOT export,
//! * irredundant sum-of-products extraction (Minato–Morreale ISOP,
//!   [`BddManager::isop`]),
//! * cross-manager transfer under a variable mapping
//!   ([`BddManager::transfer_from`]) for variable-order studies,
//! * mark-sweep garbage collection with stable node ids and live/peak node
//!   accounting (the "Peak(K)" metric of the paper's Table 2), and
//! * optional node-count and deadline resource limits so long traversals
//!   can reproduce the paper's `T.O.`/`M.O.` outcomes gracefully.
//!
//! The package is deliberately single-threaded and uses plain `u32` node
//! handles ([`Bdd`]): exactly one manager owns all nodes, and all operations
//! take `&mut BddManager`. Handles stay valid across garbage collections as
//! long as they are reachable from the roots passed to
//! [`BddManager::collect_garbage`].
//!
//! ## Example
//!
//! ```
//! use bfvr_bdd::{BddManager, Var};
//!
//! # fn main() -> Result<(), bfvr_bdd::BddError> {
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(Var(0)), m.var(Var(1)), m.var(Var(2)));
//! // f = (a ∧ b) ∨ c
//! let ab = m.and(a, b)?;
//! let f = m.or(ab, c)?;
//! assert_eq!(m.sat_count(f, 3), 5.0);
//! // Quantify a out: ∃a. f = b ∨ c
//! let cube = m.cube_from_vars(&[Var(0)])?;
//! let g = m.exists(f, cube)?;
//! let bc = m.or(b, c)?;
//! assert_eq!(g, bc);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod compose;
mod constrain;
mod dot;
mod error;
mod explore;
pub mod hash;
mod isop;
mod manager;
mod node;
mod quant;
mod transfer;

pub use error::BddError;
pub use explore::{CubeIter, Support};
pub use isop::Cube;
pub use manager::{BddManager, GcStats, ManagerStats};
pub use node::{Bdd, Var};

/// Convenient result alias for fallible BDD operations.
///
/// All operations that may allocate nodes return `Result` because the
/// manager enforces optional node-count and deadline limits (used to
/// reproduce the `T.O.`/`M.O.` outcomes in the paper's Table 2).
pub type Result<T, E = BddError> = std::result::Result<T, E>;
