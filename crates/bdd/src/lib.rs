//! # bfvr-bdd — a reduced ordered binary decision diagram (ROBDD) package
//!
//! This crate is the Boolean-function substrate for the `bfvr` project, a
//! reproduction of *"Set Manipulation with Boolean Functional Vectors for
//! Symbolic Reachability Analysis"* (Goel & Bryant, DATE 2003). It provides
//! the machinery a 2003-era model checker obtained from CUDD/VIS:
//!
//! * hash-consed ROBDD nodes with a fixed variable order and **complement
//!   edges** ([`BddManager`]): `f` and `¬f` share one subgraph, and
//!   negation ([`BddManager::not`], [`BddManager::nvar`]) is a constant-time
//!   bit flip that can never fail or allocate,
//! * logical operations through an ITE core with per-operation computed
//!   caches ([`BddManager::ite`], [`BddManager::and`], ...; counters via
//!   [`BddManager::cache_stats`]),
//! * existential/universal quantification and the relational product
//!   ([`BddManager::exists`], [`BddManager::and_exists`]; `∀` is the free
//!   complement-edge dual of `∃`),
//! * functional composition, simultaneous vector composition and variable
//!   permutation ([`BddManager::compose`], [`BddManager::vector_compose`]),
//! * the generalized cofactor (`constrain`) and `restrict` operators of
//!   Coudert/Berthet/Madre ([`BddManager::constrain`],
//!   [`BddManager::restrict`]),
//! * structural exploration: support, DAG sizes, satisfying-assignment
//!   counts, minterm extraction and DOT export,
//! * irredundant sum-of-products extraction (Minato–Morreale ISOP,
//!   [`BddManager::isop`]),
//! * cross-manager transfer under a variable mapping
//!   ([`BddManager::transfer_from`]) for variable-order studies,
//! * manager-independent DAG export/import ([`BddManager::export_dag`],
//!   [`BddManager::import_dag`]) — the structural form behind durable
//!   on-disk checkpoints,
//! * mark-sweep garbage collection with stable node ids, RAII root
//!   handles ([`Func`], from [`BddManager::func`]) and live/peak node
//!   accounting (the "Peak(K)" metric of the paper's Table 2),
//! * **dynamic variable reordering**: an in-place adjacent-level swap
//!   kernel and a Rudell sifting pass ([`BddManager::sift`],
//!   [`BddManager::reorder_to`]) that shrink the live graph mid-run
//!   while every outstanding handle stays valid, and
//! * optional node-count and deadline resource limits so long traversals
//!   can reproduce the paper's `T.O.`/`M.O.` outcomes gracefully.
//!
//! Internally the manager is layered: arena node storage with a free
//! list, a per-level unique table for hash consing, and one computed
//! cache per operation. The package is deliberately
//! single-threaded and uses plain 4-byte edge handles ([`Bdd`]): exactly
//! one manager owns all nodes, and allocating operations take
//! `&mut BddManager`. Handles stay valid across garbage collections as
//! long as they are reachable from the roots passed to
//! [`BddManager::collect_garbage`] or pinned by a live [`Func`].
//!
//! ## Example
//!
//! ```
//! use bfvr_bdd::{BddManager, Var};
//!
//! # fn main() -> Result<(), bfvr_bdd::BddError> {
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(Var(0)), m.var(Var(1)), m.var(Var(2)));
//! // f = (a ∧ b) ∨ c
//! let ab = m.and(a, b)?;
//! let f = m.or(ab, c)?;
//! assert_eq!(m.sat_count(f, 3), 5.0);
//! // Negation is free and involutive (complement edges).
//! let nf = m.not(f);
//! assert_eq!(m.not(nf), f);
//! // Pin f across garbage collection with an RAII handle.
//! let root = m.func(f);
//! m.collect_garbage(&[]);
//! assert_eq!(m.sat_count(root.bdd(), 3), 5.0);
//! // Quantify a out: ∃a. f = b ∨ c
//! let cube = m.cube_from_vars(&[Var(0)])?;
//! let g = m.exists(f, cube)?;
//! let bc = m.or(b, c)?;
//! assert_eq!(g, bc);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod apply;
mod arena;
pub mod audit;
mod cache;
mod compose;
mod constrain;
mod dag;
mod dot;
mod error;
mod explore;
mod fault;
mod frozen;
mod func;
pub mod hash;
mod isop;
mod manager;
mod node;
mod quant;
mod sift;
mod transfer;
mod unique;
pub mod zdd;

pub use audit::{Corruption, GraphIssue, GraphIssueKind};
pub use cache::CacheStats;
pub use dag::{BddDag, DagError, DagNode, DagRef, DAG_FALSE, DAG_TRUE};
pub use error::BddError;
pub use explore::{CubeIter, Support};
pub use fault::{FaultKind, FaultPlan};
pub use frozen::{FrozenSet, FrozenTask, FrozenWorkspace, FROZEN_FALSE, FROZEN_TRUE};
pub use func::Func;
pub use isop::Cube;
pub use manager::{BddManager, GcStats, ManagerStats, UniqueTableStats};
pub use node::{Bdd, Var};
pub use sift::{SiftConfig, SiftStats, SIFT_SIZE_FLOOR};
pub use zdd::{bdd_from_zdd, zdd_from_bdd, Zdd, ZddStore};

/// Convenient result alias for fallible BDD operations.
///
/// All operations that may allocate nodes return `Result` because the
/// manager enforces optional node-count and deadline limits (used to
/// reproduce the `T.O.`/`M.O.` outcomes in the paper's Table 2).
pub type Result<T, E = BddError> = std::result::Result<T, E>;
