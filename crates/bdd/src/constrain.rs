//! The generalized cofactor (`constrain`) and `restrict` operators.
//!
//! `constrain` is the operator of Coudert, Berthet and Madre used both for
//! range computation in the paper's Figure 1 flow and for the set
//! operations on McMillan's conjunctive decomposition (paper §2.7).
//! `restrict` is the don't-care minimization variant: it never enlarges the
//! support of `f` and usually shrinks the BDD. Both commute with
//! complementation in their first argument (`op(¬f, c) = ¬op(f, c)`), so
//! the recursion normalizes `f` to its regular edge and the cache serves
//! `f` and `¬f` from one entry.

use crate::manager::BddManager;
use crate::node::Bdd;
use crate::Result;

impl BddManager {
    /// Generalized cofactor `f ↓ c` (the BDD `constrain` operator).
    ///
    /// For every assignment `x` with `c(x) = 1`, `(f ↓ c)(x) = f(x)`;
    /// assignments outside `c` are mapped to the nearest assignment inside
    /// `c` under the variable-order-weighted distance. Consequently
    /// `f ∧ c = (f ↓ c) ∧ c`, and the *range* of a vector of constrained
    /// functions equals the image of the care set — the property the
    /// Coudert–Madre range computation relies on.
    ///
    /// ```
    /// use bfvr_bdd::{BddManager, Var};
    /// # fn main() -> Result<(), bfvr_bdd::BddError> {
    /// let mut m = BddManager::new(2);
    /// let (a, b) = (m.var(Var(0)), m.var(Var(1)));
    /// // Inside the care set a=1, the function a∧b is just b.
    /// let f = m.and(a, b)?;
    /// assert_eq!(m.constrain(f, a)?, b);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant ⊥ (the generalized cofactor is
    /// undefined for an empty care set).
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        assert!(!c.is_false(), "constrain by empty care set");
        self.recover(&[f, c], |m| m.constrain_rec(f, c))
    }

    /// The memoized recursion behind [`BddManager::constrain`].
    fn constrain_rec(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        if c.is_true() || f.is_const() {
            return Ok(f);
        }
        if f == c {
            return Ok(Bdd::TRUE);
        }
        if f == c.complement() {
            return Ok(Bdd::FALSE);
        }
        // Normalize: constrain(¬f, c) = ¬constrain(f, c).
        if f.is_complemented() {
            let r = self.constrain_rec(f.complement(), c)?;
            return Ok(r.complement());
        }
        let key = (f.0, c.0, 0);
        if let Some(r) = self.caches.constrain.get(key) {
            return Ok(r);
        }
        let lvl = self.level(f).min(self.level(c));
        let (c0, c1) = self.cofactors_at(c, lvl);
        let (f0, f1) = self.cofactors_at(f, lvl);
        let r = if c1.is_false() {
            self.constrain_rec(f0, c0)?
        } else if c0.is_false() {
            self.constrain_rec(f1, c1)?
        } else {
            let r0 = self.constrain_rec(f0, c0)?;
            let r1 = self.constrain_rec(f1, c1)?;
            self.mk(lvl, r0, r1)?
        };
        let limit = self.caches.limit;
        self.caches.constrain.put(key, r, limit);
        Ok(r)
    }

    /// Don't-care minimization `restrict(f, c)`.
    ///
    /// Like [`BddManager::constrain`], satisfies `f ∧ c = restrict(f,c) ∧ c`,
    /// but additionally never introduces variables outside the support of
    /// `f`: when `f` does not depend on the top variable of `c`, that
    /// variable is smoothed out of `c` instead of being copied into the
    /// result.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant ⊥.
    pub fn restrict(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        assert!(!c.is_false(), "restrict by empty care set");
        self.recover(&[f, c], |m| m.restrict_rec(f, c))
    }

    /// The memoized recursion behind [`BddManager::restrict`].
    fn restrict_rec(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        if c.is_true() || f.is_const() {
            return Ok(f);
        }
        if f == c {
            return Ok(Bdd::TRUE);
        }
        if f == c.complement() {
            return Ok(Bdd::FALSE);
        }
        // Normalize: restrict(¬f, c) = ¬restrict(f, c).
        if f.is_complemented() {
            let r = self.restrict_rec(f.complement(), c)?;
            return Ok(r.complement());
        }
        let key = (f.0, c.0, 0);
        if let Some(r) = self.caches.restrict.get(key) {
            return Ok(r);
        }
        let lvl_f = self.level(f);
        let lvl_c = self.level(c);
        let r = if lvl_c < lvl_f {
            // f does not depend on c's top variable: smooth it away.
            let c0 = self.low(c);
            let c1 = self.high(c);
            let smoothed = self.or(c0, c1)?;
            self.restrict_rec(f, smoothed)?
        } else {
            let lvl = lvl_f;
            let (c0, c1) = self.cofactors_at(c, lvl);
            let f0 = self.low(f);
            let f1 = self.high(f);
            if c1.is_false() {
                self.restrict_rec(f0, c0)?
            } else if c0.is_false() {
                self.restrict_rec(f1, c1)?
            } else {
                let r0 = self.restrict_rec(f0, c0)?;
                let r1 = self.restrict_rec(f1, c1)?;
                self.mk(lvl, r0, r1)?
            }
        };
        let limit = self.caches.limit;
        self.caches.restrict.put(key, r, limit);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    fn setup() -> (BddManager, Bdd, Bdd, Bdd, Bdd) {
        let m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let d = m.var(Var(3));
        (m, a, b, c, d)
    }

    /// The defining property: f ∧ c == op(f, c) ∧ c.
    fn check_care_agreement(m: &mut BddManager, f: Bdd, c: Bdd) {
        let g = m.constrain(f, c).unwrap();
        let lhs = m.and(f, c).unwrap();
        let rhs = m.and(g, c).unwrap();
        assert_eq!(lhs, rhs, "constrain violates care-set agreement");
        let g = m.restrict(f, c).unwrap();
        let rhs = m.and(g, c).unwrap();
        assert_eq!(lhs, rhs, "restrict violates care-set agreement");
    }

    #[test]
    fn identity_cases() {
        let (mut m, a, ..) = setup();
        assert_eq!(m.constrain(a, Bdd::TRUE).unwrap(), a);
        assert_eq!(m.restrict(a, Bdd::TRUE).unwrap(), a);
        assert_eq!(m.constrain(a, a).unwrap(), Bdd::TRUE);
        assert!(m.constrain(Bdd::FALSE, a).unwrap().is_false());
        let na = m.not(a);
        assert!(
            m.constrain(na, a).unwrap().is_false(),
            "f == ¬c is empty in the care set"
        );
        assert!(m.restrict(na, a).unwrap().is_false());
    }

    #[test]
    fn complement_commutes_with_constrain() {
        let (mut m, a, b, c, d) = setup();
        let ab = m.xor(a, b).unwrap();
        let f = m.or(ab, d).unwrap();
        let care = m.or(b, c).unwrap();
        let nf = m.not(f);
        let lhs = m.constrain(nf, care).unwrap();
        let pos = m.constrain(f, care).unwrap();
        assert_eq!(lhs, m.not(pos));
        let lhs = m.restrict(nf, care).unwrap();
        let pos = m.restrict(f, care).unwrap();
        assert_eq!(lhs, m.not(pos));
    }

    #[test]
    #[should_panic(expected = "empty care set")]
    fn constrain_by_false_panics() {
        let (mut m, a, ..) = setup();
        let _ = m.constrain(a, Bdd::FALSE);
    }

    #[test]
    fn care_agreement_on_assorted_functions() {
        let (mut m, a, b, c, d) = setup();
        let ab = m.xor(a, b).unwrap();
        let cd = m.and(c, d).unwrap();
        let f = m.or(ab, cd).unwrap();
        let bc = m.or(b, c).unwrap();
        let cares = [a, bc, cd, ab];
        for care in cares {
            check_care_agreement(&mut m, f, care);
        }
    }

    #[test]
    fn constrain_known_example() {
        // constrain(b, a) where order is a < b: outside a, the nearest
        // point with a=1 keeps b, so constrain(b, a) = b.
        let (mut m, a, b, ..) = setup();
        assert_eq!(m.constrain(b, a).unwrap(), b);
        // constrain(a∧b, a) = b: within a=1, f is b; mapping is var-wise.
        let ab = m.and(a, b).unwrap();
        assert_eq!(m.constrain(ab, a).unwrap(), b);
    }

    #[test]
    fn restrict_does_not_grow_support() {
        let (mut m, a, b, c, _) = setup();
        // f depends only on b; care set depends on a and c.
        let f = b;
        let ac = m.and(a, c).unwrap();
        let nb = m.not(b);
        let care = m.or(ac, nb).unwrap();
        let r = m.restrict(f, care).unwrap();
        let sup = m.support(r);
        assert!(!sup.contains(Var(0)), "restrict introduced a");
        assert!(!sup.contains(Var(2)), "restrict introduced c");
        // Whereas constrain may introduce them.
        check_care_agreement(&mut m, f, care);
    }

    #[test]
    fn restrict_simplifies_under_dont_cares() {
        let (mut m, a, b, ..) = setup();
        // f = a ∧ b; care set says a is always true: f simplifies to b.
        let f = m.and(a, b).unwrap();
        assert_eq!(m.restrict(f, a).unwrap(), b);
        assert_eq!(m.constrain(f, a).unwrap(), b);
    }

    #[test]
    fn constrain_is_identity_inside_care_set() {
        let (mut m, a, b, c, d) = setup();
        let xab = m.xor(a, b).unwrap();
        let f = m.or(xab, d).unwrap();
        let care = m.xnor(b, c).unwrap();
        let g = m.constrain(f, care).unwrap();
        // Check pointwise agreement on all assignments satisfying care.
        for x in 0u32..16 {
            let asg: Vec<bool> = (0..4).map(|i| (x >> (3 - i)) & 1 == 1).collect();
            if m.eval(care, &asg) {
                assert_eq!(m.eval(g, &asg), m.eval(f, &asg));
            }
        }
    }
}
