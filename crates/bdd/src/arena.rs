//! Node storage layer: a flat arena with an intrusive free list.
//!
//! The arena owns every node slot and nothing else — hash consing lives in
//! [`crate::unique`], memoization in [`crate::cache`], and reachability
//! marking in the manager (which coordinates all three during garbage
//! collection). Slot indices are stable for the lifetime of the manager:
//! freeing a slot threads it onto the free list in place, and a later
//! allocation reuses it without moving any other node.

use crate::error::BddError;
use crate::node::{Node, FREE_LEVEL, TERMINAL_LEVEL};

/// Sentinel for "no next entry" in the free list.
const FREE_END: u32 = u32::MAX;

/// Highest usable slot count: node indices must fit in 31 bits because an
/// edge word packs `index << 1 | complement`.
const MAX_NODES: usize = (u32::MAX >> 1) as usize - 1;

/// Flat node store with in-place slot recycling.
///
/// Slot 0 always holds the single terminal node (the constant ⊤); the
/// constant ⊥ is the complemented edge to it, so no second terminal slot
/// exists.
#[derive(Debug)]
pub(crate) struct Arena {
    nodes: Vec<Node>,
    free_head: u32,
    free_count: usize,
    peak: usize,
}

impl Arena {
    /// Creates an arena holding only the terminal node.
    pub fn new(capacity_hint: usize) -> Self {
        let mut nodes = Vec::with_capacity(capacity_hint.max(1));
        nodes.push(Node {
            var: TERMINAL_LEVEL,
            lo: 0,
            hi: 0,
        });
        Arena {
            nodes,
            free_head: FREE_END,
            free_count: 0,
            peak: 1,
        }
    }

    /// The node stored at `idx`.
    #[inline]
    pub fn get(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// Total slots (live + free), i.e. one past the largest index ever used.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Live (non-free) slots.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.nodes.len() - self.free_count
    }

    /// High-water mark of [`Arena::allocated`] over the arena's lifetime.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Resets the high-water mark to the current allocation.
    pub fn reset_peak(&mut self) {
        self.peak = self.allocated();
    }

    /// Stores `node` in a recycled or fresh slot and returns its index.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::Capacity`] when the 31-bit index space is
    /// exhausted.
    pub fn alloc(&mut self, node: Node) -> Result<u32, BddError> {
        debug_assert!(node.var != FREE_LEVEL);
        let idx = if self.free_head != FREE_END {
            let slot = self.free_head;
            self.free_head = self.nodes[slot as usize].lo;
            self.free_count -= 1;
            self.nodes[slot as usize] = node;
            slot
        } else {
            if self.nodes.len() >= MAX_NODES {
                return Err(BddError::Capacity);
            }
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        };
        if self.allocated() > self.peak {
            self.peak = self.allocated();
        }
        Ok(idx)
    }

    /// Overwrites the node stored at `idx` in place, bypassing hash
    /// consing. Two callers are allowed to do this: the audit corruption
    /// hooks ([`crate::audit::Corruption`]), and the dynamic-reordering
    /// swap kernel (`crate::sift`), which relabels/rewrites nodes while
    /// keeping their unique-table entries consistent itself. All other
    /// code must never mutate a stored node, since the unique table keys
    /// on its contents.
    pub fn set(&mut self, idx: u32, node: Node) {
        self.nodes[idx as usize] = node;
    }

    /// Slots still allocatable before the 31-bit index space is
    /// exhausted (free-list slots included). The swap kernel pre-checks
    /// this before each adjacent swap so an in-place rewrite can never
    /// fail halfway through.
    #[inline]
    pub fn headroom(&self) -> usize {
        MAX_NODES.saturating_sub(self.nodes.len()) + self.free_count
    }

    /// Returns slot `idx` to the free list. The caller is responsible for
    /// removing the node from the unique table first.
    pub fn free(&mut self, idx: u32) {
        debug_assert!(idx != 0, "cannot free the terminal");
        debug_assert!(self.nodes[idx as usize].var != FREE_LEVEL, "double free");
        self.nodes[idx as usize] = Node {
            var: FREE_LEVEL,
            lo: self.free_head,
            hi: 0,
        };
        self.free_head = idx;
        self.free_count += 1;
    }

    /// Whether slot `idx` currently holds a live node.
    #[inline]
    pub fn is_live_slot(&self, idx: u32) -> bool {
        (idx as usize) < self.nodes.len() && self.nodes[idx as usize].var != FREE_LEVEL
    }

    /// Head of the intrusive free list (`u32::MAX` when empty); the chain
    /// continues through each free slot's `lo` field. For the invariant
    /// validator.
    #[inline]
    pub fn free_head(&self) -> u32 {
        self.free_head
    }

    /// Number of slots on the free list. For the invariant validator.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.free_count
    }
}

/// Sentinel for "no next entry" in the free list, exposed to the
/// manager's invariant validator.
pub(crate) const FREE_LIST_END: u32 = FREE_END;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_only_the_terminal() {
        let a = Arena::new(0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.allocated(), 1);
        assert_eq!(a.get(0).var, TERMINAL_LEVEL);
    }

    #[test]
    fn alloc_free_recycles_slots() {
        let mut a = Arena::new(4);
        let i = a
            .alloc(Node {
                var: 0,
                lo: 1,
                hi: 0,
            })
            .unwrap();
        let j = a
            .alloc(Node {
                var: 1,
                lo: 1,
                hi: 0,
            })
            .unwrap();
        assert_ne!(i, j);
        assert_eq!(a.allocated(), 3);
        a.free(i);
        assert_eq!(a.allocated(), 2);
        assert!(!a.is_live_slot(i));
        let k = a
            .alloc(Node {
                var: 2,
                lo: 1,
                hi: 0,
            })
            .unwrap();
        assert_eq!(k, i, "freed slot should be recycled");
        assert_eq!(a.len(), 3, "no growth while the free list is non-empty");
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = Arena::new(0);
        let i = a
            .alloc(Node {
                var: 0,
                lo: 1,
                hi: 0,
            })
            .unwrap();
        let _ = a
            .alloc(Node {
                var: 1,
                lo: 1,
                hi: 0,
            })
            .unwrap();
        assert_eq!(a.peak(), 3);
        a.free(i);
        assert_eq!(a.peak(), 3);
        a.reset_peak();
        assert_eq!(a.peak(), 2);
    }
}
