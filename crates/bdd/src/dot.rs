//! Graphviz (DOT) export for debugging and documentation.

use crate::hash::FxHashSet;
use crate::manager::BddManager;
use crate::node::Bdd;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the DAG reachable from `roots` in Graphviz DOT syntax.
    ///
    /// `var_name` maps a level to a label; pass `|v| format!("v{v}")` for
    /// generic names. Dashed edges are low (else) branches, solid edges
    /// high (then) branches — the conventional BDD drawing style. There is
    /// a single terminal box `1`; complemented edges carry an `odot`
    /// arrowhead (the standard complement-edge marker), so the constant 0
    /// appears as a dotted-into-`1` edge and `¬f` shares `f`'s subgraph.
    pub fn to_dot(&self, roots: &[(&str, Bdd)], var_name: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node [shape=circle];\n");
        out.push_str("  t1 [label=\"1\", shape=box];\n");
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = Vec::new();
        for (name, root) in roots {
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(
                out,
                "  \"{name}\" -> {}{};",
                node_name(*root),
                edge_attrs(*root, false)
            );
            stack.push(root.regular());
        }
        // Traverse regular edges only: a node is drawn once, shared by f/¬f.
        while let Some(f) = stack.pop() {
            if f.is_const() || !seen.insert(f.node()) {
                continue;
            }
            let lvl = self.level(f);
            let _ = writeln!(out, "  n{} [label=\"{}\"];", f.node(), var_name(lvl));
            let lo = self.low(f);
            let hi = self.high(f);
            let _ = writeln!(
                out,
                "  n{} -> {}{};",
                f.node(),
                node_name(lo),
                edge_attrs(lo, true)
            );
            let _ = writeln!(
                out,
                "  n{} -> {}{};",
                f.node(),
                node_name(hi),
                edge_attrs(hi, false)
            );
            stack.push(lo.regular());
            stack.push(hi.regular());
        }
        out.push_str("}\n");
        out
    }
}

fn node_name(f: Bdd) -> String {
    if f.is_const() {
        "t1".to_string()
    } else {
        format!("n{}", f.node())
    }
}

fn edge_attrs(f: Bdd, low: bool) -> String {
    let mut attrs: Vec<&str> = Vec::new();
    if low {
        attrs.push("style=dashed");
    }
    if f.is_complemented() {
        attrs.push("arrowhead=odot");
    }
    if attrs.is_empty() {
        String::new()
    } else {
        format!(" [{}]", attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    #[test]
    fn dot_contains_structure() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.and(a, b).unwrap();
        let dot = m.to_dot(&[("f", f)], |v| format!("x{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        // a∧b reaches the constant 0: drawn as a complemented arc into t1.
        assert!(dot.contains("arrowhead=odot"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_constants() {
        let m = BddManager::new(1);
        let dot = m.to_dot(&[("t", Bdd::TRUE)], |v| format!("v{v}"));
        assert!(dot.contains("\"t\" -> t1;"));
        let dot = m.to_dot(&[("z", Bdd::FALSE)], |v| format!("v{v}"));
        assert!(dot.contains("\"z\" -> t1 [arrowhead=odot];"));
    }

    #[test]
    fn complement_roots_share_one_drawing() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.and(a, b).unwrap();
        let nf = m.not(f);
        let dot = m.to_dot(&[("f", f), ("nf", nf)], |v| format!("x{v}"));
        // Each interior node is declared exactly once even with both
        // polarities rooted.
        let decls = dot.matches("[label=\"x0\"]").count();
        assert_eq!(decls, 1, "f and ¬f must share the drawn subgraph");
    }
}
