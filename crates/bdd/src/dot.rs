//! Graphviz (DOT) export for debugging and documentation.

use crate::hash::FxHashSet;
use crate::manager::BddManager;
use crate::node::Bdd;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the DAG reachable from `roots` in Graphviz DOT syntax.
    ///
    /// `var_name` maps a level to a label; pass `|v| format!("v{v}")` for
    /// generic names. Dashed edges are low (else) branches, solid edges
    /// high (then) branches — the conventional BDD drawing style.
    pub fn to_dot(&self, roots: &[(&str, Bdd)], var_name: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node [shape=circle];\n");
        out.push_str("  f0 [label=\"0\", shape=box];\n  f1 [label=\"1\", shape=box];\n");
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = Vec::new();
        for (name, root) in roots {
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(out, "  \"{name}\" -> {};", node_name(*root));
            stack.push(*root);
        }
        while let Some(f) = stack.pop() {
            if f.is_const() || !seen.insert(f.index()) {
                continue;
            }
            let lvl = self.level(f);
            let _ = writeln!(out, "  n{} [label=\"{}\"];", f.index(), var_name(lvl));
            let lo = self.low(f);
            let hi = self.high(f);
            let _ = writeln!(out, "  n{} -> {} [style=dashed];", f.index(), node_name(lo));
            let _ = writeln!(out, "  n{} -> {};", f.index(), node_name(hi));
            stack.push(lo);
            stack.push(hi);
        }
        out.push_str("}\n");
        out
    }
}

fn node_name(f: Bdd) -> String {
    match f {
        Bdd::FALSE => "f0".to_string(),
        Bdd::TRUE => "f1".to_string(),
        other => format!("n{}", other.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    #[test]
    fn dot_contains_structure() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.and(a, b).unwrap();
        let dot = m.to_dot(&[("f", f)], |v| format!("x{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_constant() {
        let m = BddManager::new(1);
        let dot = m.to_dot(&[("t", Bdd::TRUE)], |v| format!("v{v}"));
        assert!(dot.contains("\"t\" -> f1"));
    }
}
