//! Cofactoring, functional composition and variable renaming.
//!
//! Simultaneous (vector) composition is the engine behind the paper's
//! symbolic simulation step: next-state functions over state variables are
//! composed with the Boolean functional vector of the current reached set
//! in one pass (`bfvr-sim`). Memoized results are valid only for one
//! call's substitution map, so each call opens a fresh *scope* in the
//! shared lossy [`crate::cache`] table — an O(1) generation bump — instead
//! of allocating a hash map per call. Both polarities of an operand fold
//! onto one entry, because substitution commutes with complement:
//! `(¬f)[v ← g] = ¬(f[v ← g])`.

use crate::manager::BddManager;
use crate::node::{Bdd, Var};
use crate::Result;

impl BddManager {
    /// Shannon cofactor `f|v=val`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    pub fn cofactor(&mut self, f: Bdd, v: Var, val: bool) -> Result<Bdd> {
        assert!(v.0 < self.num_vars(), "variable {v} out of range");
        // The scope opens inside the closure so a reclaim-and-retry starts
        // from a clean table (stale entries would reference freed slots).
        // Recursion walks by *level*; resolve the variable's current level
        // once up front (identity until a dynamic reorder).
        let lvl = self.var_to_level(v);
        self.recover(&[f], |m| {
            m.caches.subst.clear();
            m.cofactor_rec(f, lvl, val)
        })
    }

    fn cofactor_rec(&mut self, f: Bdd, lvl: u32, val: bool) -> Result<Bdd> {
        if f.is_const() || self.level(f) > lvl {
            return Ok(f);
        }
        if self.level(f) == lvl {
            return Ok(if val { self.high(f) } else { self.low(f) });
        }
        // Cofactoring commutes with complement, so both polarities of a
        // node share one scope entry keyed on the regular edge.
        let reg = f.regular();
        let neg = f.is_complemented();
        let key = (reg.0, 0, 0);
        if let Some(r) = self.caches.subst.get(key) {
            return Ok(if neg { r.complement() } else { r });
        }
        let top = self.level(reg);
        let e = self.cofactor_rec(self.low(reg), lvl, val)?;
        let t = self.cofactor_rec(self.high(reg), lvl, val)?;
        let r = self.mk(top, e, t)?;
        let limit = self.caches.limit;
        self.caches.subst.put(key, r, limit);
        Ok(if neg { r.complement() } else { r })
    }

    /// Substitutes `g` for variable `v` in `f`: `f[v ← g]`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    pub fn compose(&mut self, f: Bdd, v: Var, g: Bdd) -> Result<Bdd> {
        assert!(v.0 < self.num_vars(), "variable {v} out of range");
        let mut map = vec![None; self.num_vars() as usize];
        map[v.0 as usize] = Some(g);
        self.vector_compose(f, &map)
    }

    /// Simultaneous composition: substitutes `map[v]` for every variable
    /// `v` with a `Some` entry, all at once.
    ///
    /// Unlike iterated [`BddManager::compose`], simultaneous composition is
    /// well defined even when substituted functions themselves depend on
    /// substituted variables — exactly the situation in symbolic simulation,
    /// where state variables are replaced by functional-vector components
    /// over those same variables.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than the variable count.
    pub fn vector_compose(&mut self, f: Bdd, map: &[Option<Bdd>]) -> Result<Bdd> {
        assert!(
            map.len() >= self.num_vars() as usize,
            "substitution map must cover all {} variables",
            self.num_vars()
        );
        let mut roots: Vec<Bdd> = vec![f];
        roots.extend(map.iter().flatten().copied());
        self.recover(&roots, |m| {
            m.caches.subst.clear();
            m.vcompose_rec(f, map)
        })
    }

    fn vcompose_rec(&mut self, f: Bdd, map: &[Option<Bdd>]) -> Result<Bdd> {
        if f.is_const() {
            return Ok(f);
        }
        // Substitution commutes with complement, so both polarities of a
        // node share one scope entry keyed on the regular edge.
        let reg = f.regular();
        let neg = f.is_complemented();
        let key = (reg.0, 0, 0);
        if let Some(r) = self.caches.subst.get(key) {
            return Ok(if neg { r.complement() } else { r });
        }
        let e = self.vcompose_rec(self.low(reg), map)?;
        let t = self.vcompose_rec(self.high(reg), map)?;
        // `map` is indexed by semantic variable; the node label is a level.
        let v = self.top_var(reg);
        let sub = match map[v.0 as usize] {
            Some(g) => g,
            None => self.var(v),
        };
        let r = self.ite(sub, t, e)?;
        let limit = self.caches.limit;
        self.caches.subst.put(key, r, limit);
        Ok(if neg { r.complement() } else { r })
    }

    /// Renames variables according to `perm`, where `perm[old] = new`.
    ///
    /// `perm` must be injective on the support of `f` (typically a full
    /// permutation). Arbitrary permutations are allowed — the result is
    /// rebuilt in order, not just relabeled.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is shorter than the variable count or maps outside
    /// the variable range.
    pub fn permute(&mut self, f: Bdd, perm: &[Var]) -> Result<Bdd> {
        let n = self.num_vars() as usize;
        assert!(perm.len() >= n, "permutation must cover all variables");
        let mut map: Vec<Option<Bdd>> = vec![None; n];
        for (old, &new) in perm.iter().enumerate().take(n) {
            assert!(
                new.0 < self.num_vars(),
                "permutation target {new} out of range"
            );
            if old as u32 != new.0 {
                map[old] = Some(self.var(new));
            }
        }
        self.vector_compose(f, &map)
    }

    /// Exchanges two blocks of variables: every `(a, b)` pair in `pairs`
    /// is swapped (`a ← b` and `b ← a` simultaneously).
    ///
    /// This is the classic next-state/current-state rename of reachability
    /// analysis.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range or appears twice.
    pub fn swap_vars(&mut self, f: Bdd, pairs: &[(Var, Var)]) -> Result<Bdd> {
        let n = self.num_vars() as usize;
        let mut perm: Vec<Var> = (0..n as u32).map(Var).collect();
        let mut seen = vec![false; n];
        for &(a, b) in pairs {
            assert!(
                a.0 < self.num_vars() && b.0 < self.num_vars(),
                "swap var out of range"
            );
            assert!(
                !seen[a.0 as usize] && !seen[b.0 as usize] && a != b,
                "swap pairs must be disjoint"
            );
            seen[a.0 as usize] = true;
            seen[b.0 as usize] = true;
            perm[a.0 as usize] = b;
            perm[b.0 as usize] = a;
        }
        self.permute(f, &perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BddManager, Bdd, Bdd, Bdd, Bdd) {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let d = m.var(Var(3));
        let _ = (&mut m, d);
        (m, a, b, c, d)
    }

    #[test]
    fn cofactor_basics() {
        let (mut m, a, b, c, _) = setup();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let f_a1 = m.cofactor(f, Var(0), true).unwrap();
        let b_or_c = m.or(b, c).unwrap();
        assert_eq!(f_a1, b_or_c);
        let f_a0 = m.cofactor(f, Var(0), false).unwrap();
        assert_eq!(f_a0, c);
        // Cofactor on an absent variable is the identity.
        assert_eq!(m.cofactor(f, Var(3), true).unwrap(), f);
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        let (mut m, a, b, c, d) = setup();
        let x = m.xor(a, c).unwrap();
        let y = m.and(b, d).unwrap();
        let f = m.or(x, y).unwrap();
        for v in 0..4 {
            let f0 = m.cofactor(f, Var(v), false).unwrap();
            let f1 = m.cofactor(f, Var(v), true).unwrap();
            let vv = m.var(Var(v));
            let back = m.ite(vv, f1, f0).unwrap();
            assert_eq!(back, f, "Shannon expansion failed on v{v}");
        }
    }

    #[test]
    fn compose_substitutes() {
        let (mut m, a, b, c, _) = setup();
        let f = m.and(a, b).unwrap();
        // f[b ← c] = a ∧ c
        let g = m.compose(f, Var(1), c).unwrap();
        let ac = m.and(a, c).unwrap();
        assert_eq!(g, ac);
        // f[b ← ⊤] = a
        let h = m.compose(f, Var(1), Bdd::TRUE).unwrap();
        assert_eq!(h, a);
    }

    #[test]
    fn vector_compose_is_simultaneous() {
        let (mut m, a, b, _, _) = setup();
        // f = a ⊕ b; substitute a←b, b←a simultaneously: still a ⊕ b.
        let f = m.xor(a, b).unwrap();
        let mut map = vec![None; 4];
        map[0] = Some(b);
        map[1] = Some(a);
        let g = m.vector_compose(f, &map).unwrap();
        assert_eq!(g, f);
        // Sequential substitution would have collapsed it: (a⊕b)[a←b] = 0.
        let seq = m.compose(f, Var(0), b).unwrap();
        assert!(seq.is_false());
    }

    #[test]
    fn vector_compose_with_dependent_substituents() {
        let (mut m, a, b, _, _) = setup();
        // f = a ∧ b with a ← (a ∨ b): result (a ∨ b) ∧ b = b.
        let f = m.and(a, b).unwrap();
        let aob = m.or(a, b).unwrap();
        let mut map = vec![None; 4];
        map[0] = Some(aob);
        let g = m.vector_compose(f, &map).unwrap();
        assert_eq!(g, b);
    }

    #[test]
    fn permute_renames() {
        let (mut m, a, b, c, d) = setup();
        let f = m.and(a, b).unwrap();
        // a→c, b→d, c→a, d→b
        let perm = [Var(2), Var(3), Var(0), Var(1)];
        let g = m.permute(f, &perm).unwrap();
        let cd = m.and(c, d).unwrap();
        assert_eq!(g, cd);
        // Permuting twice with the involution restores f.
        let back = m.permute(g, &perm).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn swap_vars_roundtrip() {
        let (mut m, a, b, c, d) = setup();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, d).unwrap();
        let pairs = [(Var(0), Var(2)), (Var(1), Var(3))];
        let g = m.swap_vars(f, &pairs).unwrap();
        let cd = m.and(c, d).unwrap();
        let expect = m.or(cd, b).unwrap();
        assert_eq!(g, expect);
        assert_eq!(m.swap_vars(g, &pairs).unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn swap_rejects_overlap() {
        let (mut m, a, ..) = setup();
        let _ = m.swap_vars(a, &[(Var(0), Var(1)), (Var(1), Var(2))]);
    }

    #[test]
    fn compose_visits_both_polarities_of_a_shared_node() {
        // xnor(a, b) reaches the b node through a regular edge on one
        // branch and a complemented edge on the other; the memo must not
        // serve the first polarity's result to the second.
        let (mut m, a, b, c, _) = setup();
        let f = m.xnor(a, b).unwrap();
        let g = m.compose(f, Var(1), c).unwrap();
        let expect = m.xnor(a, c).unwrap();
        assert_eq!(g, expect);
        // Same shape through cofactoring both polarities.
        let f1 = m.cofactor(f, Var(1), true).unwrap();
        assert_eq!(f1, a);
        let f0 = m.cofactor(f, Var(1), false).unwrap();
        assert_eq!(f0, m.not(a));
    }
}
