//! Structural exploration: support, sizes, counting, evaluation, cubes.

use crate::hash::FxHashMap;
use crate::manager::BddManager;
use crate::node::{Bdd, Var};
use crate::Result;

/// The set of variables a function depends on, as a compact bitset.
///
/// Produced by [`BddManager::support`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Support {
    bits: Vec<u64>,
}

impl Support {
    /// An empty support over `num_vars` variables.
    #[must_use]
    pub fn empty(num_vars: u32) -> Self {
        Support {
            bits: vec![0; (num_vars as usize).div_ceil(64)],
        }
    }

    fn set(&mut self, v: u32) {
        self.bits[(v / 64) as usize] |= 1 << (v % 64);
    }

    /// Whether the function depends on `v`.
    #[must_use]
    pub fn contains(&self, v: Var) -> bool {
        let w = (v.0 / 64) as usize;
        w < self.bits.len() && self.bits[w] & (1 << (v.0 % 64)) != 0
    }

    /// Number of variables in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the support is empty (a constant function).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The support variables in order, top to bottom.
    #[must_use]
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::with_capacity(self.len());
        for (i, &w) in self.bits.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push(Var(i as u32 * 64 + b));
                w &= w - 1;
            }
        }
        out
    }

    /// In-place union with another support.
    pub fn union_with(&mut self, other: &Support) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Whether the two supports share any variable.
    #[must_use]
    pub fn intersects(&self, other: &Support) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }
}

impl BddManager {
    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Support {
        let mut sup = Support::empty(self.num_vars());
        let mut seen = crate::hash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            // Deduplicate by node, not edge: f and ¬f have identical support.
            if g.is_const() || !seen.insert(g.node()) {
                continue;
            }
            sup.set(self.top_var(g).0);
            stack.push(self.low(g));
            stack.push(self.high(g));
        }
        sup
    }

    /// The support of `f` as a positive cube (for quantification).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn support_cube(&mut self, f: Bdd) -> Result<Bdd> {
        let vars = self.support(f).vars();
        self.cube_from_vars(&vars)
    }

    /// Number of interior (non-terminal) nodes in the DAG rooted at `f`.
    ///
    /// Terminals are not counted, so constants have size 0 and a single
    /// literal has size 1 (CUDD counts terminals; the paper's "shared
    /// size" tables are insensitive to the convention).
    pub fn size(&self, f: Bdd) -> usize {
        self.live_from(&[f])
    }

    /// Number of interior nodes shared by all `roots` together — the
    /// "shared size" reported for Boolean functional vectors in the
    /// paper's Table 3.
    pub fn shared_size(&self, roots: &[Bdd]) -> usize {
        self.live_from(roots)
    }

    /// Number of satisfying assignments over `num_vars` variables
    /// (levels `0..num_vars`), as a float.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable at or beyond `num_vars`.
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> f64 {
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        let frac = self.sat_frac(f, num_vars, &mut memo);
        frac * 2f64.powi(num_vars as i32)
    }

    /// Fraction of assignments satisfying `f` (density in `[0,1]`).
    fn sat_frac(&self, f: Bdd, num_vars: u32, memo: &mut FxHashMap<u32, f64>) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        assert!(
            self.level(f) < num_vars,
            "function depends on variables beyond num_vars"
        );
        if let Some(&r) = memo.get(&f.index()) {
            return r;
        }
        let lo = self.sat_frac(self.low(f), num_vars, memo);
        let hi = self.sat_frac(self.high(f), num_vars, memo);
        let r = 0.5 * (lo + hi);
        memo.insert(f.index(), r);
        r
    }

    /// Exact satisfying-assignment count over `num_vars ≤ 127` variables.
    ///
    /// Returns `None` if `num_vars > 127` (would overflow `u128`).
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable at or beyond `num_vars`.
    pub fn sat_count_exact(&self, f: Bdd, num_vars: u32) -> Option<u128> {
        if num_vars > 127 {
            return None;
        }
        fn rec(m: &BddManager, f: Bdd, num_vars: u32, memo: &mut FxHashMap<u32, u128>) -> u128 {
            // Count over variables strictly below f's level.
            if f.is_false() {
                return 0;
            }
            if f.is_true() {
                return 1;
            }
            if let Some(&r) = memo.get(&f.index()) {
                return r;
            }
            let lvl = m.level(f);
            let lo = m.low(f);
            let hi = m.high(f);
            let lvl_lo = if lo.is_const() { num_vars } else { m.level(lo) };
            let lvl_hi = if hi.is_const() { num_vars } else { m.level(hi) };
            let r = (rec(m, lo, num_vars, memo) << (lvl_lo - lvl - 1))
                + (rec(m, hi, num_vars, memo) << (lvl_hi - lvl - 1));
            memo.insert(f.index(), r);
            r
        }
        if f.is_false() {
            return Some(0);
        }
        if f.is_true() {
            return Some(1u128 << num_vars);
        }
        assert!(
            self.level(f) < num_vars,
            "function depends on variables beyond num_vars"
        );
        let mut memo = FxHashMap::default();
        let below = rec(self, f, num_vars, &mut memo);
        Some(below << self.level(f))
    }

    /// Evaluates `f` under a full assignment (`assignment[i]` = value of
    /// `Var(i)`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the deepest variable on
    /// the evaluation path.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut g = f;
        while !g.is_const() {
            let v = self.top_var(g).0 as usize;
            g = if assignment[v] {
                self.high(g)
            } else {
                self.low(g)
            };
        }
        g.is_true()
    }

    /// One satisfying assignment of `f`, or `None` if `f` is ⊥.
    ///
    /// Variables not constrained by the chosen path default to `false`;
    /// the chosen path prefers the low branch, so the result is the
    /// minimal satisfying assignment reading the top of the *current*
    /// variable order as the most significant bit (`Var(0)` until a
    /// dynamic reorder permutes the order).
    pub fn pick_minterm(&self, f: Bdd, num_vars: u32) -> Option<Vec<bool>> {
        if f.is_false() {
            return None;
        }
        let mut asg = vec![false; num_vars as usize];
        let mut g = f;
        while !g.is_const() {
            let v = self.top_var(g).0 as usize;
            if self.low(g).is_false() {
                asg[v] = true;
                g = self.high(g);
            } else {
                g = self.low(g);
            }
        }
        Some(asg)
    }

    /// Iterates over the cubes (paths to ⊤) of `f`.
    ///
    /// Each cube is a vector of length `num_vars` with `Some(value)` for
    /// variables on the path and `None` for don't-cares.
    pub fn cubes(&self, f: Bdd, num_vars: u32) -> CubeIter<'_> {
        CubeIter {
            mgr: self,
            num_vars,
            stack: if f.is_false() {
                vec![]
            } else {
                vec![(f, vec![None; num_vars as usize])]
            },
        }
    }

    /// All satisfying assignments of `f` over `num_vars` variables.
    ///
    /// Intended as a test oracle for small variable counts; the result has
    /// up to `2^num_vars` entries.
    pub fn all_sat(&self, f: Bdd, num_vars: u32) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        for cube in self.cubes(f, num_vars) {
            expand_cube(&cube, 0, &mut vec![false; num_vars as usize], &mut out);
        }
        out.sort();
        out
    }
}

fn expand_cube(cube: &[Option<bool>], i: usize, cur: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
    if i == cube.len() {
        out.push(cur.clone());
        return;
    }
    match cube[i] {
        Some(v) => {
            cur[i] = v;
            expand_cube(cube, i + 1, cur, out);
        }
        None => {
            for v in [false, true] {
                cur[i] = v;
                expand_cube(cube, i + 1, cur, out);
            }
        }
    }
}

/// Iterator over the cubes of a function; see [`BddManager::cubes`].
#[derive(Debug)]
pub struct CubeIter<'a> {
    mgr: &'a BddManager,
    num_vars: u32,
    stack: Vec<(Bdd, Vec<Option<bool>>)>,
}

impl Iterator for CubeIter<'_> {
    type Item = Vec<Option<bool>>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((f, cube)) = self.stack.pop() {
            if f.is_true() {
                return Some(cube);
            }
            if f.is_false() {
                continue;
            }
            let v = self.mgr.top_var(f).0 as usize;
            debug_assert!(v < self.num_vars as usize);
            let mut hi_cube = cube.clone();
            hi_cube[v] = Some(true);
            let mut lo_cube = cube;
            lo_cube[v] = Some(false);
            // Push high first so low-first (lexicographic) order pops first.
            self.stack.push((self.mgr.high(f), hi_cube));
            self.stack.push((self.mgr.low(f), lo_cube));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BddManager, Bdd, Bdd, Bdd) {
        let m = BddManager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        (m, a, b, c)
    }

    #[test]
    fn support_basics() {
        let (mut m, a, _, c) = setup();
        let f = m.and(a, c).unwrap();
        let sup = m.support(f);
        assert!(sup.contains(Var(0)));
        assert!(!sup.contains(Var(1)));
        assert!(sup.contains(Var(2)));
        assert_eq!(sup.len(), 2);
        assert_eq!(sup.vars(), vec![Var(0), Var(2)]);
        assert!(m.support(Bdd::TRUE).is_empty());
    }

    #[test]
    fn support_set_ops() {
        let (m, a, b, c) = setup();
        let mut sa = m.support(a);
        let sb = m.support(b);
        let sc = m.support(c);
        assert!(!sa.intersects(&sb));
        sa.union_with(&sb);
        assert!(sa.intersects(&sb));
        assert!(!sa.intersects(&sc));
        assert_eq!(sa.len(), 2);
    }

    #[test]
    fn sizes() {
        let (mut m, a, b, c) = setup();
        assert_eq!(m.size(Bdd::TRUE), 0);
        assert_eq!(m.size(a), 1);
        let ab = m.and(a, b).unwrap();
        assert_eq!(m.size(ab), 2);
        // Shared size counts common structure once: bc is a subgraph of f.
        let bc = m.and(b, c).unwrap();
        let f = m.or(a, bc).unwrap();
        assert_eq!(m.shared_size(&[f, bc]), m.size(f));
        assert!(m.shared_size(&[f, bc]) < m.size(f) + m.size(bc));
    }

    #[test]
    fn sat_counts() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        assert_eq!(m.sat_count(f, 3), 5.0);
        assert_eq!(m.sat_count_exact(f, 3), Some(5));
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
        assert_eq!(m.sat_count_exact(Bdd::FALSE, 3), Some(0));
        assert_eq!(m.sat_count_exact(Bdd::TRUE, 10), Some(1024));
        // Padding with unused variables scales the count.
        assert_eq!(m.sat_count(a, 3), 4.0);
        assert_eq!(m.sat_count_exact(a, 3), Some(4));
    }

    #[test]
    fn eval_matches_truth_table() {
        let (mut m, a, b, c) = setup();
        let x = m.xor(a, b).unwrap();
        let f = m.or(x, c).unwrap();
        for bits in 0u32..8 {
            let asg: Vec<bool> = (0..3).map(|i| (bits >> (2 - i)) & 1 == 1).collect();
            let expect = (asg[0] ^ asg[1]) || asg[2];
            assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn pick_minterm_is_minimal_and_satisfying() {
        let (mut m, a, b, _) = setup();
        let nb = m.not(b);
        let f = m.and(a, nb).unwrap();
        let p = m.pick_minterm(f, 3).unwrap();
        assert!(m.eval(f, &p));
        assert_eq!(p, vec![true, false, false]);
        assert_eq!(m.pick_minterm(Bdd::FALSE, 3), None);
        assert_eq!(
            m.pick_minterm(Bdd::TRUE, 3),
            Some(vec![false, false, false])
        );
    }

    #[test]
    fn cubes_and_all_sat() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cubes: Vec<_> = m.cubes(f, 3).collect();
        assert!(!cubes.is_empty());
        // Every cube satisfies f after expansion; total count matches.
        let sats = m.all_sat(f, 3);
        assert_eq!(sats.len(), 5);
        for s in &sats {
            assert!(m.eval(f, s));
        }
        assert!(m.all_sat(Bdd::FALSE, 3).is_empty());
        assert_eq!(m.all_sat(Bdd::TRUE, 2).len(), 4);
    }
}
