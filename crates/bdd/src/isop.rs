//! Irredundant sum-of-products (ISOP) cover extraction — the
//! Minato–Morreale algorithm.
//!
//! Produces a prime-and-irredundant cube cover of any function between a
//! lower and an upper bound (`on ⊆ cover ⊆ on ∨ dc`), the standard way to
//! render a BDD as two-level logic. Used by the CLI to print reached
//! state sets in readable cube form, and generally useful for exporting
//! functions to PLA-style formats.

use crate::manager::BddManager;
use crate::node::{Bdd, Var};
use crate::Result;

/// One cube of a cover: `Some(polarity)` per mentioned variable.
pub type Cube = Vec<(Var, bool)>;

impl BddManager {
    /// Computes an irredundant sum-of-products cover of `f`.
    ///
    /// The returned cubes are pairwise irredundant and each is prime with
    /// respect to `f`; their disjunction equals `f` exactly (the
    /// don't-care set is empty in this entry point).
    ///
    /// ```
    /// use bfvr_bdd::{BddManager, Var};
    /// # fn main() -> Result<(), bfvr_bdd::BddError> {
    /// let mut m = BddManager::new(3);
    /// let (a, b, c) = (m.var(Var(0)), m.var(Var(1)), m.var(Var(2)));
    /// let ab = m.and(a, b)?;
    /// let f = m.or(ab, c)?;
    /// let cover = m.isop(f)?;
    /// assert_eq!(cover.len(), 2); // the primes ab and c
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn isop(&mut self, f: Bdd) -> Result<Vec<Cube>> {
        let mut cubes = Vec::new();
        let cover = self.isop_rec(f, f, &mut Vec::new(), &mut cubes)?;
        debug_assert_eq!(cover, f, "ISOP cover must equal the function exactly");
        Ok(cubes)
    }

    /// Minato–Morreale ISOP between bounds `l ⊆ u`; appends cubes under
    /// the current `path` prefix and returns the BDD of the cover built.
    fn isop_rec(
        &mut self,
        l: Bdd,
        u: Bdd,
        path: &mut Vec<(Var, bool)>,
        out: &mut Vec<Cube>,
    ) -> Result<Bdd> {
        if l.is_false() {
            return Ok(Bdd::FALSE);
        }
        if u.is_true() {
            out.push(path.clone());
            return Ok(Bdd::TRUE);
        }
        // No memoization: sharing a memoized subtree would lose its cube
        // emissions, so each (l, u) pair is expanded in place.
        let lvl = self.level(l).min(self.level(u));
        let v = Var(lvl);
        let (l0, l1) = self.cofactors_at(l, lvl);
        let (u0, u1) = self.cofactors_at(u, lvl);
        // Cubes that must contain ¬v: needed where l0 exceeds u1.
        let nu1 = self.not(u1);
        let lsub0 = self.and(l0, nu1)?;
        path.push((v, false));
        let c0 = self.isop_rec(lsub0, u0, path, out)?;
        path.pop();
        // Cubes that must contain v.
        let nu0 = self.not(u0);
        let lsub1 = self.and(l1, nu0)?;
        path.push((v, true));
        let c1 = self.isop_rec(lsub1, u1, path, out)?;
        path.pop();
        // Remainder, independent of v.
        let nc0 = self.not(c0);
        let nc1 = self.not(c1);
        let r0 = self.and(l0, nc0)?;
        let r1 = self.and(l1, nc1)?;
        let lr = self.or(r0, r1)?;
        let ur = self.and(u0, u1)?;
        let cr = self.isop_rec(lr, ur, path, out)?;
        // Cover = v̄·c0 ∨ v·c1 ∨ cr.
        let vc0 = {
            let nv = self.nvar(v);
            self.and(nv, c0)?
        };
        let vc1 = {
            let pv = self.var(v);
            self.and(pv, c1)?
        };
        let part = self.or(vc0, vc1)?;
        self.or(part, cr)
    }

    /// Renders a cover as PLA-style text lines over `num_vars` columns.
    pub fn cover_to_pla(&self, cubes: &[Cube], num_vars: u32) -> String {
        let mut out = String::new();
        for cube in cubes {
            let mut row = vec!['-'; num_vars as usize];
            for &(v, pol) in cube {
                row[v.0 as usize] = if pol { '1' } else { '0' };
            }
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_bdd(m: &mut BddManager, cubes: &[Cube]) -> Bdd {
        let mut acc = Bdd::FALSE;
        for cube in cubes {
            let mut c = Bdd::TRUE;
            for &(v, pol) in cube {
                let lit = if pol { m.var(v) } else { m.nvar(v) };
                c = m.and(c, lit).unwrap();
            }
            acc = m.or(acc, c).unwrap();
        }
        acc
    }

    #[test]
    fn isop_of_simple_functions() {
        let mut m = BddManager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cubes = m.isop(f).unwrap();
        assert_eq!(cover_bdd(&mut m, &cubes), f);
        // Two prime implicants: ab and c.
        assert_eq!(cubes.len(), 2);
        assert!(m.isop(Bdd::FALSE).unwrap().is_empty());
        let taut = m.isop(Bdd::TRUE).unwrap();
        assert_eq!(taut, vec![vec![]]);
    }

    #[test]
    fn isop_covers_equal_function_exhaustively() {
        // All 256 functions of 3 variables.
        let mut m = BddManager::new(3);
        for tt in 0u16..256 {
            let mut f = Bdd::FALSE;
            for row in 0..8u16 {
                if tt & (1 << row) != 0 {
                    let mut cube = Bdd::TRUE;
                    for i in 0..3 {
                        let bit = row >> (2 - i) & 1 == 1;
                        let v = Var(i);
                        let lit = if bit { m.var(v) } else { m.nvar(v) };
                        cube = m.and(cube, lit).unwrap();
                    }
                    f = m.or(f, cube).unwrap();
                }
            }
            let cubes = m.isop(f).unwrap();
            assert_eq!(cover_bdd(&mut m, &cubes), f, "tt={tt:#05b}");
        }
    }

    #[test]
    fn isop_finds_primes_not_minterms() {
        // f = a (independent of 7 other variables): one single-literal cube.
        let mut m = BddManager::new(8);
        let a = m.var(Var(3));
        let cubes = m.isop(a).unwrap();
        assert_eq!(cubes, vec![vec![(Var(3), true)]]);
        // Parity needs 2^(n-1) cubes — the worst case — sanity check n=3.
        let x = m.var(Var(0));
        let y = m.var(Var(1));
        let z = m.var(Var(2));
        let xy = m.xor(x, y).unwrap();
        let par = m.xor(xy, z).unwrap();
        assert_eq!(m.isop(par).unwrap().len(), 4);
    }

    #[test]
    fn pla_rendering() {
        let mut m = BddManager::new(3);
        let a = m.var(Var(0));
        let nc = m.nvar(Var(2));
        let f = m.and(a, nc).unwrap();
        let cubes = m.isop(f).unwrap();
        assert_eq!(m.cover_to_pla(&cubes, 3), "1-0\n");
    }
}
