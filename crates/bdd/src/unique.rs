//! Hash-consing layer: the unique table, split into per-level subtables.
//!
//! Each variable level owns its own hash map keyed by the `(lo, hi)` edge
//! pair, so the level never needs to be part of the key and whole levels
//! can be enumerated or dropped independently (the hook future dynamic
//! reordering builds on). The table stores *node indices*; canonicality of
//! edges (no complemented `hi`) is the caller's invariant, enforced in
//! `BddManager::mk`.

use crate::hash::FxHashMap;

/// Per-level unique subtables mapping `(lo_edge, hi_edge)` → node index.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    levels: Vec<FxHashMap<(u32, u32), u32>>,
}

impl UniqueTable {
    /// Creates an empty table with one subtable per variable level.
    pub fn new(num_vars: u32) -> Self {
        UniqueTable {
            levels: (0..num_vars).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Looks up the node `(var, lo, hi)`.
    #[inline]
    pub fn get(&self, var: u32, lo: u32, hi: u32) -> Option<u32> {
        self.levels[var as usize].get(&(lo, hi)).copied()
    }

    /// Records `(var, lo, hi)` as canonically stored at `idx`.
    #[inline]
    pub fn insert(&mut self, var: u32, lo: u32, hi: u32, idx: u32) {
        self.levels[var as usize].insert((lo, hi), idx);
    }

    /// Forgets the node `(var, lo, hi)` (freed by garbage collection).
    #[inline]
    pub fn remove(&mut self, var: u32, lo: u32, hi: u32) {
        self.levels[var as usize].remove(&(lo, hi));
    }

    /// Total entries across all levels (diagnostics only).
    pub fn len(&self) -> usize {
        self.levels.iter().map(|t| t.len()).sum()
    }

    /// Iterates every entry as `(var, lo, hi, idx)` (diagnostics only).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32, u32)> + '_ {
        self.levels.iter().enumerate().flat_map(|(var, table)| {
            table
                .iter()
                .map(move |(&(lo, hi), &idx)| (var as u32, lo, hi, idx))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut u = UniqueTable::new(3);
        assert_eq!(u.get(1, 2, 4), None);
        u.insert(1, 2, 4, 7);
        assert_eq!(u.get(1, 2, 4), Some(7));
        // Same (lo, hi) pair at another level is a distinct node.
        assert_eq!(u.get(2, 2, 4), None);
        u.insert(2, 2, 4, 9);
        assert_eq!(u.len(), 2);
        u.remove(1, 2, 4);
        assert_eq!(u.get(1, 2, 4), None);
        assert_eq!(u.get(2, 2, 4), Some(9));
    }
}
