//! Hash-consing layer: the unique table, split into per-level subtables.
//!
//! Each variable level owns a flat open-addressed array of
//! `(lo, hi, idx)` entries probed robin-hood style, so `mk`'s hot lookup
//! is one hash plus a short linear scan over 12-byte entries in one or
//! two cache lines — no hash-map buckets, no per-entry allocation. The
//! level never needs to be part of the key, and whole levels can be
//! enumerated or dropped independently (the hook future dynamic
//! reordering builds on).
//!
//! Robin-hood probing keeps the *variance* of probe lengths small by
//! letting an inserting entry displace any resident whose own probe
//! distance is shorter; deletion does the inverse **backward shift** —
//! successors that are out of place slide one slot toward home — so the
//! table needs no tombstones and garbage collection's many `remove`
//! calls leave no residue to skip over. After a sweep the manager calls
//! [`UniqueTable::compact`], which shrinks levels whose occupancy
//! collapsed, returning the freed memory instead of carrying peak-sized
//! arrays forever.
//!
//! The table stores *node indices*; canonicality of edges (no
//! complemented `hi`) is the caller's invariant, enforced in
//! `BddManager::mk`.

/// Multiplicative mixing constant (64-bit golden ratio), shared with the
/// [`crate::hash`] module's Fx-style hasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Sentinel `idx` marking an empty slot (node indices are 31-bit, so no
/// real node can collide with it).
const EMPTY: u32 = u32::MAX;

/// Slots allocated when a level receives its first entry.
const MIN_SLOTS: usize = 8;

/// One stored node: the `(lo, hi)` edge pair and the arena slot holding
/// the canonical node for it.
#[derive(Clone, Copy, Debug)]
struct Entry {
    lo: u32,
    hi: u32,
    idx: u32,
}

const EMPTY_ENTRY: Entry = Entry {
    lo: 0,
    hi: 0,
    idx: EMPTY,
};

/// Mixes an edge pair into a slot hash (the high bits are the well-mixed
/// ones; slot selection shifts from the top).
#[inline]
fn mix(lo: u32, hi: u32) -> u64 {
    let h = u64::from(lo).wrapping_mul(SEED);
    (h.rotate_left(5) ^ u64::from(hi)).wrapping_mul(SEED)
}

/// One level's open-addressed subtable.
#[derive(Debug, Default)]
struct LevelTable {
    entries: Vec<Entry>,
    /// `log2(entries.len())`, cached for top-bit slot selection.
    shift: u32,
    /// Live entries.
    len: usize,
}

impl LevelTable {
    #[inline]
    fn slot_of(&self, lo: u32, hi: u32) -> usize {
        (mix(lo, hi) >> (64 - self.shift)) as usize
    }

    /// Probe distance of the entry at `pos` from its home slot.
    #[inline]
    fn displacement(&self, pos: usize) -> usize {
        let e = self.entries[pos];
        let mask = self.entries.len() - 1;
        pos.wrapping_sub(self.slot_of(e.lo, e.hi)) & mask
    }

    #[inline]
    fn get(&self, lo: u32, hi: u32) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() - 1;
        let home = self.slot_of(lo, hi);
        // Unrolled first probe: at distance 0 the robin-hood early exit
        // can never trigger (no displacement is < 0), so the common
        // direct-hit case costs one load and two compares — no rehash of
        // the resident entry.
        let e = self.entries[home];
        if e.idx == EMPTY {
            return None;
        }
        if e.lo == lo && e.hi == hi {
            return Some(e.idx);
        }
        let mut pos = (home + 1) & mask;
        let mut dist = 1usize;
        loop {
            let e = self.entries[pos];
            if e.idx == EMPTY {
                return None;
            }
            if e.lo == lo && e.hi == hi {
                return Some(e.idx);
            }
            // Robin-hood invariant: once we've probed further than the
            // resident entry had to, our key cannot be further along.
            if self.displacement(pos) < dist {
                return None;
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
    }

    fn insert(&mut self, lo: u32, hi: u32, idx: u32) {
        if self.entries.is_empty() || self.len * 8 >= self.entries.len() * 7 {
            self.grow();
        }
        let mask = self.entries.len() - 1;
        let mut pos = self.slot_of(lo, hi);
        let mut dist = 0usize;
        let mut cur = Entry { lo, hi, idx };
        loop {
            let e = self.entries[pos];
            if e.idx == EMPTY {
                self.entries[pos] = cur;
                self.len += 1;
                return;
            }
            debug_assert!(
                !(e.lo == cur.lo && e.hi == cur.hi),
                "duplicate unique-table insert"
            );
            // Rob the rich: swap with a resident closer to its home.
            let home = self.displacement(pos);
            if home < dist {
                self.entries[pos] = cur;
                cur = e;
                dist = home;
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
    }

    fn remove(&mut self, lo: u32, hi: u32) {
        if self.entries.is_empty() {
            return;
        }
        let mask = self.entries.len() - 1;
        let mut pos = self.slot_of(lo, hi);
        let mut dist = 0usize;
        loop {
            let e = self.entries[pos];
            if e.idx == EMPTY {
                return;
            }
            if e.lo == lo && e.hi == hi {
                break;
            }
            if self.displacement(pos) < dist {
                return; // absent (see `get`)
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
        // Backward shift: slide displaced successors one slot toward
        // home until a hole or a perfectly-placed entry ends the run.
        self.len -= 1;
        loop {
            let next = (pos + 1) & mask;
            let e = self.entries[next];
            if e.idx == EMPTY || self.displacement(next) == 0 {
                self.entries[pos] = EMPTY_ENTRY;
                return;
            }
            self.entries[pos] = e;
            pos = next;
        }
    }

    /// Doubles the slot array (or allocates the first one) and rehashes.
    fn grow(&mut self) {
        let new_len = (self.entries.len() * 2).max(MIN_SLOTS);
        self.rebuild(new_len);
    }

    /// Shrinks the slot array after mass deletion (GC sweeps) once the
    /// occupancy drops below 1/8, keeping headroom for reinsertion.
    fn compact(&mut self) {
        if self.entries.len() > MIN_SLOTS && self.len * 8 < self.entries.len() {
            let target = (self.len * 2).next_power_of_two().max(MIN_SLOTS);
            if target < self.entries.len() {
                self.rebuild(target);
            }
        }
    }

    fn rebuild(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two() && new_len > self.len);
        let old = std::mem::replace(&mut self.entries, vec![EMPTY_ENTRY; new_len]);
        self.shift = new_len.trailing_zeros();
        self.len = 0;
        for e in old {
            if e.idx != EMPTY {
                self.insert(e.lo, e.hi, e.idx);
            }
        }
    }

    /// Drains every entry, keeping the slot array allocated (the level is
    /// about to be refilled with a similar population).
    fn take(&mut self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::with_capacity(self.len);
        for e in &mut self.entries {
            if e.idx != EMPTY {
                out.push((e.lo, e.hi, e.idx));
                *e = EMPTY_ENTRY;
            }
        }
        self.len = 0;
        out
    }
}

/// Per-level unique subtables mapping `(lo_edge, hi_edge)` → node index.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    levels: Vec<LevelTable>,
}

impl UniqueTable {
    /// Creates an empty table with one subtable per variable level
    /// (each level's slot array is allocated on first insert).
    pub fn new(num_vars: u32) -> Self {
        UniqueTable {
            levels: (0..num_vars).map(|_| LevelTable::default()).collect(),
        }
    }

    /// Looks up the node `(var, lo, hi)`.
    #[inline]
    pub fn get(&self, var: u32, lo: u32, hi: u32) -> Option<u32> {
        self.levels[var as usize].get(lo, hi)
    }

    /// Records `(var, lo, hi)` as canonically stored at `idx`.
    #[inline]
    pub fn insert(&mut self, var: u32, lo: u32, hi: u32, idx: u32) {
        self.levels[var as usize].insert(lo, hi, idx);
    }

    /// Forgets the node `(var, lo, hi)` (freed by garbage collection).
    #[inline]
    pub fn remove(&mut self, var: u32, lo: u32, hi: u32) {
        self.levels[var as usize].remove(lo, hi);
    }

    /// Drains one level's entries as `(lo, hi, idx)`, leaving the level
    /// empty but its slot array allocated. This is the level-granular
    /// hook the dynamic-reordering swap kernel builds on: an adjacent
    /// swap takes both levels out, relabels or rewrites their nodes, and
    /// reinserts the survivors.
    pub fn take_level(&mut self, var: u32) -> Vec<(u32, u32, u32)> {
        self.levels[var as usize].take()
    }

    /// Live entries at one level (diagnostics and sift sizing).
    pub fn level_len(&self, var: u32) -> usize {
        self.levels[var as usize].len
    }

    /// Shrinks levels whose occupancy collapsed (called by the manager
    /// after every garbage-collection sweep).
    pub fn compact(&mut self) {
        for level in &mut self.levels {
            level.compact();
        }
    }

    /// Total entries across all levels (diagnostics only).
    pub fn len(&self) -> usize {
        self.levels.iter().map(|t| t.len).sum()
    }

    /// Resident bytes across all levels' slot arrays (diagnostics only).
    pub fn bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|t| t.entries.len() * std::mem::size_of::<Entry>())
            .sum()
    }

    /// Occupancy summary across all levels (diagnostics only).
    pub fn stats(&self) -> crate::manager::UniqueTableStats {
        let mut slots = 0usize;
        let mut occupied_levels = 0usize;
        for level in &self.levels {
            slots += level.entries.len();
            if level.len > 0 {
                occupied_levels += 1;
            }
        }
        crate::manager::UniqueTableStats {
            entries: self.len(),
            slots,
            bytes: self.bytes(),
            levels: self.levels.len(),
            occupied_levels,
        }
    }

    /// Iterates every entry as `(var, lo, hi, idx)` (diagnostics only).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32, u32)> + '_ {
        self.levels.iter().enumerate().flat_map(|(var, table)| {
            table
                .entries
                .iter()
                .filter(|e| e.idx != EMPTY)
                .map(move |e| (var as u32, e.lo, e.hi, e.idx))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut u = UniqueTable::new(3);
        assert_eq!(u.get(1, 2, 4), None);
        u.insert(1, 2, 4, 7);
        assert_eq!(u.get(1, 2, 4), Some(7));
        // Same (lo, hi) pair at another level is a distinct node.
        assert_eq!(u.get(2, 2, 4), None);
        u.insert(2, 2, 4, 9);
        assert_eq!(u.len(), 2);
        u.remove(1, 2, 4);
        assert_eq!(u.get(1, 2, 4), None);
        assert_eq!(u.get(2, 2, 4), Some(9));
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut u = UniqueTable::new(1);
        let n = 10_000u32;
        for i in 0..n {
            u.insert(0, i * 2, i * 2 + 1024, i + 1);
        }
        assert_eq!(u.len(), n as usize);
        for i in 0..n {
            assert_eq!(u.get(0, i * 2, i * 2 + 1024), Some(i + 1), "entry {i}");
        }
    }

    #[test]
    fn backward_shift_deletion_keeps_probe_chains_intact() {
        // Insert colliding-ish keys, delete every other one, and verify
        // the survivors are all still reachable (no tombstone residue,
        // no broken chains).
        let mut u = UniqueTable::new(1);
        let n = 4_096u32;
        for i in 0..n {
            u.insert(0, i, i.wrapping_mul(0x9e37), i + 1);
        }
        for i in (0..n).step_by(2) {
            u.remove(0, i, i.wrapping_mul(0x9e37));
        }
        assert_eq!(u.len(), n as usize / 2);
        for i in 0..n {
            let expect = if i % 2 == 0 { None } else { Some(i + 1) };
            assert_eq!(u.get(0, i, i.wrapping_mul(0x9e37)), expect, "entry {i}");
        }
    }

    #[test]
    fn remove_of_absent_key_is_a_no_op() {
        let mut u = UniqueTable::new(2);
        u.remove(0, 1, 2); // empty level
        u.insert(0, 1, 2, 5);
        u.remove(0, 9, 9); // occupied level, absent key
        assert_eq!(u.get(0, 1, 2), Some(5));
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn compact_shrinks_after_mass_deletion() {
        let mut u = UniqueTable::new(1);
        let n = 8_192u32;
        for i in 0..n {
            u.insert(0, i, i + n, i + 1);
        }
        let peak_bytes = u.bytes();
        for i in 16..n {
            u.remove(0, i, i + n);
        }
        u.compact();
        assert!(u.bytes() < peak_bytes / 4, "compaction must shrink");
        for i in 0..16 {
            assert_eq!(u.get(0, i, i + n), Some(i + 1), "survivor {i}");
        }
        assert_eq!(u.iter().count(), 16);
    }

    #[test]
    fn iter_enumerates_live_entries_only() {
        let mut u = UniqueTable::new(2);
        u.insert(0, 1, 2, 3);
        u.insert(1, 4, 6, 5);
        u.insert(1, 8, 10, 7);
        u.remove(1, 4, 6);
        let mut got: Vec<_> = u.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1, 2, 3), (1, 8, 10, 7)]);
    }
}
