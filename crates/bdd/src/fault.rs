//! Deterministic fault injection for resource-exhaustion testing.
//!
//! Resource failures in a BDD package are hard to test naturally: the
//! node count at which an operation trips a limit depends on cache
//! contents, garbage-collection history and platform timing, and the
//! 31-bit index space behind [`crate::BddError::Capacity`] is
//! unreachable on purpose. A [`FaultPlan`] armed via
//! [`crate::BddManager::set_fault_plan`] makes these paths determinate:
//! it fails the *k-th* node allocation (and, sticky, every later one) or
//! the *k-th* [`crate::BddManager::check_deadline`] call, independent of
//! wall clock or real memory pressure.
//!
//! Faults are **sticky** by design: once the trigger ordinal is reached,
//! every subsequent allocation (or deadline check) fails until the plan
//! is cleared. A one-shot fault would be masked by the manager's
//! reclaim-before-fail retry — the retry would simply succeed and the
//! exhaustion path under test would never surface.

/// Which error a triggered allocation fault reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Report [`crate::BddError::NodeLimit`] (a memory-out).
    NodeLimit,
    /// Report [`crate::BddError::Capacity`] (index-space exhaustion).
    Capacity,
}

/// A deterministic fault schedule for one [`crate::BddManager`].
///
/// Ordinals are 1-based and sticky: `node_limit_at(k)` fails the k-th and
/// every subsequent node allocation until the plan is cleared with
/// [`crate::BddManager::clear_fault_plan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail allocations with ordinal ≥ this (1-based), if set.
    pub fail_alloc_at: Option<u64>,
    /// Error reported by a triggered allocation fault.
    pub alloc_fault_kind: Option<FaultKind>,
    /// Fail `check_deadline` calls with ordinal ≥ this (1-based), if set.
    pub fail_deadline_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that fails the `k`-th (and every later) node allocation
    /// with [`crate::BddError::NodeLimit`].
    #[must_use]
    pub fn node_limit_at(k: u64) -> Self {
        FaultPlan {
            fail_alloc_at: Some(k.max(1)),
            alloc_fault_kind: Some(FaultKind::NodeLimit),
            fail_deadline_at: None,
        }
    }

    /// A plan that fails the `k`-th (and every later) node allocation
    /// with [`crate::BddError::Capacity`].
    #[must_use]
    pub fn capacity_at(k: u64) -> Self {
        FaultPlan {
            fail_alloc_at: Some(k.max(1)),
            alloc_fault_kind: Some(FaultKind::Capacity),
            fail_deadline_at: None,
        }
    }

    /// A plan that fails the `k`-th (and every later)
    /// [`crate::BddManager::check_deadline`] call with
    /// [`crate::BddError::Deadline`].
    #[must_use]
    pub fn deadline_at(k: u64) -> Self {
        FaultPlan {
            fail_alloc_at: None,
            alloc_fault_kind: None,
            fail_deadline_at: Some(k.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp_to_one() {
        assert_eq!(FaultPlan::node_limit_at(0).fail_alloc_at, Some(1));
        assert_eq!(FaultPlan::deadline_at(0).fail_deadline_at, Some(1));
        let c = FaultPlan::capacity_at(5);
        assert_eq!(c.fail_alloc_at, Some(5));
        assert_eq!(c.alloc_fault_kind, Some(FaultKind::Capacity));
        assert_eq!(c.fail_deadline_at, None);
    }
}
