//! Dynamic variable reordering: the in-place adjacent-level swap kernel
//! and the Rudell sifting pass built on it.
//!
//! # Why in place
//!
//! [`BddManager::permute`](crate::BddManager::permute) *rebuilds* a
//! function under a renamed order — every caller-held edge goes stale and
//! the whole DAG is re-interned. The swap kernel here instead exchanges
//! two **adjacent levels** of the shared DAG in place: node slots keep
//! their indices, so every outstanding [`Bdd`] edge, [`crate::Func`]
//! root, result pin and literal handle stays valid and keeps denoting the
//! same function. Only the *label* (level) of affected nodes changes,
//! plus a local rewrite of the nodes where the two levels interact.
//!
//! # The swap, under complement edges
//!
//! Node labels in this manager are **levels**; the manager-level
//! `level2var`/`var2level` maps translate at the public API boundary.
//! Swapping levels `x` and `y = x + 1` therefore means: after the swap,
//! label `x` tests the variable formerly at `y` and vice versa.
//!
//! * Nodes at `y` keep their children (all below `y`) and are relabeled
//!   `x` — same slot, same function.
//! * Nodes at `x` with **no** child at `y` are relabeled `y` — same
//!   slot, same function.
//! * Nodes at `x` with a child at `y` ("interacting") are rewritten in
//!   place: with `F = ite(v_x, H, L)` and cofactors taken against the
//!   old level `y`, the slot becomes `ite(v_y, A, B)` where
//!   `A = mk(y, L₁, H₁)` and `B = mk(y, L₀, H₀)`. The canonical form
//!   guarantees the stored `hi` edge `H` is regular, hence `H₁` and
//!   therefore `A` are regular — the rewritten slot never needs a
//!   complement flip its parents could not see.
//!
//! All functions are preserved, so the distinct-function invariant keeps
//! every per-level unique subtable collision-free. Nodes of the old `y`
//! level whose only parents were rewritten away are freed through a
//! sift-local reference counter (external roots — `Func` handles, result
//! pins, literals, caller roots — hold one permanent count each).
//!
//! The computed caches key on node indices whose labels and liveness
//! change across a pass, so the manager invalidates them wholesale when
//! a reorder completes (the swap loop itself never consults them).
//!
//! # The sifting pass
//!
//! [`BddManager::sift`] is Rudell's algorithm: visit variables in
//! descending order of their level population; move each through the
//! whole order by adjacent swaps (toward the nearer end first),
//! remembering the position with the fewest total live nodes and
//! aborting a direction once the graph grows past
//! `max_growth ×` the size at the variable's start; finally return the
//! variable to its best position. `converge` repeats whole passes until
//! a pass stops improving.

use std::cmp::Reverse;

use crate::error::BddError;
use crate::manager::BddManager;
use crate::node::{Bdd, Node};
use crate::Result;

/// Tuning knobs for one [`BddManager::sift`] call.
#[derive(Clone, Copy, Debug)]
pub struct SiftConfig {
    /// Abort bound for one variable's movement: stop pushing a variable
    /// in a direction once live nodes exceed `max_growth ×` the count at
    /// that variable's starting position (the variable still returns to
    /// its best seen position). Rudell's classic default is 1.2.
    pub max_growth: f64,
    /// Repeat whole passes until one fails to shrink the graph.
    pub converge: bool,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            converge: false,
        }
    }
}

/// What one [`BddManager::sift`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiftStats {
    /// Live nodes when the pass started (after the entry collection).
    pub before: usize,
    /// Live nodes when the pass finished.
    pub after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: u64,
    /// Whole passes over the variables (> 1 only in converge mode).
    pub passes: u32,
    /// Per-variable movements cut short by the growth bound.
    pub aborted: u32,
}

/// Live nodes below which *automatic* sifting is pointless: the pass
/// costs more than any conceivable saving. The fixed-point driver's
/// trigger uses this floor; an explicit [`BddManager::sift`] call always
/// runs regardless of size.
pub const SIFT_SIZE_FLOOR: usize = 2048;

impl BddManager {
    /// One Rudell sifting pass (or several, in converge mode) over the
    /// whole order. `roots` must list every edge the caller intends to
    /// keep using, exactly as for
    /// [`collect_garbage`](Self::collect_garbage); `Func` handles,
    /// result pins and literals are protected automatically. All
    /// caller-held edges remain valid and denote the same functions —
    /// only the order (and therefore node count) changes.
    ///
    /// Runs a full collection first so sizes reflect live nodes, and
    /// invalidates the computed caches at the end. Resource limits are
    /// *not* consulted (callers suspend/restore them around the call,
    /// like the driver's checkpoint hook); the armed deadline is polled
    /// between variables and ends the pass early but cleanly.
    pub fn sift(&mut self, roots: &[Bdd], cfg: &SiftConfig) -> SiftStats {
        let mark = self.mark_from(self.root_indices(roots, true));
        self.sweep(&mark);
        let before = self.allocated();
        let mut stats = SiftStats {
            before,
            after: before,
            ..SiftStats::default()
        };
        let n = self.num_vars();
        if n < 2 {
            return stats;
        }
        let mut refs = self.build_sift_refs(roots);
        loop {
            stats.passes += 1;
            let pass_start = self.allocated();
            // Largest levels first: the biggest wins come from the
            // variables that own the most nodes.
            let mut order: Vec<u32> = (0..n).collect();
            order.sort_by_key(|&v| Reverse(self.level_population(self.var2level[v as usize])));
            let mut deadline_hit = false;
            for v in order {
                if self.check_deadline().is_err() {
                    deadline_hit = true;
                    break;
                }
                self.sift_one(v, cfg.max_growth, &mut refs, &mut stats);
            }
            let pass_end = self.allocated();
            if deadline_hit || !cfg.converge || pass_end >= pass_start || stats.passes >= 8 {
                break;
            }
        }
        if stats.swaps > 0 {
            self.caches.clear_all();
            self.unique.compact();
        }
        stats.after = self.allocated();
        stats
    }

    /// Reorders the manager to an explicit target order by adjacent
    /// swaps: `target_level2var[l]` names the variable that must end up
    /// at level `l`. Used by checkpoint restore to re-enter a permuted
    /// order before importing the saved DAG. `roots` as for
    /// [`sift`](Self::sift).
    ///
    /// # Errors
    ///
    /// [`BddError::VarOutOfRange`] if `target_level2var` is not a
    /// permutation of `0..num_vars`; [`BddError::Capacity`] if the node
    /// index space cannot absorb a swap's transient growth.
    pub fn reorder_to(&mut self, target_level2var: &[u32], roots: &[Bdd]) -> Result<()> {
        let n = self.num_vars();
        if target_level2var.len() != n as usize {
            return Err(BddError::VarOutOfRange {
                var: target_level2var.len() as u32,
                num_vars: n,
            });
        }
        let mut seen = vec![false; n as usize];
        for &v in target_level2var {
            if v >= n || seen[v as usize] {
                return Err(BddError::VarOutOfRange {
                    var: v,
                    num_vars: n,
                });
            }
            seen[v as usize] = true;
        }
        if self
            .level2var
            .iter()
            .zip(target_level2var.iter())
            .all(|(a, b)| a == b)
        {
            return Ok(());
        }
        let mark = self.mark_from(self.root_indices(roots, true));
        self.sweep(&mark);
        let mut refs = self.build_sift_refs(roots);
        // Selection sort by adjacent swaps: bubble each target variable
        // up to its level, top down. O(n²) swaps worst case, which is
        // fine for checkpoint restore (it runs once per resume).
        let mut moved = false;
        for lvl in 0..n {
            let want = target_level2var[lvl as usize];
            let mut cur = self.var2level[want as usize];
            debug_assert!(cur >= lvl, "levels above are already settled");
            while cur > lvl {
                if !self.swap_has_headroom(cur - 1) {
                    return Err(BddError::Capacity);
                }
                self.swap_levels(cur - 1, &mut refs);
                moved = true;
                cur -= 1;
            }
        }
        if moved {
            self.caches.clear_all();
            self.unique.compact();
        }
        Ok(())
    }

    // ----- one variable -------------------------------------------------

    /// Sifts variable `v` through the order and leaves it at the best
    /// position seen. Updates swap/abort counters in `stats`.
    fn sift_one(&mut self, v: u32, max_growth: f64, refs: &mut Vec<u32>, stats: &mut SiftStats) {
        let n = self.num_vars();
        let start = self.var2level[v as usize];
        let mut best = self.allocated();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let limit = ((best as f64) * max_growth.max(1.0)) as usize + 2;
        let mut best_level = start;
        let mut cur = start;
        // Toward the nearer end first, then sweep across to the other.
        let down_first = u64::from(start) * 2 >= u64::from(n - 1);
        for phase in 0..2 {
            let down = down_first == (phase == 0);
            loop {
                let at_edge = if down { cur + 1 >= n } else { cur == 0 };
                if at_edge {
                    break;
                }
                let x = if down { cur } else { cur - 1 };
                if !self.swap_has_headroom(x) {
                    stats.aborted += 1;
                    break;
                }
                self.swap_levels(x, refs);
                stats.swaps += 1;
                cur = if down { cur + 1 } else { cur - 1 };
                let size = self.allocated();
                if size < best {
                    best = size;
                    best_level = cur;
                }
                if size > limit {
                    stats.aborted += 1;
                    break;
                }
            }
        }
        // Return to the best position seen.
        while cur != best_level {
            let x = if cur < best_level { cur } else { cur - 1 };
            if !self.swap_has_headroom(x) {
                // Out of index space on the way back: stay put. The
                // order is still valid, just not optimal.
                stats.aborted += 1;
                return;
            }
            self.swap_levels(x, refs);
            stats.swaps += 1;
            cur = if cur < best_level { cur + 1 } else { cur - 1 };
        }
    }

    // ----- the swap kernel ----------------------------------------------

    /// Live nodes labeled with level `lvl`.
    fn level_population(&self, lvl: u32) -> usize {
        self.unique.level_len(lvl)
    }

    /// Whether the arena can absorb the worst-case transient growth of
    /// swapping levels `x`/`x+1` (two fresh nodes per interacting node).
    fn swap_has_headroom(&self, x: u32) -> bool {
        self.arena.headroom() >= 2 * self.level_population(x) + 2
    }

    /// Sift-local reference counts: one per parent edge over the live
    /// graph, plus one permanent count per external root (caller roots,
    /// `Func` handles, result pins, literals). External counts are never
    /// decremented, so externally visible nodes can never be freed by a
    /// swap.
    fn build_sift_refs(&self, roots: &[Bdd]) -> Vec<u32> {
        let mut refs = vec![0u32; self.arena.len()];
        for i in 1..self.arena.len() as u32 {
            if !self.arena.is_live_slot(i) {
                continue;
            }
            let n = self.arena.get(i);
            if n.var < self.num_vars() {
                refs[(n.lo >> 1) as usize] += 1;
                refs[(n.hi >> 1) as usize] += 1;
            }
        }
        for idx in self.root_indices(roots, true) {
            refs[idx as usize] = refs[idx as usize].saturating_add(1);
        }
        refs
    }

    /// Exchanges adjacent levels `x` and `y = x + 1` in place. Caller
    /// guarantees headroom via [`Self::swap_has_headroom`].
    pub(crate) fn swap_levels(&mut self, x: u32, refs: &mut Vec<u32>) {
        let y = x + 1;
        debug_assert!(y < self.num_vars());
        let nx = self.unique.take_level(x);
        let ny = self.unique.take_level(y);
        // Classify level-x nodes *before* any relabeling: which children
        // currently live at level y?
        let mut plain: Vec<(u32, u32, u32)> = Vec::new();
        let mut interacting: Vec<(u32, u32, u32, bool, bool)> = Vec::new();
        for (lo, hi, idx) in nx {
            let lo_y = self.arena.get(lo >> 1).var == y;
            let hi_y = self.arena.get(hi >> 1).var == y;
            if lo_y || hi_y {
                interacting.push((lo, hi, idx, lo_y, hi_y));
            } else {
                plain.push((lo, hi, idx));
            }
        }
        // Old level-y nodes move up: relabel to x in place (children all
        // below y, so the order invariant holds; functions unchanged).
        for &(lo, hi, idx) in &ny {
            let mut n = self.arena.get(idx);
            n.var = x;
            self.arena.set(idx, n);
            self.unique.insert(x, lo, hi, idx);
        }
        // Non-interacting level-x nodes move down: relabel to y.
        for &(lo, hi, idx) in &plain {
            let mut n = self.arena.get(idx);
            n.var = y;
            self.arena.set(idx, n);
            self.unique.insert(y, lo, hi, idx);
        }
        // Interacting nodes are rewritten in place (see module docs).
        for &(lo, hi, idx, lo_y, hi_y) in &interacting {
            let l = Bdd(lo);
            let h = Bdd(hi);
            let (l0, l1) = if lo_y {
                let c = lo & 1;
                let ln = self.arena.get(l.node());
                (Bdd(ln.lo ^ c), Bdd(ln.hi ^ c))
            } else {
                (l, l)
            };
            let (h0, h1) = if hi_y {
                // Canonical form: the stored hi edge is regular.
                let hn = self.arena.get(h.node());
                (Bdd(hn.lo), Bdd(hn.hi))
            } else {
                (h, h)
            };
            let a = self.swap_mk(y, l1, h1, refs);
            let b = self.swap_mk(y, l0, h0, refs);
            debug_assert!(
                !a.is_complemented(),
                "hi cofactor of a regular hi edge must stay regular"
            );
            debug_assert_ne!(a, b, "interacting node reduced to redundancy");
            refs[a.node() as usize] += 1;
            refs[b.node() as usize] += 1;
            self.arena.set(
                idx,
                Node {
                    var: x,
                    lo: b.0,
                    hi: a.0,
                },
            );
            self.unique.insert(x, b.0, a.0, idx);
            // The slot's old edges are gone; release them (possibly
            // freeing old level-y nodes whose only parents were here).
            self.sift_deref(l.node(), refs);
            self.sift_deref(h.node(), refs);
        }
        // Finally flip the level↔variable maps.
        let vx = self.level2var[x as usize];
        let vy = self.level2var[y as usize];
        self.level2var[x as usize] = vy;
        self.level2var[y as usize] = vx;
        self.var2level[vx as usize] = y;
        self.var2level[vy as usize] = x;
    }

    /// Hash-consing `mk` used inside a swap: same reduction and
    /// complement canonicalization as [`Self::mk`], but maintains the
    /// sift-local refcounts, never consults the computed caches, and is
    /// infallible (the caller pre-checked arena headroom).
    fn swap_mk(&mut self, lvl: u32, lo: Bdd, hi: Bdd, refs: &mut Vec<u32>) -> Bdd {
        if lo == hi {
            return lo;
        }
        let (lo, hi, neg) = if hi.is_complemented() {
            (lo.complement(), hi.complement(), true)
        } else {
            (lo, hi, false)
        };
        debug_assert!(self.arena.get(lo.node()).var > lvl);
        debug_assert!(self.arena.get(hi.node()).var > lvl);
        let r = if let Some(idx) = self.unique.get(lvl, lo.0, hi.0) {
            Bdd(idx << 1)
        } else {
            let idx = match self.arena.alloc(Node {
                var: lvl,
                lo: lo.0,
                hi: hi.0,
            }) {
                Ok(i) => i,
                // swap_has_headroom reserved space for every allocation
                // this swap can make.
                Err(_) => unreachable!("swap headroom pre-checked"),
            };
            if idx as usize >= refs.len() {
                refs.resize(idx as usize + 1, 0);
            }
            // The slot may be recycled: reset before counting children.
            refs[idx as usize] = 0;
            refs[(lo.0 >> 1) as usize] += 1;
            refs[(hi.0 >> 1) as usize] += 1;
            self.unique.insert(lvl, lo.0, hi.0, idx);
            Bdd(idx << 1)
        };
        if neg {
            r.complement()
        } else {
            r
        }
    }

    /// Releases one reference to the node at `idx`, freeing it (and
    /// cascading into its children) when the count reaches zero.
    fn sift_deref(&mut self, idx: u32, refs: &mut [u32]) {
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            if i == 0 {
                continue; // the terminal is never counted or freed
            }
            debug_assert!(refs[i as usize] > 0, "sift refcount underflow");
            refs[i as usize] -= 1;
            if refs[i as usize] == 0 {
                let n = self.arena.get(i);
                self.unique.remove(n.var, n.lo, n.hi);
                self.arena.free(i);
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    /// xorshift64*: the project-standard seeded generator for random
    /// test cases (no external dependencies).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Builds a random function DAG over `n` vars from a seed.
    fn random_fn(m: &mut BddManager, n: u32, rng: &mut XorShift) -> Bdd {
        let mut f = if rng.next() & 1 == 0 {
            m.var(Var((rng.next() % u64::from(n)) as u32))
        } else {
            m.nvar(Var((rng.next() % u64::from(n)) as u32))
        };
        for _ in 0..3 + rng.next() % 12 {
            let v = Var((rng.next() % u64::from(n)) as u32);
            let lit = if rng.next() & 1 == 0 {
                m.var(v)
            } else {
                m.nvar(v)
            };
            f = match rng.next() % 3 {
                0 => m.and(f, lit).unwrap(),
                1 => m.or(f, lit).unwrap(),
                _ => m.xor(f, lit).unwrap(),
            };
        }
        f
    }

    fn truth_table(m: &BddManager, f: Bdd, n: u32) -> Vec<bool> {
        (0..1u32 << n)
            .map(|bits| {
                let asg: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
                m.eval(f, &asg)
            })
            .collect()
    }

    #[test]
    fn single_swap_preserves_semantics_and_invariants() {
        let n = 5u32;
        let mut rng = XorShift(0x5EED_0001);
        for case in 0..40 {
            let mut m = BddManager::new(n);
            let f = random_fn(&mut m, n, &mut rng);
            let g = random_fn(&mut m, n, &mut rng);
            let before_f = truth_table(&m, f, n);
            let before_g = truth_table(&m, g, n);
            let x = (rng.next() % u64::from(n - 1)) as u32;
            m.collect_garbage(&[f, g]);
            let mut refs = m.build_sift_refs(&[f, g]);
            m.swap_levels(x, &mut refs);
            m.clear_cache();
            assert_eq!(truth_table(&m, f, n), before_f, "case {case} f at x={x}");
            assert_eq!(truth_table(&m, g, n), before_g, "case {case} g at x={x}");
            m.check_invariants().unwrap();
            // Swapping back restores the identity order.
            m.swap_levels(x, &mut refs);
            m.clear_cache();
            assert!(!m.order_is_permuted());
            assert_eq!(truth_table(&m, f, n), before_f);
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn random_swap_sequences_keep_graph_equal_semantics() {
        let n = 7u32;
        let mut rng = XorShift(0xFACE_FEED);
        for case in 0..15 {
            let mut m = BddManager::new(n);
            let roots: Vec<Bdd> = (0..4).map(|_| random_fn(&mut m, n, &mut rng)).collect();
            let tables: Vec<Vec<bool>> = roots.iter().map(|&f| truth_table(&m, f, n)).collect();
            m.collect_garbage(&roots);
            let mut refs = m.build_sift_refs(&roots);
            for _ in 0..30 {
                let x = (rng.next() % u64::from(n - 1)) as u32;
                assert!(m.swap_has_headroom(x));
                m.swap_levels(x, &mut refs);
            }
            m.clear_cache();
            for (i, (&f, want)) in roots.iter().zip(tables.iter()).enumerate() {
                assert_eq!(&truth_table(&m, f, n), want, "case {case} root {i}");
            }
            m.check_invariants().unwrap();
            // The maps must still be mutual inverses.
            for l in 0..n {
                assert_eq!(m.var_to_level(m.level_to_var(l)), l);
            }
            // Two functions equal as functions must still be one edge:
            // rebuild each root from its truth table via ite chains and
            // compare canonical handles.
            for (&f, want) in roots.iter().zip(tables.iter()) {
                let mut rebuilt = Bdd::FALSE;
                for (bits, &val) in want.iter().enumerate() {
                    if !val {
                        continue;
                    }
                    let mut cube = Bdd::TRUE;
                    for i in 0..n {
                        let lit = if (bits >> i) & 1 == 1 {
                            m.var(Var(i))
                        } else {
                            m.nvar(Var(i))
                        };
                        cube = m.and(cube, lit).unwrap();
                    }
                    rebuilt = m.or(rebuilt, cube).unwrap();
                }
                assert_eq!(rebuilt, f, "hash consing diverged after swaps");
            }
        }
    }

    #[test]
    fn sift_shrinks_a_deliberately_interleaved_xor_chain() {
        // f = (x0∧x1) ∨ (x2∧x3) ∨ … under the order x0 x2 x4 … x1 x3 x5…
        // is exponentially larger than under the paired order; build the
        // bad order explicitly and let sifting find the good one.
        let pairs = 8u32;
        let n = 2 * pairs;
        let mut m = BddManager::new(n);
        let mut f = Bdd::FALSE;
        for p in 0..pairs {
            // Bad static order: pair (p, pairs + p) sits far apart.
            let a = m.var(Var(p));
            let b = m.var(Var(pairs + p));
            let ab = m.and(a, b).unwrap();
            f = m.or(f, ab).unwrap();
        }
        m.collect_garbage(&[f]);
        let before = m.size(f);
        let stats = m.sift(
            &[f],
            &SiftConfig {
                max_growth: 1.5,
                converge: true,
            },
        );
        let after = m.size(f);
        assert!(stats.swaps > 0, "sift must move something");
        assert!(
            after * 2 <= before,
            "sift should at least halve the conjunction-of-pairs DAG: {before} -> {after}"
        );
        m.check_invariants().unwrap();
        // Semantics unchanged: count satisfying assignments.
        assert_eq!(
            m.sat_count_exact(f, n),
            Some({
                // ∨ of 8 independent pair-conjunctions: inclusion-exclusion
                // says (4^8 - 3^8) · 1 per remaining freedom; compute by
                // brute truth count instead.
                let mut count = 0u128;
                for bits in 0..1u32 << n {
                    let sat =
                        (0..pairs).any(|p| (bits >> p) & 1 == 1 && (bits >> (pairs + p)) & 1 == 1);
                    count += u128::from(sat);
                }
                count
            })
        );
    }

    #[test]
    fn sift_preserves_func_roots_and_pins() {
        let n = 12u32;
        let mut rng = XorShift(0xABCD_EF01);
        let mut m = BddManager::new(n);
        let f = random_fn(&mut m, n, &mut rng);
        let g = random_fn(&mut m, n, &mut rng);
        let table_f = truth_table(&m, f, n);
        let h = m.func(f); // Func-held root, not passed via roots
        let _ = m.sift(&[g], &SiftConfig::default());
        assert!(m.is_live(f), "Func handle must protect its node");
        assert_eq!(truth_table(&m, f, n), table_f);
        drop(h);
        m.check_invariants().unwrap();
    }

    #[test]
    fn reorder_to_applies_and_reverses_a_permutation() {
        let n = 6u32;
        let mut rng = XorShift(0x0123_4567);
        let mut m = BddManager::new(n);
        let roots: Vec<Bdd> = (0..3).map(|_| random_fn(&mut m, n, &mut rng)).collect();
        let tables: Vec<Vec<bool>> = roots.iter().map(|&f| truth_table(&m, f, n)).collect();
        let target: Vec<u32> = vec![3, 0, 5, 1, 4, 2];
        m.reorder_to(&target, &roots).unwrap();
        assert_eq!(
            m.current_order(),
            target.iter().map(|&v| Var(v)).collect::<Vec<_>>()
        );
        for (&f, want) in roots.iter().zip(tables.iter()) {
            assert_eq!(&truth_table(&m, f, n), want);
        }
        m.check_invariants().unwrap();
        // Back to identity.
        let identity: Vec<u32> = (0..n).collect();
        m.reorder_to(&identity, &roots).unwrap();
        assert!(!m.order_is_permuted());
        for (&f, want) in roots.iter().zip(tables.iter()) {
            assert_eq!(&truth_table(&m, f, n), want);
        }
        m.check_invariants().unwrap();
    }

    #[test]
    fn reorder_to_rejects_non_permutations() {
        let mut m = BddManager::new(3);
        assert!(m.reorder_to(&[0, 0, 1], &[]).is_err());
        assert!(m.reorder_to(&[0, 1], &[]).is_err());
        assert!(m.reorder_to(&[0, 1, 3], &[]).is_err());
        assert!(m.reorder_to(&[2, 1, 0], &[]).is_ok());
    }

    #[test]
    fn api_boundary_maps_follow_the_order() {
        let n = 4u32;
        let mut m = BddManager::new(n);
        let a = m.var(Var(0));
        let b = m.var(Var(3));
        let f = m.and(a, b).unwrap();
        m.reorder_to(&[3, 2, 1, 0], &[f]).unwrap();
        // top_var reports the semantic variable at the (reversed) top.
        assert_eq!(m.top_var(f), Var(3));
        assert_eq!(m.var_to_level(Var(3)), 0);
        // support / eval / cofactor stay variable-indexed.
        let sup = m.support(f);
        assert!(sup.contains(Var(0)) && sup.contains(Var(3)));
        assert!(m.eval(f, &[true, false, false, true]));
        assert!(!m.eval(f, &[true, false, false, false]));
        let f3 = m.cofactor(f, Var(3), true).unwrap();
        assert_eq!(f3, a);
        // Cubes still come back indexed by variable.
        let cube = m.cube_from_vars(&[Var(0), Var(3)]).unwrap();
        assert_eq!(m.cube_vars(cube), vec![Var(3), Var(0)]);
        let ex = m.exists(f, cube).unwrap();
        assert!(ex.is_true());
        m.check_invariants().unwrap();
    }

    #[test]
    fn export_import_roundtrips_across_a_permuted_order() {
        let n = 5u32;
        let mut rng = XorShift(0xD1CE_D00D);
        let mut m = BddManager::new(n);
        let f = random_fn(&mut m, n, &mut rng);
        let table = truth_table(&m, f, n);
        m.reorder_to(&[4, 2, 0, 3, 1], &[f]).unwrap();
        let dag = m.export_dag(&[f]);
        // Importing into a fresh manager under the same level map must
        // reproduce the function once the level map is re-applied.
        let mut m2 = BddManager::new(n);
        m2.reorder_to(&[4, 2, 0, 3, 1], &[]).unwrap();
        let back = m2.import_dag(&dag).unwrap();
        assert_eq!(truth_table(&m2, back[0], n), table);
        m2.check_invariants().unwrap();
    }
}
