//! Frozen-function snapshots: immutable, packed, complement-free BDDs
//! for shared-state-free parallel apply.
//!
//! The manager's in-arena representation is built for mutation: a global
//! unique table, complement edges, per-operation caches, GC bookkeeping —
//! and is therefore `!Send`. This module exports the opposite trade-off:
//! [`BddManager::freeze`] walks a set of root edges and packs the shared
//! DAG below them into a [`FrozenSet`] — a contiguous `Vec` of
//! `(var, lo, hi)` triples with plain `u32` child indices, **no
//! complement edges** and **no unique table** — that is `Send + Sync` and
//! can be read by any number of worker threads at once.
//!
//! Complement edges are resolved *at freeze time*: a manager node that is
//! reachable both plain and complemented is exported as two frozen nodes.
//! The duplication is bounded (at most 2× the live graph) and buys the
//! kernel an identity it can exploit everywhere — a frozen node id *is*
//! the function, so task caches, memo tables and the local unique table
//! key on bare `u32`s with no polarity folding, and the coupled-DFS inner
//! loop never branches on a complement bit.
//!
//! On top of the snapshot, [`FrozenTask`] is a single worker's scratch
//! space: an append-only local node arena growing *above* the shared
//! snapshot in one unified id space, a local unique table for the nodes
//! it creates, a lossy direct-mapped ITE cache in the style of the
//! manager's computed tables, and explicit operand/result stacks — the
//! kernels are iterative, never recursive. Tasks share nothing, so any
//! number of them can run on one [`FrozenSet`] concurrently.
//!
//! Results come back to the owning manager through
//! [`FrozenTask::reintern`]: a single bottom-up pass that replays only the
//! *locally created* nodes through the ordinary hash-consing `mk` —
//! frozen input nodes re-enter by their recorded origin edge, paying
//! nothing. The unique table makes the re-interned function bit-identical
//! to one computed natively, which is what makes the parallel image path
//! a drop-in replacement for `vector_compose` (asserted by the
//! differential tests below).
//!
//! Contrast with [`crate::BddDag`]: the DAG export keeps complement
//! edges and exists for durable checkpoints; the frozen form trades
//! compactness for kernel speed and thread-shareability.

use crate::hash::FxHashMap;
use crate::manager::BddManager;
use crate::node::Bdd;
use crate::Result;

/// Variable marker for the two terminal nodes of a frozen snapshot.
const FROZEN_TERMINAL: u32 = u32::MAX;

/// Frozen node id of the constant-false function (position 0).
pub const FROZEN_FALSE: u32 = 0;
/// Frozen node id of the constant-true function (position 1).
pub const FROZEN_TRUE: u32 = 1;

/// Slot-count ceiling of the per-task direct-mapped ITE cache. 2^15
/// slots of 20 bytes = 640 KiB per task: big enough that the image-step
/// composes rarely thrash, small enough to stay resident in L2 — a
/// larger table measurably loses more to cache misses than it gains in
/// hit rate on the benchmark families.
const ITE_CACHE_BITS: u32 = 15;

/// One packed frozen node: decision variable plus two plain child ids
/// (no complement encoding — both children are node positions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FrozenNode {
    var: u32,
    lo: u32,
    hi: u32,
}

/// An immutable packed snapshot of one or more functions exported from a
/// [`BddManager`] by [`BddManager::freeze`].
///
/// Nodes are stored child-before-parent, positions 0/1 are the ⊥/⊤
/// terminals, and child references are plain indices — no complement
/// edges (see the module docs for why). The snapshot is `Send + Sync`
/// and keeps, per node, the manager edge it came from, so re-interning
/// a frozen input node is a table lookup, not a rebuild.
#[derive(Clone, Debug)]
pub struct FrozenSet {
    nodes: Vec<FrozenNode>,
    /// Manager edge word each frozen node came from (terminals included).
    origin: Vec<u32>,
    roots: Vec<u32>,
    num_vars: u32,
}

impl FrozenSet {
    /// Number of nodes in the snapshot, terminals included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot holds only the two terminals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Frozen id of the `i`-th root passed to [`BddManager::freeze`].
    #[must_use]
    pub fn root(&self, i: usize) -> u32 {
        self.roots[i]
    }

    /// All root ids, in the order the roots were passed to `freeze`.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Variable count of the exporting manager.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }
}

impl BddManager {
    /// Exports the shared DAG below `roots` into a packed, immutable,
    /// complement-free [`FrozenSet`] (read-only on the manager: freezing
    /// perturbs no caches and allocates no nodes).
    ///
    /// Each distinct *edge* (node × polarity) reachable from the roots
    /// becomes one frozen node; see the module docs for the trade-off.
    #[must_use]
    pub fn freeze(&self, roots: &[Bdd]) -> FrozenSet {
        let mut nodes = vec![
            FrozenNode {
                var: FROZEN_TERMINAL,
                lo: FROZEN_FALSE,
                hi: FROZEN_FALSE,
            },
            FrozenNode {
                var: FROZEN_TERMINAL,
                lo: FROZEN_TRUE,
                hi: FROZEN_TRUE,
            },
        ];
        let mut origin = vec![Bdd::FALSE.index(), Bdd::TRUE.index()];
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        map.insert(Bdd::FALSE.index(), FROZEN_FALSE);
        map.insert(Bdd::TRUE.index(), FROZEN_TRUE);
        let mut stack: Vec<u32> = Vec::new();
        let mut out_roots = Vec::with_capacity(roots.len());
        for &r in roots {
            stack.push(r.index());
            while let Some(&e) = stack.last() {
                if map.contains_key(&e) {
                    stack.pop();
                    continue;
                }
                let f = Bdd(e);
                let (var, lo, hi) = self.expand(f);
                match (map.get(&lo.index()), map.get(&hi.index())) {
                    (Some(&l), Some(&h)) => {
                        let id = nodes.len() as u32;
                        nodes.push(FrozenNode { var, lo: l, hi: h });
                        origin.push(e);
                        map.insert(e, id);
                        stack.pop();
                    }
                    (l, h) => {
                        if h.is_none() {
                            stack.push(hi.index());
                        }
                        if l.is_none() {
                            stack.push(lo.index());
                        }
                    }
                }
            }
            out_roots.push(map[&r.index()]);
        }
        FrozenSet {
            nodes,
            origin,
            roots: out_roots,
            num_vars: self.num_vars(),
        }
    }
}

/// One slot of the per-task lossy ITE cache.
#[derive(Clone, Copy, Default)]
struct CacheSlot {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

/// The per-task direct-mapped ITE cache: same design as the manager's
/// computed tables — Fx multiply–rotate hash, top-bit slot selection,
/// overwrite on collision, and a per-slot generation stamp so a recycled
/// [`FrozenWorkspace`] clears the table in O(1) (one counter bump per
/// image call) instead of re-zeroing up to half a megabyte. The slot
/// count scales with the snapshot ([`IteCache::refresh`]): a task over a
/// few hundred nodes must not pay for a maximum-size table.
#[derive(Default)]
struct IteCache {
    slots: Vec<CacheSlot>,
    gens: Vec<u32>,
    bits: u32,
    gen: u32,
}

impl IteCache {
    /// Readies the cache for composes over an `n`-node snapshot: roughly
    /// 8 slots per snapshot node, clamped to `[2^8, 2^ITE_CACHE_BITS]`.
    /// An already-larger table is kept and cleared by generation bump;
    /// growing reallocates (and restarts the generations).
    fn refresh(&mut self, n: usize) {
        let bits = (n.max(1).ilog2() + 3).clamp(8, ITE_CACHE_BITS);
        if bits > self.bits {
            self.bits = bits;
            self.slots.clear();
            self.slots.resize(1usize << bits, CacheSlot::default());
            self.gens.clear();
            self.gens.resize(1usize << bits, 0);
            self.gen = 1;
        } else {
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                self.gens.fill(0);
                self.gen = 1;
            }
        }
    }

    #[inline]
    fn slot_of(&self, f: u32, g: u32, h: u32) -> usize {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut x = (u64::from(f)).wrapping_mul(SEED);
        x = (x.rotate_left(26) ^ u64::from(g)).wrapping_mul(SEED);
        x = (x.rotate_left(26) ^ u64::from(h)).wrapping_mul(SEED);
        (x >> (64 - self.bits)) as usize
    }

    #[inline]
    fn get(&self, f: u32, g: u32, h: u32) -> Option<u32> {
        let i = self.slot_of(f, g, h);
        let s = self.slots[i];
        (self.gens[i] == self.gen && s.f == f && s.g == g && s.h == h).then_some(s.r)
    }

    #[inline]
    fn put(&mut self, f: u32, g: u32, h: u32, r: u32) {
        let i = self.slot_of(f, g, h);
        self.slots[i] = CacheSlot { f, g, h, r };
        self.gens[i] = self.gen;
    }
}

/// The task-local unique table: linear-probed open addressing over
/// power-of-two slots that store *local arena indices* — the key
/// (var/lo/hi) is read back from the arena, the classic BDD
/// unique-table layout. Doubles at 3/4 occupancy. Each slot packs a
/// generation stamp beside the index, so recycling a workspace empties
/// the table with one counter bump. A general-purpose hash map here
/// costs 2–3× more per `mk` than the kernel can afford.
#[derive(Default)]
struct LocalUnique {
    /// `(generation << 32) | local index`; a slot is empty unless its
    /// stamp matches the current generation.
    slots: Vec<u64>,
    mask: usize,
    gen: u32,
}

impl LocalUnique {
    /// Readies the table for an `n`-node snapshot (see
    /// [`IteCache::refresh`] for the keep-or-grow policy).
    fn refresh(&mut self, n: usize) {
        let cap = (n / 2).clamp(64, 1 << 12).next_power_of_two();
        if cap > self.slots.len() {
            self.slots.clear();
            self.slots.resize(cap, 0);
            self.mask = cap - 1;
            self.gen = 1;
        } else {
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                self.slots.fill(0);
                self.gen = 1;
            }
        }
    }

    #[inline]
    fn hash(var: u32, lo: u32, hi: u32) -> usize {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut x = u64::from(var).wrapping_mul(SEED);
        x = (x.rotate_left(26) ^ u64::from(lo)).wrapping_mul(SEED);
        x = (x.rotate_left(26) ^ u64::from(hi)).wrapping_mul(SEED);
        (x >> 24) as usize
    }

    /// The live local index in slot `i`, if any.
    #[inline]
    fn entry(&self, i: usize) -> Option<u32> {
        let s = self.slots[i];
        ((s >> 32) as u32 == self.gen).then_some(s as u32)
    }

    /// Looks the triple up; on a miss, appends it to `nodes` and indexes
    /// it. Returns the local arena index either way.
    #[inline]
    fn find_or_insert(&mut self, nodes: &mut Vec<FrozenNode>, var: u32, lo: u32, hi: u32) -> u32 {
        if (nodes.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow(nodes);
        }
        let mut i = Self::hash(var, lo, hi) & self.mask;
        loop {
            match self.entry(i) {
                None => {
                    let local = nodes.len() as u32;
                    nodes.push(FrozenNode { var, lo, hi });
                    self.slots[i] = (u64::from(self.gen) << 32) | u64::from(local);
                    return local;
                }
                Some(s) => {
                    let n = nodes[s as usize];
                    if n.var == var && n.lo == lo && n.hi == hi {
                        return s;
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self, nodes: &[FrozenNode]) {
        let cap = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(cap, 0);
        self.mask = cap - 1;
        for (local, n) in nodes.iter().enumerate() {
            let mut i = Self::hash(n.var, n.lo, n.hi) & self.mask;
            while self.entry(i).is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = (u64::from(self.gen) << 32) | (local as u64);
        }
    }
}

/// The exact compose memo: one value per frozen *input* node, with the
/// same generation-stamp O(1) clear as the other tables.
#[derive(Default)]
struct ComposeMemo {
    vals: Vec<u32>,
    gens: Vec<u32>,
    gen: u32,
}

impl ComposeMemo {
    /// Readies the memo to index an `n`-node snapshot.
    fn refresh(&mut self, n: usize) {
        if n > self.vals.len() {
            self.vals.clear();
            self.vals.resize(n, 0);
            self.gens.clear();
            self.gens.resize(n, 0);
            self.gen = 1;
        } else {
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                self.gens.fill(0);
                self.gen = 1;
            }
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<u32> {
        (self.gens[i] == self.gen).then_some(self.vals[i])
    }

    #[inline]
    fn put(&mut self, i: usize, v: u32) {
        self.vals[i] = v;
        self.gens[i] = self.gen;
    }
}

/// A frame of the iterative ITE kernel.
enum IteFrame {
    /// Evaluate `ite(f, g, h)`.
    Apply(u32, u32, u32),
    /// Children done: pop their results and build the decision node.
    Combine(u32, u32, u32, u32),
}

/// A frame of the iterative compose driver.
enum ComposeFrame {
    /// Evaluate the substitution of frozen input node `n`.
    Visit(u32),
    /// Cofactors done: pop them and splice the substituted variable in.
    Combine(u32),
}

/// Recyclable buffers of a [`FrozenTask`], detached from any snapshot.
///
/// A task built on fresh buffers pays an allocation-and-page-faulting
/// toll per image call that the kernel proper often undercuts; callers
/// on a fixed-point loop (the reach engines) instead keep one workspace
/// per worker alive across iterations and cycle it through
/// [`FrozenTask::reuse`] / [`FrozenTask::finish`]. Reuse costs O(1):
/// every table is generation-stamped, so "clearing" is a counter bump,
/// not a megabyte memset — the frozen-path analogue of the manager's
/// stamped computed tables.
#[derive(Default)]
pub struct FrozenWorkspace {
    nodes: Vec<FrozenNode>,
    unique: LocalUnique,
    cache: IteCache,
    memo: ComposeMemo,
    touched: Vec<bool>,
    ite_frames: Vec<IteFrame>,
    ite_vals: Vec<u32>,
}

impl FrozenWorkspace {
    /// An empty workspace; tables are sized lazily by the first task
    /// that adopts it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One worker's private workspace over a shared [`FrozenSet`]: a local
/// result arena, unique table, lossy ITE cache and explicit kernel
/// stacks. Create one per task (or per worker thread), run any number of
/// [`compose`](FrozenTask::compose) calls, then canonicalize the results
/// back into a manager with [`reintern`](FrozenTask::reintern).
///
/// Node ids are unified: ids below `base.len()` name snapshot nodes, ids
/// at or above it name nodes this task created. Tasks never write to the
/// snapshot, so many tasks can share one `&FrozenSet`.
pub struct FrozenTask<'a> {
    base: &'a FrozenSet,
    nodes: Vec<FrozenNode>,
    unique: LocalUnique,
    cache: IteCache,
    /// Exact compose memo, indexed by frozen input node id.
    memo: ComposeMemo,
    /// Per-input-node flag of the substitution-support prepass: does
    /// this sub-DAG decide on any substituted variable? Untouched
    /// sub-DAGs compose to themselves. Empty until the first
    /// [`compose`](FrozenTask::compose) call computes it.
    touched: Vec<bool>,
    ite_frames: Vec<IteFrame>,
    ite_vals: Vec<u32>,
}

impl<'a> FrozenTask<'a> {
    /// A fresh task over `base` with empty local state.
    #[must_use]
    pub fn new(base: &'a FrozenSet) -> Self {
        Self::reuse(base, FrozenWorkspace::new())
    }

    /// A task over `base` recycling the buffers an earlier task released
    /// via [`finish`](FrozenTask::finish). All tables are emptied (O(1),
    /// by generation bump) and re-sized for this snapshot; results are
    /// identical to a task built by [`new`](FrozenTask::new).
    #[must_use]
    pub fn reuse(base: &'a FrozenSet, mut ws: FrozenWorkspace) -> Self {
        ws.nodes.clear();
        ws.unique.refresh(base.len());
        ws.cache.refresh(base.len());
        ws.memo.refresh(base.len());
        ws.touched.clear();
        FrozenTask {
            base,
            nodes: ws.nodes,
            unique: ws.unique,
            cache: ws.cache,
            memo: ws.memo,
            touched: ws.touched,
            ite_frames: ws.ite_frames,
            ite_vals: ws.ite_vals,
        }
    }

    /// Releases the task's buffers for a later task to
    /// [`reuse`](FrozenTask::reuse).
    #[must_use]
    pub fn finish(self) -> FrozenWorkspace {
        FrozenWorkspace {
            nodes: self.nodes,
            unique: self.unique,
            cache: self.cache,
            memo: self.memo,
            touched: self.touched,
            ite_frames: self.ite_frames,
            ite_vals: self.ite_vals,
        }
    }

    /// Number of nodes this task created locally (diagnostics).
    #[must_use]
    pub fn local_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node(&self, id: u32) -> FrozenNode {
        let b = self.base.nodes.len() as u32;
        if id < b {
            self.base.nodes[id as usize]
        } else {
            self.nodes[(id - b) as usize]
        }
    }

    #[inline]
    fn var_of(&self, id: u32) -> u32 {
        self.node(id).var
    }

    /// Reduced hash-consed local node constructor (unified id space).
    #[inline]
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let local = self.unique.find_or_insert(&mut self.nodes, var, lo, hi);
        self.base.nodes.len() as u32 + local
    }

    /// The single-variable function `v` (as a local node unless a
    /// substitution already provides it).
    fn var_node(&mut self, var: u32) -> u32 {
        self.mk(var, FROZEN_FALSE, FROZEN_TRUE)
    }

    /// The substitution-support prepass: one forward sweep over the
    /// child-before-parent snapshot marks every input node whose
    /// sub-DAG decides on a substituted variable. The rest are identity
    /// under `subst` and the compose kernel skips them outright.
    fn prepare(&mut self, subst: &[Option<u32>]) {
        self.touched.resize(self.base.nodes.len(), false);
        for (i, n) in self.base.nodes.iter().enumerate().skip(2) {
            self.touched[i] = subst.get(n.var as usize).is_some_and(Option::is_some)
                || self.touched[n.lo as usize]
                || self.touched[n.hi as usize];
        }
    }

    /// Cofactors of `x` with respect to decision level `lvl`:
    /// `(x|v=1, x|v=0)`.
    #[inline]
    fn cofactors(&self, x: u32, lvl: u32) -> (u32, u32) {
        let n = self.node(x);
        if n.var == lvl {
            (n.hi, n.lo)
        } else {
            (x, x)
        }
    }

    /// Iterative if-then-else over the unified id space: explicit frame
    /// and value stacks, lossy direct-mapped cache, no recursion.
    pub fn ite(&mut self, f: u32, g: u32, h: u32) -> u32 {
        debug_assert!(self.ite_frames.is_empty() && self.ite_vals.is_empty());
        self.ite_frames.push(IteFrame::Apply(f, g, h));
        while let Some(frame) = self.ite_frames.pop() {
            match frame {
                IteFrame::Apply(f, g, mut h) => {
                    // Operand rewrites that need no complement edges:
                    // ite(f, f, h) = ite(f, 1, h); ite(f, g, f) = ite(f, g, 0).
                    let g = if g == f { FROZEN_TRUE } else { g };
                    if h == f {
                        h = FROZEN_FALSE;
                    }
                    if f == FROZEN_TRUE || g == h {
                        self.ite_vals.push(g);
                        continue;
                    }
                    if f == FROZEN_FALSE {
                        self.ite_vals.push(h);
                        continue;
                    }
                    if g == FROZEN_TRUE && h == FROZEN_FALSE {
                        self.ite_vals.push(f);
                        continue;
                    }
                    if let Some(r) = self.cache.get(f, g, h) {
                        self.ite_vals.push(r);
                        continue;
                    }
                    let lvl = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
                    let (f1, f0) = self.cofactors(f, lvl);
                    let (g1, g0) = self.cofactors(g, lvl);
                    let (h1, h0) = self.cofactors(h, lvl);
                    self.ite_frames.push(IteFrame::Combine(f, g, h, lvl));
                    self.ite_frames.push(IteFrame::Apply(f0, g0, h0));
                    self.ite_frames.push(IteFrame::Apply(f1, g1, h1));
                }
                IteFrame::Combine(f, g, h, lvl) => {
                    // The hi-branch frame was pushed last, so it ran
                    // first and its value sits deeper in the stack.
                    let e = self.ite_vals.pop().unwrap_or(FROZEN_FALSE);
                    let t = self.ite_vals.pop().unwrap_or(FROZEN_FALSE);
                    let r = if t == e { t } else { self.mk(lvl, e, t) };
                    self.cache.put(f, g, h, r);
                    self.ite_vals.push(r);
                }
            }
        }
        self.ite_vals.pop().unwrap_or(FROZEN_FALSE)
    }

    /// Simultaneous composition of the frozen input function `root`
    /// under `subst`: for each decision on variable `v` met below
    /// `root`, splice in `subst[v]` (a unified node id) — or the
    /// variable itself where `subst[v]` is `None` — via ITE, exactly the
    /// recurrence of the manager's `vector_compose`, with one extra
    /// algebraic identity the sequential path forgoes: a sub-DAG whose
    /// support holds no substituted variable composes to itself, so the
    /// kernel never descends into it (in the image step this prunes
    /// every pure-input subfunction wholesale).
    ///
    /// `root` must be a snapshot node id (a [`FrozenSet::root`]); the
    /// memo is exact (a dense per-input-node table), the inner ITE uses
    /// the lossy cache. Every `compose` call on one task must use the
    /// same `subst` map — the memo and the support prepass are keyed by
    /// input node only and assume it (the image step satisfies this by
    /// construction; start a fresh/[`reuse`](FrozenTask::reuse)d task
    /// for a different map).
    ///
    /// # Panics
    ///
    /// Panics if a decision variable of the input is outside `subst`.
    pub fn compose(&mut self, root: u32, subst: &[Option<u32>]) -> u32 {
        debug_assert!((root as usize) < self.base.len());
        if self.touched.is_empty() {
            self.prepare(subst);
        }
        let mut frames = vec![ComposeFrame::Visit(root)];
        let mut vals: Vec<u32> = Vec::new();
        while let Some(frame) = frames.pop() {
            match frame {
                ComposeFrame::Visit(n) => {
                    // Terminals and substitution-free sub-DAGs are
                    // fixed points of the composition.
                    if n < 2 || !self.touched[n as usize] {
                        vals.push(n);
                        continue;
                    }
                    if let Some(hit) = self.memo.get(n as usize) {
                        vals.push(hit);
                        continue;
                    }
                    let node = self.base.nodes[n as usize];
                    frames.push(ComposeFrame::Combine(n));
                    frames.push(ComposeFrame::Visit(node.lo));
                    frames.push(ComposeFrame::Visit(node.hi));
                }
                ComposeFrame::Combine(n) => {
                    let e = vals.pop().unwrap_or(FROZEN_FALSE);
                    let t = vals.pop().unwrap_or(FROZEN_FALSE);
                    let var = self.base.nodes[n as usize].var;
                    let sub = match subst[var as usize] {
                        Some(s) => s,
                        None => self.var_node(var),
                    };
                    let r = self.ite(sub, t, e);
                    self.memo.put(n as usize, r);
                    vals.push(r);
                }
            }
        }
        vals.pop().unwrap_or(FROZEN_FALSE)
    }

    /// Canonicalizes task results back into `m` (the manager the base
    /// snapshot was frozen from): one bottom-up pass replays every
    /// *locally created* node through the hash-consing `mk`, while
    /// snapshot nodes re-enter by their recorded origin edge — the
    /// original function graph must therefore still be alive in `m`,
    /// which holds whenever the frozen roots are (the caller's sets pin
    /// them). Returns one canonical [`Bdd`] per entry of `roots`, which
    /// are bit-identical to natively computed results.
    ///
    /// # Errors
    ///
    /// Resource limits tripped while re-interning (node limit, deadline).
    pub fn reintern(&self, m: &mut BddManager, roots: &[u32]) -> Result<Vec<Bdd>> {
        let b = self.base.nodes.len();
        // Dead local intermediates (cofactor results the lossy cache let
        // go of) are common; a mark pass keeps them out of the unique
        // table. The arena is child-before-parent, so one reverse sweep
        // from the roots finds every live node without hashing.
        let mut live = vec![false; self.nodes.len()];
        for &r in roots {
            if let Some(i) = (r as usize).checked_sub(b) {
                live[i] = true;
            }
        }
        for i in (0..self.nodes.len()).rev() {
            if !live[i] {
                continue;
            }
            let n = self.nodes[i];
            if let Some(c) = (n.lo as usize).checked_sub(b) {
                live[c] = true;
            }
            if let Some(c) = (n.hi as usize).checked_sub(b) {
                live[c] = true;
            }
        }
        // Dead slots keep a placeholder so live ids still index directly.
        let mut local: Vec<Bdd> = vec![Bdd::FALSE; self.nodes.len()];
        let resolve = |local: &[Bdd], base: &FrozenSet, id: u32| -> Bdd {
            if (id as usize) < b {
                Bdd(base.origin[id as usize])
            } else {
                local[id as usize - b]
            }
        };
        for i in 0..self.nodes.len() {
            if !live[i] {
                continue;
            }
            let n = self.nodes[i];
            let lo = resolve(&local, self.base, n.lo);
            let hi = resolve(&local, self.base, n.hi);
            local[i] = m.mk(n.var, lo, hi)?;
        }
        Ok(roots
            .iter()
            .map(|&r| resolve(&local, self.base, r))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    /// xorshift64*: the project-standard seeded generator for random
    /// test cases (no external dependencies).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// A random function over vars [0, n) built from `k` random cubes.
    fn random_fn(m: &mut BddManager, rng: &mut XorShift, n: u32, k: usize) -> Bdd {
        let mut f = Bdd::FALSE;
        for _ in 0..k {
            let mut cube = Bdd::TRUE;
            for v in 0..n {
                match rng.next() % 3 {
                    0 => cube = m.and(cube, m.var(Var(v))).unwrap(),
                    1 => {
                        let nv = m.nvar(Var(v));
                        cube = m.and(cube, nv).unwrap();
                    }
                    _ => {}
                }
            }
            f = m.or(f, cube).unwrap();
        }
        f
    }

    #[test]
    fn freeze_reintern_round_trips() {
        let mut m = BddManager::new(6);
        let mut rng = XorShift(0x5eed_0001);
        let roots: Vec<Bdd> = (0..8).map(|_| random_fn(&mut m, &mut rng, 6, 5)).collect();
        let frozen = m.freeze(&roots);
        // Identity compose: substituting nothing must round-trip every
        // root bit-identically through reintern.
        let mut task = FrozenTask::new(&frozen);
        let subst: Vec<Option<u32>> = vec![None; 6];
        let composed: Vec<u32> = (0..roots.len())
            .map(|i| task.compose(frozen.root(i), &subst))
            .collect();
        let back = task.reintern(&mut m, &composed).unwrap();
        assert_eq!(back, roots);
    }

    #[test]
    fn frozen_has_no_complement_edges_and_is_ordered() {
        let mut m = BddManager::new(5);
        let mut rng = XorShift(0xabcd_ef01);
        let f = random_fn(&mut m, &mut rng, 5, 9);
        let g = m.not(f);
        let frozen = m.freeze(&[f, g]);
        for (i, n) in frozen.nodes.iter().enumerate().skip(2) {
            assert!((n.lo as usize) < i, "child-before-parent violated");
            assert!((n.hi as usize) < i, "child-before-parent violated");
            assert!(
                frozen.nodes[n.lo as usize].var > n.var || n.lo < 2,
                "order violated"
            );
            assert!(
                frozen.nodes[n.hi as usize].var > n.var || n.hi < 2,
                "order violated"
            );
            assert_ne!(n.lo, n.hi, "unreduced frozen node");
        }
    }

    #[test]
    fn frozen_ite_matches_manager_ite() {
        let mut m = BddManager::new(6);
        let mut rng = XorShift(0x1234_5678);
        for round in 0..40 {
            let f = random_fn(&mut m, &mut rng, 6, 4);
            let g = random_fn(&mut m, &mut rng, 6, 4);
            let h = random_fn(&mut m, &mut rng, 6, 4);
            let want = m.ite(f, g, h).unwrap();
            let frozen = m.freeze(&[f, g, h]);
            let mut task = FrozenTask::new(&frozen);
            let r = task.ite(frozen.root(0), frozen.root(1), frozen.root(2));
            let got = task.reintern(&mut m, &[r]).unwrap()[0];
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn frozen_compose_matches_vector_compose() {
        // The differential fuzz of the coupled-DFS kernel: random
        // functions, random substitution maps, graph-equal results.
        let mut m = BddManager::new(8);
        let mut rng = XorShift(0x900d_f00d);
        for round in 0..25 {
            let f = random_fn(&mut m, &mut rng, 8, 6);
            let mut map: Vec<Option<Bdd>> = vec![None; 8];
            let mut subs: Vec<Bdd> = Vec::new();
            for slot in &mut map {
                if rng.next() & 1 == 1 {
                    let s = random_fn(&mut m, &mut rng, 8, 3);
                    *slot = Some(s);
                    subs.push(s);
                }
            }
            let want = m.vector_compose(f, &map).unwrap();

            let mut roots = vec![f];
            roots.extend(&subs);
            let frozen = m.freeze(&roots);
            let mut subst: Vec<Option<u32>> = vec![None; 8];
            let mut i = 1;
            for v in 0..8 {
                if map[v].is_some() {
                    subst[v] = Some(frozen.root(i));
                    i += 1;
                }
            }
            let mut task = FrozenTask::new(&frozen);
            let r = task.compose(frozen.root(0), &subst);
            let got = task.reintern(&mut m, &[r]).unwrap()[0];
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn tasks_share_a_snapshot_across_threads() {
        // FrozenSet is Send + Sync; concurrent tasks on one snapshot
        // produce the same results as a sequential task.
        let mut m = BddManager::new(6);
        let mut rng = XorShift(0x7777_0001);
        let fns: Vec<Bdd> = (0..6).map(|_| random_fn(&mut m, &mut rng, 6, 5)).collect();
        let subs: Vec<Bdd> = (0..6).map(|_| random_fn(&mut m, &mut rng, 6, 4)).collect();
        let mut roots = fns.clone();
        roots.extend(&subs);
        let frozen = m.freeze(&roots);
        let subst: Vec<Option<u32>> = (0..6).map(|v| Some(frozen.root(6 + v))).collect();

        // Sequential reference.
        let seq: Vec<Vec<Bdd>> = (0..6)
            .map(|i| {
                let mut t = FrozenTask::new(&frozen);
                let r = t.compose(frozen.root(i), &subst);
                t.reintern(&mut m, &[r]).unwrap()
            })
            .collect();

        // Parallel: one scoped thread per component.
        let par = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let frozen = &frozen;
                    let subst = &subst;
                    s.spawn(move || {
                        let mut t = FrozenTask::new(frozen);
                        let r = t.compose(frozen.root(i), subst);
                        (t, r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect::<Vec<_>>()
        });
        for (i, (t, r)) in par.iter().enumerate() {
            assert_eq!(t.reintern(&mut m, &[*r]).unwrap(), seq[i], "component {i}");
        }
    }
}
