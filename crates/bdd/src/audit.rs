//! Structural audit hooks: machine-readable graph diagnostics.
//!
//! This module is the `bfvr-bdd` half of the workspace's `bfvr-audit`
//! analysis framework. It exposes the manager's representation invariants
//! as *data* rather than as a pass/fail oracle:
//!
//! * [`BddManager::audit_graph`] walks every arena slot, the unique
//!   table, the root table, the result pins, the literal nodes and the
//!   free list, and returns one [`GraphIssue`] per violation — the
//!   well-formedness rules of the complement-edge canonical form
//!   (no complemented `hi`, strict variable-order monotonicity, unique
//!   canonicity, refcount/arena agreement).
//! * [`BddManager::audit_cache_residue`] checks every computed-cache
//!   entry for references to freed slots (cache residue after a sweep
//!   would serve stale results for recycled node identities).
//! * [`BddManager::audit_leaks`] reports live nodes that are unreachable
//!   from any root — dead nodes a collection should have reclaimed.
//! * [`BddManager::corrupt_for_audit`] deliberately seeds a corruption,
//!   so the detectors themselves can be tested (the mutation harness of
//!   `bfvr-audit`).
//!
//! [`BddManager::check_invariants`] remains as the boolean wrapper the
//! PR-2 tests use; it now simply reports the first issue found here. A
//! cheap always-on subset of these checks runs at every garbage
//! collection (see `BddManager::cheap_integrity_check`).

use std::fmt;

use crate::arena::FREE_LIST_END;
use crate::manager::BddManager;
use crate::node::{Bdd, Node, FREE_LEVEL, TERMINAL_LEVEL};

/// The category of a structural violation found by the graph audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GraphIssueKind {
    /// Slot 0 does not hold the terminal, or a terminal appears elsewhere.
    TerminalSlot,
    /// A live node's decision variable is outside the manager's range.
    VarOutOfRange,
    /// A stored `hi` edge carries the complement flag (the canonical form
    /// forbids it; negation would no longer be a pure bit flip).
    ComplementedHi,
    /// A node with `lo == hi` survived (the reduction rule was bypassed).
    RedundantNode,
    /// A live node's child edge points at a freed slot.
    DeadChild,
    /// A child's level is not strictly below its parent's (the DAG is no
    /// longer ordered).
    OrderViolation,
    /// The unique table and the arena disagree: a live node is missing,
    /// mapped to the wrong slot, or an entry points at a freed/mismatched
    /// slot — hash consing (and therefore canonicity) is broken.
    UniqueTable,
    /// A `Func` refcount is zero or pins a freed slot.
    RootTable,
    /// A reclaim-before-fail result pin references a freed slot.
    ResultPin,
    /// A per-variable literal node is freed or malformed.
    LiteralNode,
    /// The free list is cyclic, passes through live slots, or disagrees
    /// with the free-slot count.
    FreeList,
    /// A computed-cache entry references a freed slot (stale memoization
    /// that would resurface under a recycled node identity).
    CacheResidue,
    /// A live node unreachable from every root: garbage a collection
    /// should have reclaimed.
    DeadNodeLeak,
}

impl GraphIssueKind {
    /// Short stable label for diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GraphIssueKind::TerminalSlot => "terminal-slot",
            GraphIssueKind::VarOutOfRange => "var-range",
            GraphIssueKind::ComplementedHi => "complemented-hi",
            GraphIssueKind::RedundantNode => "redundant-node",
            GraphIssueKind::DeadChild => "dead-child",
            GraphIssueKind::OrderViolation => "order-violation",
            GraphIssueKind::UniqueTable => "unique-table",
            GraphIssueKind::RootTable => "root-table",
            GraphIssueKind::ResultPin => "result-pin",
            GraphIssueKind::LiteralNode => "literal-node",
            GraphIssueKind::FreeList => "free-list",
            GraphIssueKind::CacheResidue => "cache-residue",
            GraphIssueKind::DeadNodeLeak => "dead-node-leak",
        }
    }
}

/// One structural violation, attributed to an arena slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphIssue {
    /// What rule is broken.
    pub kind: GraphIssueKind,
    /// The arena slot the violation is attributed to (0 for global
    /// issues such as free-list inconsistencies).
    pub slot: u32,
    /// Human-readable description with the concrete numbers.
    pub detail: String,
}

impl GraphIssue {
    /// The regular (uncomplemented) edge to the attributed slot, usable
    /// for witness extraction when the slot is still live and locally
    /// walkable (check with [`BddManager::is_live`] first).
    #[must_use]
    pub fn edge(&self) -> Bdd {
        Bdd(self.slot << 1)
    }
}

impl fmt::Display for GraphIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] slot {}: {}",
            self.kind.label(),
            self.slot,
            self.detail
        )
    }
}

/// A deliberate corruption seeded by [`BddManager::corrupt_for_audit`].
///
/// These hooks exist solely so the audit detectors can be tested against
/// known-bad graphs (the `bfvr-audit` mutation harness); they are the
/// structural analogue of [`crate::FaultPlan`] for resource faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Sets the complement flag on the stored `hi` edge of the node.
    ComplementHi,
    /// Swaps the node's children in place without re-hashing.
    SwapChildren,
    /// Removes the node's unique-table entry (canonicity drift: a second
    /// structurally identical node could now be created).
    UnlinkUnique,
    /// Frees the node's arena slot while the unique table and any cache
    /// entries still reference it (dangling references).
    FreeLiveSlot,
}

impl BddManager {
    /// Exhaustive structural audit of the node graph; returns every
    /// violation found (empty = well-formed).
    ///
    /// Checked: slot 0 holds the only terminal; every live interior node
    /// has a regular (non-complemented) `hi` edge, distinct children, live
    /// children strictly below it in the order, and exactly one matching
    /// unique-table entry; every unique-table entry points back at a
    /// matching live slot; every `Func` refcount is positive and pins a
    /// live slot; every result pin and literal node is live and
    /// well-formed; and the free list is exactly the set of freed slots.
    ///
    /// O(nodes) — intended for the audit passes, tests and fault-injection
    /// harnesses, not hot paths.
    #[must_use]
    pub fn audit_graph(&self) -> Vec<GraphIssue> {
        let mut issues = Vec::new();
        let mut push = |kind: GraphIssueKind, slot: u32, detail: String| {
            issues.push(GraphIssue { kind, slot, detail });
        };
        if self.arena.get(0).var != TERMINAL_LEVEL {
            push(
                GraphIssueKind::TerminalSlot,
                0,
                "slot 0 does not hold the terminal".to_string(),
            );
        }
        let mut live_interior = 0usize;
        for i in 0..self.arena.len() as u32 {
            if !self.arena.is_live_slot(i) {
                continue;
            }
            let n = self.arena.get(i);
            if n.var == TERMINAL_LEVEL {
                if i != 0 {
                    push(
                        GraphIssueKind::TerminalSlot,
                        i,
                        "terminal node stored at a non-zero slot".to_string(),
                    );
                }
                continue;
            }
            if n.var >= self.num_vars() {
                push(
                    GraphIssueKind::VarOutOfRange,
                    i,
                    format!(
                        "variable {} out of range (num_vars = {})",
                        n.var,
                        self.num_vars()
                    ),
                );
                continue; // children/unique checks would index garbage
            }
            live_interior += 1;
            if n.hi & 1 != 0 {
                push(
                    GraphIssueKind::ComplementedHi,
                    i,
                    "stored hi edge carries the complement flag".to_string(),
                );
            }
            if n.lo == n.hi {
                push(
                    GraphIssueKind::RedundantNode,
                    i,
                    "redundant node (lo == hi) survived reduction".to_string(),
                );
            }
            for (name, edge) in [("lo", n.lo), ("hi", n.hi)] {
                let child = edge >> 1;
                if !self.arena.is_live_slot(child) {
                    push(
                        GraphIssueKind::DeadChild,
                        i,
                        format!("{name} child {child} is freed"),
                    );
                } else if self.arena.get(child).var <= n.var {
                    push(
                        GraphIssueKind::OrderViolation,
                        i,
                        format!(
                            "{name} child {child} (level {}) is not strictly below level {}",
                            self.arena.get(child).var,
                            n.var
                        ),
                    );
                }
            }
            match self.unique.get(n.var, n.lo, n.hi) {
                Some(idx) if idx == i => {}
                Some(idx) => push(
                    GraphIssueKind::UniqueTable,
                    i,
                    format!("unique table maps this node's key to slot {idx}"),
                ),
                None => push(
                    GraphIssueKind::UniqueTable,
                    i,
                    "missing from the unique table".to_string(),
                ),
            }
        }
        if self.unique.len() != live_interior {
            push(
                GraphIssueKind::UniqueTable,
                0,
                format!(
                    "unique table holds {} entries for {live_interior} live interior nodes",
                    self.unique.len()
                ),
            );
        }
        for (var, lo, hi, idx) in self.unique.iter() {
            if !self.arena.is_live_slot(idx) {
                push(
                    GraphIssueKind::UniqueTable,
                    idx,
                    format!("unique entry ({var}, {lo}, {hi}) points at a freed slot"),
                );
                continue;
            }
            let n = self.arena.get(idx);
            if n.var != var || n.lo != lo || n.hi != hi {
                push(
                    GraphIssueKind::UniqueTable,
                    idx,
                    format!("unique entry ({var}, {lo}, {hi}) disagrees with the stored node"),
                );
            }
        }
        for (&idx, &count) in self.roots.borrow().iter() {
            if count == 0 {
                push(
                    GraphIssueKind::RootTable,
                    idx,
                    "root table holds a zero refcount".to_string(),
                );
            }
            if !self.arena.is_live_slot(idx) {
                push(
                    GraphIssueKind::RootTable,
                    idx,
                    "root table pins a freed slot".to_string(),
                );
            }
        }
        for &idx in &self.result_pins {
            if !self.arena.is_live_slot(idx) {
                push(
                    GraphIssueKind::ResultPin,
                    idx,
                    "result pin references a freed slot".to_string(),
                );
            }
        }
        for (v, &e) in self.var_nodes.iter().enumerate() {
            let idx = e >> 1;
            if !self.arena.is_live_slot(idx) {
                push(
                    GraphIssueKind::LiteralNode,
                    idx,
                    format!("literal node for variable {v} is freed"),
                );
                continue;
            }
            let n = self.arena.get(idx);
            // The literal's node label is the variable's *current level*
            // (identity until a dynamic reorder permutes the order).
            let expected_level = self.var2level[v];
            if n.var != expected_level || n.lo != Bdd::FALSE.0 || n.hi != Bdd::TRUE.0 {
                push(
                    GraphIssueKind::LiteralNode,
                    idx,
                    format!("literal node for variable {v} is malformed"),
                );
            }
        }
        self.audit_free_list(&mut issues);
        issues
    }

    /// Free-list walk: every entry must be a freed slot, the chain must be
    /// acyclic, and its length must equal the free-slot count.
    fn audit_free_list(&self, issues: &mut Vec<GraphIssue>) {
        let mut seen = 0usize;
        let mut cur = self.arena.free_head();
        while cur != FREE_LIST_END {
            if cur as usize >= self.arena.len() {
                issues.push(GraphIssue {
                    kind: GraphIssueKind::FreeList,
                    slot: cur,
                    detail: "free list points outside the arena".to_string(),
                });
                return;
            }
            let n = self.arena.get(cur);
            if n.var != FREE_LEVEL {
                issues.push(GraphIssue {
                    kind: GraphIssueKind::FreeList,
                    slot: cur,
                    detail: "free list passes through a live slot".to_string(),
                });
                return;
            }
            seen += 1;
            if seen > self.arena.free_slots() {
                issues.push(GraphIssue {
                    kind: GraphIssueKind::FreeList,
                    slot: cur,
                    detail: "free list is longer than the free count (cycle?)".to_string(),
                });
                return;
            }
            cur = n.lo;
        }
        if seen != self.arena.free_slots() {
            issues.push(GraphIssue {
                kind: GraphIssueKind::FreeList,
                slot: 0,
                detail: format!(
                    "free list has {seen} entries but {} slots are free",
                    self.arena.free_slots()
                ),
            });
        }
    }

    /// Audits every computed-cache entry for references to freed slots.
    ///
    /// A sweep clears all caches, so residue can only arise from a bug (or
    /// a seeded [`Corruption::FreeLiveSlot`]); stale entries are unsound
    /// because a recycled slot would serve another function's result.
    #[must_use]
    pub fn audit_cache_residue(&self) -> Vec<GraphIssue> {
        let mut issues = Vec::new();
        for (name, cache) in self.caches.named() {
            for ((a, b, c), r) in cache.entries() {
                for edge in [a, b, c, r] {
                    let slot = edge >> 1;
                    if !self.arena.is_live_slot(slot) {
                        issues.push(GraphIssue {
                            kind: GraphIssueKind::CacheResidue,
                            slot,
                            detail: format!(
                                "{name} cache entry ({a}, {b}, {c}) → {r} references a freed slot"
                            ),
                        });
                        break; // one issue per entry is enough
                    }
                }
            }
        }
        issues
    }

    /// Reports live interior slots unreachable from `roots`, any live
    /// [`crate::Func`] handle, the result pins or the literal nodes —
    /// dead nodes a [`BddManager::collect_garbage`] with the same roots
    /// would reclaim. Run it right after a collection for leak detection:
    /// anything reported then is memory the collector failed to free.
    #[must_use]
    pub fn audit_leaks(&self, roots: &[Bdd]) -> Vec<Bdd> {
        let mark = self.mark_from(self.root_indices(roots, true));
        let mut leaked = Vec::new();
        for i in 1..self.arena.len() as u32 {
            if self.arena.is_live_slot(i)
                && !mark[i as usize]
                && self.arena.get(i).var < self.num_vars()
            {
                leaked.push(Bdd(i << 1));
            }
        }
        leaked
    }

    /// Validates the manager's representation invariants, returning a
    /// description of the first violation found.
    ///
    /// Boolean wrapper over [`BddManager::audit_graph`] +
    /// [`BddManager::audit_cache_residue`], kept for tests and harnesses
    /// that want a pass/fail oracle instead of structured findings.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation, rendered as text.
    pub fn check_invariants(&self) -> Result<(), String> {
        if let Some(issue) = self.audit_graph().first() {
            return Err(issue.to_string());
        }
        if let Some(issue) = self.audit_cache_residue().first() {
            return Err(issue.to_string());
        }
        Ok(())
    }

    /// Test-harness hook: seeds `corruption` on the node behind `f`.
    ///
    /// The manager is left deliberately inconsistent — this exists so the
    /// audit detectors can be shown to fire (see [`Corruption`]). Never
    /// call it on a manager you intend to keep using.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant (the terminal cannot be corrupted this
    /// way).
    pub fn corrupt_for_audit(&mut self, f: Bdd, corruption: Corruption) {
        assert!(!f.is_const(), "cannot corrupt the terminal");
        let idx = f.node();
        let n = self.arena.get(idx);
        match corruption {
            Corruption::ComplementHi => {
                self.arena.set(idx, Node { hi: n.hi ^ 1, ..n });
            }
            Corruption::SwapChildren => {
                self.arena.set(
                    idx,
                    Node {
                        lo: n.hi,
                        hi: n.lo,
                        ..n
                    },
                );
            }
            Corruption::UnlinkUnique => {
                self.unique.remove(n.var, n.lo, n.hi);
            }
            Corruption::FreeLiveSlot => {
                self.arena.free(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    fn manager_with_garbage() -> (BddManager, Bdd) {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.xor(a, b).unwrap();
        (m, g)
    }

    #[test]
    fn clean_manager_has_no_issues() {
        let (m, g) = manager_with_garbage();
        assert!(m.audit_graph().is_empty());
        assert!(m.audit_cache_residue().is_empty());
        // g is result-pinned after the op, so it is not a leak.
        assert!(m.audit_leaks(&[]).is_empty());
        assert!(m.audit_leaks(&[g]).is_empty());
        m.check_invariants().unwrap();
    }

    #[test]
    fn complement_hi_is_detected() {
        let (mut m, g) = manager_with_garbage();
        m.corrupt_for_audit(g, Corruption::ComplementHi);
        let issues = m.audit_graph();
        assert!(issues
            .iter()
            .any(|i| i.kind == GraphIssueKind::ComplementedHi && i.slot == g.index() >> 1));
        assert!(m.check_invariants().is_err());
    }

    #[test]
    fn swap_children_breaks_unique_agreement() {
        let (mut m, g) = manager_with_garbage();
        m.corrupt_for_audit(g, Corruption::SwapChildren);
        let issues = m.audit_graph();
        assert!(issues.iter().any(|i| i.kind == GraphIssueKind::UniqueTable));
    }

    #[test]
    fn unlinked_unique_entry_is_detected() {
        let (mut m, g) = manager_with_garbage();
        m.corrupt_for_audit(g, Corruption::UnlinkUnique);
        let issues = m.audit_graph();
        assert!(issues
            .iter()
            .any(|i| i.kind == GraphIssueKind::UniqueTable && i.detail.contains("missing")));
    }

    #[test]
    fn freed_live_slot_leaves_cache_residue_and_dangling_unique() {
        let (mut m, g) = manager_with_garbage();
        // The xor above populated the ite cache with entries touching g.
        m.corrupt_for_audit(g, Corruption::FreeLiveSlot);
        assert!(!m.audit_cache_residue().is_empty());
        let issues = m.audit_graph();
        assert!(issues.iter().any(|i| i.kind == GraphIssueKind::UniqueTable));
    }

    #[test]
    fn leak_detection_fires_on_unrooted_survivors() {
        let (mut m, g) = manager_with_garbage();
        // Pin g across an explicit GC (which clears result pins), then
        // drop the pin: g is now live but unreachable from any root.
        let h = m.func(g);
        m.collect_garbage(&[]);
        drop(h);
        assert!(m.is_live(g));
        let leaked = m.audit_leaks(&[]);
        assert_eq!(leaked, vec![g.regular()]);
        // Rooting g clears the report.
        assert!(m.audit_leaks(&[g]).is_empty());
    }
}
