//! RAII root handles: a [`Func`] pins its node across garbage collection.
//!
//! The seed core exposed manual `protect`/`unprotect` calls, which every
//! engine had to pair correctly on every exit path — the classic leaked- or
//! dangling-root bug source. A `Func` replaces that: creating one (via
//! [`crate::BddManager::func`]) increments a refcount on the target node,
//! cloning increments it again, and dropping decrements it. The garbage
//! collector seeds its mark phase from the live refcounts, so a rooted
//! function can never be collected and a forgotten release can never leak —
//! the borrow checker enforces the pairing.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::hash::FxHashMap;
use crate::node::Bdd;

/// Shared root table: regular node index → refcount. One per manager,
/// shared (via `Rc`) with every outstanding handle so drops need no access
/// to the manager itself.
pub(crate) type RootTable = Rc<RefCell<FxHashMap<u32, u32>>>;

/// An owning handle to a BDD function, pinned against garbage collection.
///
/// Obtained from [`crate::BddManager::func`]. While any clone of the handle
/// is alive, [`crate::BddManager::collect_garbage`] treats the function as
/// a root. Use [`Func::bdd`] to get the plain [`Bdd`] edge for passing into
/// manager operations.
///
/// Equality and hashing compare the underlying edge, so two handles to the
/// same function (from the same manager) compare equal regardless of how
/// they were obtained. Handles are not `Send`: the manager and all its
/// handles live on one thread.
pub struct Func {
    edge: Bdd,
    roots: RootTable,
}

impl Func {
    /// Creates a handle, incrementing the root refcount. Constants need no
    /// pinning (the terminal is never collected) but are counted anyway for
    /// uniformity — the entry is removed again on drop.
    pub(crate) fn new(edge: Bdd, roots: RootTable) -> Func {
        *roots.borrow_mut().entry(edge.node()).or_insert(0) += 1;
        Func { edge, roots }
    }

    /// The underlying edge handle, for use with manager operations.
    #[inline]
    #[must_use]
    pub fn bdd(&self) -> Bdd {
        self.edge
    }

    /// The complement `¬f`, as a new pinned handle. Constant time: with
    /// complement edges this flips one bit and bumps the shared refcount —
    /// no manager access and no node allocation.
    #[must_use]
    pub fn not(&self) -> Func {
        Func::new(self.edge.complement(), Rc::clone(&self.roots))
    }
}

impl Clone for Func {
    fn clone(&self) -> Func {
        Func::new(self.edge, Rc::clone(&self.roots))
    }
}

impl Drop for Func {
    fn drop(&mut self) {
        let mut roots = self.roots.borrow_mut();
        if let Some(c) = roots.get_mut(&self.edge.node()) {
            *c -= 1;
            if *c == 0 {
                roots.remove(&self.edge.node());
            }
        }
    }
}

impl PartialEq for Func {
    fn eq(&self, other: &Func) -> bool {
        self.edge == other.edge
    }
}

impl Eq for Func {}

impl PartialEq<Bdd> for Func {
    fn eq(&self, other: &Bdd) -> bool {
        self.edge == *other
    }
}

impl std::hash::Hash for Func {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.edge.hash(state);
    }
}

impl fmt::Debug for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Func({:?})", self.edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RootTable {
        Rc::new(RefCell::new(FxHashMap::default()))
    }

    #[test]
    fn refcount_follows_clone_and_drop() {
        let t = table();
        let f = Func::new(Bdd(6), Rc::clone(&t));
        assert_eq!(t.borrow().get(&3), Some(&1));
        let g = f.clone();
        assert_eq!(t.borrow().get(&3), Some(&2));
        drop(f);
        assert_eq!(t.borrow().get(&3), Some(&1));
        drop(g);
        assert_eq!(t.borrow().get(&3), None);
    }

    #[test]
    fn not_pins_the_same_node() {
        let t = table();
        let f = Func::new(Bdd(6), Rc::clone(&t));
        let nf = f.not();
        assert_eq!(nf.bdd(), Bdd(7));
        assert_eq!(t.borrow().get(&3), Some(&2), "f and ¬f share the node");
        drop(f);
        drop(nf);
        assert!(t.borrow().is_empty());
    }

    #[test]
    fn equality_is_by_edge() {
        let t = table();
        let f = Func::new(Bdd(6), Rc::clone(&t));
        let g = Func::new(Bdd(6), Rc::clone(&t));
        let h = Func::new(Bdd(7), Rc::clone(&t));
        assert_eq!(f, g);
        assert_ne!(f, h);
        assert_eq!(f, Bdd(6));
    }
}
