//! Structural DAG export/import: the bridge between in-arena BDDs and
//! durable on-disk checkpoints.
//!
//! [`BddManager::export_dag`] walks a set of root edges and produces a
//! self-contained, manager-independent description of the shared reduced
//! DAG below them: a topologically ordered node list plus complement-
//! encoded edge references. [`BddManager::import_dag`] replays that
//! description into any manager with enough variables, re-interning every
//! node through the ordinary hash-consing path ([`BddManager`]'s `mk`),
//! so an imported function is bit-identical to one built natively — the
//! unique table guarantees it.
//!
//! The format is deliberately *structural*, not positional: references
//! are indices into the export's own node list, never arena indices, so
//! a DAG exported from one manager imports into a fresh manager whose
//! arena layout shares nothing with the source. The durable checkpoint
//! format in `bfvr-serve` serializes exactly this structure.

use crate::error::BddError;
use crate::hash::FxHashMap;
use crate::manager::BddManager;
use crate::node::Bdd;

/// Reference to a node within a [`BddDag`], complement-edge encoded:
/// bit 0 is the complement flag, the remaining bits are `1 + position`
/// in [`BddDag::nodes`] — position 0 is reserved for the terminal, so
/// `DagRef(0)` is ⊤ and `DagRef(1)` is ⊥, mirroring [`Bdd`]'s encoding.
pub type DagRef = u32;

/// The terminal reference ⊤.
pub const DAG_TRUE: DagRef = 0;
/// The terminal reference ⊥.
pub const DAG_FALSE: DagRef = 1;

/// One exported node: a decision variable level plus two [`DagRef`]
/// children. The canonical complement-edge rule (stored `hi` is never
/// complemented) is preserved by the export and checked by the import.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagNode {
    /// Decision variable level.
    pub var: u32,
    /// Low (else) child reference.
    pub lo: DagRef,
    /// High (then) child reference — never complemented in a valid DAG.
    pub hi: DagRef,
}

/// A manager-independent shared BDD DAG: nodes in child-before-parent
/// order plus the root references the export was asked for.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BddDag {
    /// Number of variables of the exporting manager (import target must
    /// have at least this many).
    pub num_vars: u32,
    /// Nodes, topologically ordered: every child reference points at a
    /// terminal or an earlier position.
    pub nodes: Vec<DagNode>,
    /// Root references, in the order the roots were passed to
    /// [`BddManager::export_dag`].
    pub roots: Vec<DagRef>,
}

/// Why a [`BddDag`] was rejected by [`BddManager::import_dag`].
///
/// Malformed structure is kept distinct from resource exhaustion: a
/// corrupt checkpoint must surface as a parse-shaped error, never as a
/// spurious `M.O.`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The DAG violates a structural invariant (bad reference, variable
    /// out of range, order violation, complemented `hi`).
    Malformed {
        /// Position of the offending node (or root index for root errors).
        position: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// A legitimate resource limit tripped while re-interning.
    Bdd(BddError),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Malformed { position, reason } => {
                write!(f, "malformed bdd dag at node {position}: {reason}")
            }
            DagError::Bdd(e) => write!(f, "bdd dag import failed: {e}"),
        }
    }
}

impl std::error::Error for DagError {}

impl From<BddError> for DagError {
    fn from(e: BddError) -> Self {
        DagError::Bdd(e)
    }
}

/// Packs a node position (0-based in `nodes`) and complement flag into a
/// [`DagRef`].
fn node_ref(position: usize, complemented: bool) -> DagRef {
    #[allow(clippy::cast_possible_truncation)]
    let r = ((position as u32 + 1) << 1) | u32::from(complemented);
    r
}

impl BddManager {
    /// Exports the shared reduced DAG below `roots` as a manager-
    /// independent [`BddDag`].
    ///
    /// Nodes appear child-before-parent; shared subgraphs are emitted
    /// once. The export is read-only and allocation-free on the manager
    /// side (it never touches the unique table or caches).
    #[must_use]
    pub fn export_dag(&self, roots: &[Bdd]) -> BddDag {
        let mut index: FxHashMap<u32, usize> = FxHashMap::default();
        let mut nodes: Vec<DagNode> = Vec::new();
        // Iterative postorder: visit children before emitting the parent.
        for &root in roots {
            if root.is_const() || index.contains_key(&root.node()) {
                continue;
            }
            let mut stack: Vec<(Bdd, bool)> = vec![(root.regular(), false)];
            while let Some((e, expanded)) = stack.pop() {
                if e.is_const() || index.contains_key(&e.node()) {
                    continue;
                }
                // Children via the *stored* node (regular edge), so the
                // canonical no-complemented-hi rule survives the export.
                let lo = self.low(e);
                let hi = self.high(e);
                if expanded {
                    // DAG nodes carry *levels* (structural order), not
                    // semantic variables: the checkpoint header records
                    // the level→variable map separately.
                    let var = self.level(e);
                    let to_ref = |c: Bdd| -> DagRef {
                        if c.is_const() {
                            if c.is_true() {
                                DAG_TRUE
                            } else {
                                DAG_FALSE
                            }
                        } else {
                            node_ref(index[&c.node()], c.is_complemented())
                        }
                    };
                    let pos = nodes.len();
                    nodes.push(DagNode {
                        var,
                        lo: to_ref(lo),
                        hi: to_ref(hi),
                    });
                    index.insert(e.node(), pos);
                } else {
                    stack.push((e, true));
                    stack.push((lo.regular(), false));
                    stack.push((hi.regular(), false));
                }
            }
        }
        let roots = roots
            .iter()
            .map(|&r| {
                if r.is_const() {
                    if r.is_true() {
                        DAG_TRUE
                    } else {
                        DAG_FALSE
                    }
                } else {
                    node_ref(index[&r.node()], r.is_complemented())
                }
            })
            .collect();
        BddDag {
            num_vars: self.num_vars(),
            nodes,
            roots,
        }
    }

    /// Re-interns an exported DAG into this manager and returns one edge
    /// per exported root, in export order.
    ///
    /// Every node goes through the ordinary hash-consing path, so
    /// importing a function that already exists in this manager yields
    /// the *same* edge, and importing into a fresh manager rebuilds a
    /// canonical reduced graph regardless of how the bytes were produced.
    ///
    /// # Errors
    ///
    /// [`DagError::Malformed`] when the DAG violates a structural
    /// invariant (forward/self references, variable out of range, order
    /// violations between a node and its children, complemented `hi`
    /// edges, dangling root references) — malformed input is *rejected*,
    /// never panicked on. [`DagError::Bdd`] surfaces resource limits
    /// tripped while allocating.
    pub fn import_dag(&mut self, dag: &BddDag) -> Result<Vec<Bdd>, DagError> {
        if dag.num_vars > self.num_vars() {
            return Err(DagError::Malformed {
                position: 0,
                reason: "dag needs more variables than the manager has",
            });
        }
        let mut built: Vec<Bdd> = Vec::with_capacity(dag.nodes.len());
        // Resolves a DagRef against the nodes built so far; `limit` is
        // the number of valid earlier positions.
        let resolve = |r: DagRef, limit: usize, built: &[Bdd]| -> Option<Bdd> {
            if r == DAG_TRUE {
                return Some(Bdd::TRUE);
            }
            if r == DAG_FALSE {
                return Some(Bdd::FALSE);
            }
            let pos = (r >> 1) as usize - 1;
            if pos >= limit {
                return None;
            }
            let e = built[pos];
            Some(if r & 1 == 1 { e.complement() } else { e })
        };
        for (i, n) in dag.nodes.iter().enumerate() {
            if n.var >= dag.num_vars {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "node variable out of range",
                });
            }
            if n.hi & 1 == 1 {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "complemented hi edge breaks canonical form",
                });
            }
            let Some(lo) = resolve(n.lo, i, &built) else {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "lo reference points forward or out of range",
                });
            };
            let Some(hi) = resolve(n.hi, i, &built) else {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "hi reference points forward or out of range",
                });
            };
            for child in [lo, hi] {
                if !child.is_const() && self.level(child) <= n.var {
                    return Err(DagError::Malformed {
                        position: i,
                        reason: "child variable not below parent (order violation)",
                    });
                }
            }
            if lo == hi {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "redundant node (lo == hi) in a reduced dag",
                });
            }
            let e = self.mk(n.var, lo, hi)?;
            built.push(e);
        }
        let mut out = Vec::with_capacity(dag.roots.len());
        for (i, &r) in dag.roots.iter().enumerate() {
            let Some(e) = resolve(r, built.len(), &built) else {
                return Err(DagError::Malformed {
                    position: i,
                    reason: "root reference out of range",
                });
            };
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    fn sample(m: &mut BddManager) -> (Bdd, Bdd) {
        let (a, b, c) = (m.var(Var(0)), m.var(Var(1)), m.var(Var(2)));
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let g = m.xor(a, c).unwrap();
        (f, g)
    }

    #[test]
    fn export_import_round_trips_into_fresh_manager() {
        let mut m = BddManager::new(3);
        let (f, g) = sample(&mut m);
        let nf = m.not(f);
        let dag = m.export_dag(&[f, g, nf, Bdd::TRUE, Bdd::FALSE]);
        assert_eq!(dag.num_vars, 3);
        assert!(!dag.nodes.is_empty());

        let mut fresh = BddManager::new(3);
        let roots = fresh.import_dag(&dag).unwrap();
        assert_eq!(roots.len(), 5);
        assert_eq!(fresh.sat_count(roots[0], 3), m.sat_count(f, 3));
        assert_eq!(fresh.sat_count(roots[1], 3), m.sat_count(g, 3));
        // ¬f imports as the complement of f's import (shared subgraph).
        assert_eq!(roots[2], fresh.not(roots[0]));
        assert!(roots[3].is_true());
        assert!(roots[4].is_false());
        fresh.check_invariants().unwrap();
    }

    #[test]
    fn import_into_same_manager_is_identity() {
        let mut m = BddManager::new(3);
        let (f, g) = sample(&mut m);
        let dag = m.export_dag(&[f, g]);
        let roots = m.import_dag(&dag).unwrap();
        assert_eq!(roots, vec![f, g], "hash-consing maps back to the originals");
    }

    #[test]
    fn shared_subgraphs_export_once() {
        let mut m = BddManager::new(4);
        let (f, _) = sample(&mut m);
        let nf = m.not(f);
        let one = m.export_dag(&[f]);
        let both = m.export_dag(&[f, nf]);
        assert_eq!(
            one.nodes.len(),
            both.nodes.len(),
            "f and ¬f share every node"
        );
    }

    #[test]
    fn rejects_forward_and_out_of_range_references() {
        let mut m = BddManager::new(2);
        // Self/forward reference.
        let dag = BddDag {
            num_vars: 2,
            nodes: vec![DagNode {
                var: 0,
                lo: node_ref(0, false),
                hi: DAG_TRUE,
            }],
            roots: vec![node_ref(0, false)],
        };
        assert!(matches!(
            m.import_dag(&dag),
            Err(DagError::Malformed { position: 0, .. })
        ));
        // Dangling root.
        let dag = BddDag {
            num_vars: 2,
            nodes: vec![],
            roots: vec![node_ref(5, false)],
        };
        assert!(matches!(
            m.import_dag(&dag),
            Err(DagError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_order_violations_and_bad_vars() {
        let mut m = BddManager::new(2);
        let bad_var = BddDag {
            num_vars: 2,
            nodes: vec![DagNode {
                var: 7,
                lo: DAG_FALSE,
                hi: DAG_TRUE,
            }],
            roots: vec![node_ref(0, false)],
        };
        assert!(matches!(
            m.import_dag(&bad_var),
            Err(DagError::Malformed { .. })
        ));
        // Parent below child in the order.
        let inverted = BddDag {
            num_vars: 2,
            nodes: vec![
                DagNode {
                    var: 0,
                    lo: DAG_FALSE,
                    hi: DAG_TRUE,
                },
                DagNode {
                    var: 1,
                    lo: node_ref(0, false),
                    hi: DAG_TRUE,
                },
            ],
            roots: vec![node_ref(1, false)],
        };
        assert!(matches!(
            m.import_dag(&inverted),
            Err(DagError::Malformed { position: 1, .. })
        ));
        // Too many variables for the manager.
        let wide = BddDag {
            num_vars: 9,
            nodes: vec![],
            roots: vec![],
        };
        assert!(matches!(
            m.import_dag(&wide),
            Err(DagError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_complemented_hi_and_redundant_nodes() {
        let mut m = BddManager::new(2);
        let comp_hi = BddDag {
            num_vars: 2,
            nodes: vec![DagNode {
                var: 0,
                lo: DAG_TRUE,
                hi: DAG_FALSE, // DAG_FALSE = complemented terminal edge
            }],
            roots: vec![node_ref(0, false)],
        };
        assert!(matches!(
            m.import_dag(&comp_hi),
            Err(DagError::Malformed { .. })
        ));
        let redundant = BddDag {
            num_vars: 2,
            nodes: vec![DagNode {
                var: 0,
                lo: DAG_TRUE,
                hi: DAG_TRUE,
            }],
            roots: vec![node_ref(0, false)],
        };
        assert!(matches!(
            m.import_dag(&redundant),
            Err(DagError::Malformed { .. })
        ));
    }

    #[test]
    fn import_respects_node_limits_as_resource_errors() {
        let mut m = BddManager::new(8);
        // Build a biggish function, export, then import under a ceiling.
        let vars: Vec<Bdd> = (0..8).map(|i| m.var(Var(i))).collect();
        let mut f = Bdd::FALSE;
        for chunk in vars.chunks(2) {
            let p = m.and(chunk[0], chunk[1]).unwrap();
            f = m.or(f, p).unwrap();
        }
        let dag = m.export_dag(&[f]);
        let mut tiny = BddManager::new(8);
        tiny.set_node_limit(2);
        match tiny.import_dag(&dag) {
            Err(DagError::Bdd(BddError::NodeLimit { .. })) => {}
            other => panic!("expected NodeLimit, got {other:?}"),
        }
    }
}
