//! Error type for fallible BDD operations.

use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::BddManager`] operations.
///
/// The first two variants exist to reproduce the resource-exhaustion
/// outcomes (`M.O.` and `T.O.`) of the paper's Table 2: a manager can be
/// configured with a live-node ceiling and a wall-clock deadline, and any
/// operation that would exceed them aborts with the corresponding error
/// instead of thrashing.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The configured node limit was exceeded ("memory out").
    NodeLimit {
        /// The configured ceiling on allocated (live) nodes.
        limit: usize,
    },
    /// The configured deadline passed during an operation ("time out").
    Deadline,
    /// A [`crate::Var`] outside the manager's variable range was used.
    VarOutOfRange {
        /// The offending variable level.
        var: u32,
        /// Number of variables the manager was created with.
        num_vars: u32,
    },
    /// The 31-bit node index space was exhausted (one bit of every edge
    /// word is the complement flag).
    Capacity,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} nodes exceeded")
            }
            BddError::Deadline => write!(f, "bdd operation deadline exceeded"),
            BddError::VarOutOfRange { var, num_vars } => {
                write!(
                    f,
                    "variable v{var} out of range (manager has {num_vars} variables)"
                )
            }
            BddError::Capacity => write!(f, "bdd node index space exhausted"),
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BddError::NodeLimit { limit: 10 }.to_string(),
            "bdd node limit of 10 nodes exceeded"
        );
        assert_eq!(
            BddError::Deadline.to_string(),
            "bdd operation deadline exceeded"
        );
        assert_eq!(
            BddError::VarOutOfRange {
                var: 9,
                num_vars: 4
            }
            .to_string(),
            "variable v9 out of range (manager has 4 variables)"
        );
        assert_eq!(
            BddError::Capacity.to_string(),
            "bdd node index space exhausted"
        );
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BddError>();
    }
}
