//! Quantification: `∃`, `∀` and the relational product (and-exists).
//!
//! Variable sets are passed as *positive cubes* — conjunctions of the
//! variables to quantify — the conventional CUDD interface. Cubes compose
//! naturally with the recursion (skip cube variables above the operand's
//! top) and give the computed cache a ready-made key. Under complement
//! edges, `∀` needs no cache or recursion of its own: it is
//! `¬∃ cube. ¬f` with both negations free.

use crate::manager::BddManager;
use crate::node::{Bdd, Var};
use crate::{BddError, Result};

impl BddManager {
    /// Builds the positive cube `⋀ vars` used to name a quantification set.
    ///
    /// Duplicate variables are fine (idempotent conjunction).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion or if a variable is out of range.
    pub fn cube_from_vars(&mut self, vars: &[Var]) -> Result<Bdd> {
        // Resolve variables to their *current* levels first: the cube's
        // node chain must be sorted by the active order, which a dynamic
        // reorder may have permuted away from variable numbering.
        let mut levels = Vec::with_capacity(vars.len());
        for &v in vars {
            if v.0 >= self.num_vars() {
                return Err(BddError::VarOutOfRange {
                    var: v.0,
                    num_vars: self.num_vars(),
                });
            }
            levels.push(self.var_to_level(v));
        }
        levels.sort_unstable();
        levels.dedup();
        self.recover(&[], |m| {
            // Build bottom-up so each mk respects the order invariant.
            let mut cube = Bdd::TRUE;
            for &lvl in levels.iter().rev() {
                cube = m.mk(lvl, Bdd::FALSE, cube)?;
            }
            Ok(cube)
        })
    }

    /// The variables of a positive cube, top to bottom.
    ///
    /// # Panics
    ///
    /// Panics if `cube` is not a positive cube (some low edge not ⊥).
    pub fn cube_vars(&self, cube: Bdd) -> Vec<Var> {
        let mut vars = Vec::new();
        let mut c = cube;
        while !c.is_const() {
            assert!(self.low(c).is_false(), "not a positive cube");
            vars.push(self.top_var(c));
            c = self.high(c);
        }
        assert!(c.is_true(), "not a positive cube");
        vars
    }

    /// Existential quantification `∃ cube. f` (set smoothing).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn exists(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd> {
        self.recover(&[f, cube], |m| m.exists_rec(f, cube))
    }

    /// The memoized smoothing recursion behind [`BddManager::exists`].
    fn exists_rec(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd> {
        if f.is_const() || cube.is_true() {
            return Ok(f);
        }
        // Drop cube variables above f's top.
        let mut cube = cube;
        while !cube.is_const() && self.level(cube) < self.level(f) {
            cube = self.high(cube);
        }
        if cube.is_true() {
            return Ok(f);
        }
        let key = (f.0, cube.0, 0);
        if let Some(r) = self.caches.exists.get(key) {
            return Ok(r);
        }
        let lvl = self.level(f);
        let (f0, f1) = self.cofactors_at(f, lvl);
        let r = if self.level(cube) == lvl {
            let rest = self.high(cube);
            let e0 = self.exists_rec(f0, rest)?;
            if e0.is_true() {
                e0
            } else {
                let e1 = self.exists_rec(f1, rest)?;
                self.or(e0, e1)?
            }
        } else {
            let e0 = self.exists_rec(f0, cube)?;
            let e1 = self.exists_rec(f1, cube)?;
            self.mk(lvl, e0, e1)?
        };
        let limit = self.caches.limit;
        self.caches.exists.put(key, r, limit);
        Ok(r)
    }

    /// Universal quantification `∀ cube. f` (set consensus), computed as
    /// the complement-edge dual `¬∃ cube. ¬f` — it shares the `exists`
    /// cache and costs two free bit flips on top of the smoothing.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn forall(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd> {
        let nf = self.not(f);
        let e = self.exists(nf, cube)?;
        Ok(self.not(e))
    }

    /// Relational product `∃ cube. (f ∧ g)` without building `f ∧ g`.
    ///
    /// This is the workhorse of characteristic-function image computation
    /// (the partitioned-transition-relation engines in `bfvr-reach`).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Result<Bdd> {
        self.recover(&[f, g, cube], |m| m.and_exists_rec(f, g, cube))
    }

    /// The memoized relational-product recursion behind
    /// [`BddManager::and_exists`].
    fn and_exists_rec(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Result<Bdd> {
        if f.is_false() || g.is_false() || f == g.complement() {
            return Ok(Bdd::FALSE);
        }
        if f.is_true() && g.is_true() {
            return Ok(Bdd::TRUE);
        }
        if f.is_true() {
            return self.exists_rec(g, cube);
        }
        if g.is_true() || f == g {
            return self.exists_rec(f, cube);
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        let top = self.level(f).min(self.level(g));
        let mut cube = cube;
        while !cube.is_const() && self.level(cube) < top {
            cube = self.high(cube);
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        // Normalize operand order for cache symmetry.
        let (f, g) = if f.index() <= g.index() {
            (f, g)
        } else {
            (g, f)
        };
        let key = (f.0, g.0, cube.0);
        if let Some(r) = self.caches.and_exists.get(key) {
            return Ok(r);
        }
        let lvl = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors_at(f, lvl);
        let (g0, g1) = self.cofactors_at(g, lvl);
        let r = if self.level(cube) == lvl {
            let rest = self.high(cube);
            let r0 = self.and_exists_rec(f0, g0, rest)?;
            if r0.is_true() {
                r0
            } else {
                let r1 = self.and_exists_rec(f1, g1, rest)?;
                self.or(r0, r1)?
            }
        } else {
            let r0 = self.and_exists_rec(f0, g0, cube)?;
            let r1 = self.and_exists_rec(f1, g1, cube)?;
            self.mk(lvl, r0, r1)?
        };
        let limit = self.caches.limit;
        self.caches.and_exists.put(key, r, limit);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BddManager, Bdd, Bdd, Bdd, Bdd) {
        let m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let d = m.var(Var(3));
        (m, a, b, c, d)
    }

    #[test]
    fn cube_roundtrip() {
        let (mut m, ..) = setup();
        let cube = m.cube_from_vars(&[Var(2), Var(0), Var(2)]).unwrap();
        assert_eq!(m.cube_vars(cube), vec![Var(0), Var(2)]);
        assert!(m.cube_from_vars(&[]).unwrap().is_true());
    }

    #[test]
    fn cube_out_of_range() {
        let (mut m, ..) = setup();
        let err = m.cube_from_vars(&[Var(9)]).unwrap_err();
        assert_eq!(
            err,
            BddError::VarOutOfRange {
                var: 9,
                num_vars: 4
            }
        );
        // The failure leaves the manager structurally sound and usable.
        m.check_invariants().unwrap();
        let ok = m.cube_from_vars(&[Var(1), Var(3)]).unwrap();
        assert_eq!(m.cube_vars(ok), vec![Var(1), Var(3)]);
    }

    #[test]
    fn exists_removes_dependence() {
        let (mut m, a, b, _, _) = setup();
        let f = m.and(a, b).unwrap();
        let cube = m.cube_from_vars(&[Var(0)]).unwrap();
        let e = m.exists(f, cube).unwrap();
        assert_eq!(e, b);
        let all = m.cube_from_vars(&[Var(0), Var(1)]).unwrap();
        assert!(m.exists(f, all).unwrap().is_true());
    }

    #[test]
    fn forall_is_consensus() {
        let (mut m, a, b, _, _) = setup();
        let f = m.or(a, b).unwrap();
        let cube = m.cube_from_vars(&[Var(0)]).unwrap();
        // ∀a. a∨b = b
        assert_eq!(m.forall(f, cube).unwrap(), b);
        let g = m.and(a, b).unwrap();
        // ∀a. a∧b = 0
        assert!(m.forall(g, cube).unwrap().is_false());
    }

    #[test]
    fn duality_of_quantifiers() {
        let (mut m, a, b, c, _) = setup();
        let ab = m.xor(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cube = m.cube_from_vars(&[Var(1), Var(2)]).unwrap();
        // ∀x. f  ==  ¬∃x. ¬f
        let lhs = m.forall(f, cube).unwrap();
        let nf = m.not(f);
        let e = m.exists(nf, cube).unwrap();
        let rhs = m.not(e);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn and_exists_matches_two_step() {
        let (mut m, a, b, c, d) = setup();
        let f = m.xor(a, b).unwrap();
        let gcd = m.and(c, d).unwrap();
        let g = m.or(b, gcd).unwrap();
        let cube = m.cube_from_vars(&[Var(1), Var(3)]).unwrap();
        let direct = m.and_exists(f, g, cube).unwrap();
        let fg = m.and(f, g).unwrap();
        let two_step = m.exists(fg, cube).unwrap();
        assert_eq!(direct, two_step);
    }

    #[test]
    fn and_exists_terminal_cases() {
        let (mut m, a, b, _, _) = setup();
        let cube = m.cube_from_vars(&[Var(0)]).unwrap();
        assert!(m.and_exists(Bdd::FALSE, a, cube).unwrap().is_false());
        assert!(m.and_exists(a, Bdd::TRUE, cube).unwrap().is_true());
        let na = m.not(a);
        assert!(
            m.and_exists(a, na, cube).unwrap().is_false(),
            "f ∧ ¬f is empty"
        );
        let e = m.and_exists(a, b, Bdd::TRUE).unwrap();
        let ab = m.and(a, b).unwrap();
        assert_eq!(e, ab);
    }

    #[test]
    fn quantifying_absent_variable_is_identity() {
        let (mut m, a, b, _, _) = setup();
        let f = m.and(a, b).unwrap();
        let cube = m.cube_from_vars(&[Var(3)]).unwrap();
        assert_eq!(m.exists(f, cube).unwrap(), f);
        assert_eq!(m.forall(f, cube).unwrap(), f);
    }

    #[test]
    fn exists_distributes_over_or() {
        let (mut m, a, b, c, _) = setup();
        let f = m.and(a, b).unwrap();
        let g = m.and(a, c).unwrap();
        let cube = m.cube_from_vars(&[Var(0)]).unwrap();
        let fog = m.or(f, g).unwrap();
        let lhs = m.exists(fog, cube).unwrap();
        let ef = m.exists(f, cube).unwrap();
        let eg = m.exists(g, cube).unwrap();
        let rhs = m.or(ef, eg).unwrap();
        assert_eq!(lhs, rhs);
    }
}
