//! Cross-manager transfer: copy a function into another manager, under a
//! variable mapping — the `Cudd_bddTransfer` facility, used here for
//! variable-order studies (the same χ evaluated under different orders
//! without re-running a traversal).

use crate::hash::FxHashMap;
use crate::manager::BddManager;
use crate::node::{Bdd, Var};
use crate::Result;

impl BddManager {
    /// Copies `f` (owned by `src`) into `self`, renaming each source
    /// variable `v` to `var_map[v.level()]`.
    ///
    /// The destination order may be arbitrary relative to the source: the
    /// function is rebuilt bottom-up through `ite`, not relabeled.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion in the destination manager.
    ///
    /// # Panics
    ///
    /// Panics if `var_map` does not cover the source manager's variables
    /// or maps outside this manager's range.
    pub fn transfer_from(&mut self, src: &BddManager, f: Bdd, var_map: &[Var]) -> Result<Bdd> {
        assert!(
            var_map.len() >= src.num_vars() as usize,
            "var_map must cover all {} source variables",
            src.num_vars()
        );
        for &v in var_map.iter().take(src.num_vars() as usize) {
            assert!(v.0 < self.num_vars(), "mapped variable {v} out of range");
        }
        let mut memo: FxHashMap<u32, Bdd> = FxHashMap::default();
        self.transfer_rec(src, f, var_map, &mut memo)
    }

    fn transfer_rec(
        &mut self,
        src: &BddManager,
        f: Bdd,
        var_map: &[Var],
        memo: &mut FxHashMap<u32, Bdd>,
    ) -> Result<Bdd> {
        if f.is_const() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f.index()) {
            return Ok(r);
        }
        let v = var_map[src.level(f) as usize];
        let e = self.transfer_rec(src, src.low(f), var_map, memo)?;
        let t = self.transfer_rec(src, src.high(f), var_map, memo)?;
        let vv = self.var(v);
        let r = self.ite(vv, t, e)?;
        memo.insert(f.index(), r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transfer_preserves_semantics() {
        let mut src = BddManager::new(3);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let c = src.var(Var(2));
        let ab = src.and(a, b).unwrap();
        let f = src.xor(ab, c).unwrap();
        let mut dst = BddManager::new(3);
        let map = [Var(0), Var(1), Var(2)];
        let g = dst.transfer_from(&src, f, &map).unwrap();
        for bits in 0u8..8 {
            let asg: Vec<bool> = (0..3).map(|i| bits >> (2 - i) & 1 == 1).collect();
            assert_eq!(dst.eval(g, &asg), src.eval(f, &asg));
        }
    }

    #[test]
    fn transfer_under_reversed_order() {
        let mut src = BddManager::new(4);
        // f = (v0 ↔ v1) ∧ (v2 ↔ v3)
        let e1 = {
            let a = src.var(Var(0));
            let b = src.var(Var(1));
            src.xnor(a, b).unwrap()
        };
        let e2 = {
            let a = src.var(Var(2));
            let b = src.var(Var(3));
            src.xnor(a, b).unwrap()
        };
        let f = src.and(e1, e2).unwrap();
        // Destination reverses the variable order.
        let mut dst = BddManager::new(4);
        let map = [Var(3), Var(2), Var(1), Var(0)];
        let g = dst.transfer_from(&src, f, &map).unwrap();
        for bits in 0u8..16 {
            let asg: Vec<bool> = (0..4).map(|i| bits >> (3 - i) & 1 == 1).collect();
            let renamed: Vec<bool> = (0..4).map(|i| asg[3 - i]).collect();
            assert_eq!(dst.eval(g, &renamed), src.eval(f, &asg));
        }
        // Same function shape under the symmetric rename: equal size here.
        assert_eq!(dst.size(g), src.size(f));
    }

    #[test]
    fn transfer_into_larger_manager() {
        let mut src = BddManager::new(2);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let f = src.or(a, b).unwrap();
        let mut dst = BddManager::new(6);
        // Scatter the two variables into the bigger order.
        let g = dst.transfer_from(&src, f, &[Var(4), Var(1)]).unwrap();
        let sup = dst.support(g);
        assert!(sup.contains(Var(4)) && sup.contains(Var(1)));
        assert_eq!(dst.sat_count(g, 6), 3.0 * 16.0);
    }

    #[test]
    fn transfer_order_effect_is_visible() {
        // The pairing function from the paper's §3 example: interleaved
        // order keeps it linear, split order blows it up — measurable via
        // transfer alone.
        let p = 8u32;
        let mut src = BddManager::new(2 * p);
        // Interleaved: a_i at 2i, b_i at 2i+1.
        let mut f = Bdd::TRUE;
        for i in 0..p {
            let a = src.var(Var(2 * i));
            let b = src.var(Var(2 * i + 1));
            let eq = src.xnor(a, b).unwrap();
            f = src.and(f, eq).unwrap();
        }
        let interleaved_size = src.size(f);
        // Transfer to a manager where all a's precede all b's.
        let mut dst = BddManager::new(2 * p);
        let mut map = vec![Var(0); 2 * p as usize];
        for i in 0..p {
            map[(2 * i) as usize] = Var(i); // a_i
            map[(2 * i + 1) as usize] = Var(p + i); // b_i
        }
        let g = dst.transfer_from(&src, f, &map).unwrap();
        let split_size = dst.size(g);
        assert!(
            split_size > 10 * interleaved_size,
            "expected exponential blow-up: {interleaved_size} vs {split_size}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transfer_validates_target_range() {
        let src = BddManager::new(2);
        let a = src.var(Var(0));
        let mut dst = BddManager::new(1);
        let _ = dst.transfer_from(&src, a, &[Var(5), Var(0)]);
    }
}
