//! Logical operations through a single memoized ITE (if-then-else) core.
//!
//! Every binary connective is expressed as an `ite` instance, the classic
//! Brace–Rudell–Bryant construction (negation itself is free under
//! complement edges — see [`BddManager::not`]). One recursive core plus
//! one cache keeps the implementation small and uniformly correct; the
//! standard terminal simplifications and the two complement-edge
//! canonicalizations — regular `f` via `ite(¬f,g,h) = ite(f,h,g)` and
//! regular `g` via `ite(f,¬g,¬h) = ¬ite(f,g,h)` — quadruple the cache's
//! reach by folding equivalent calls onto one key.

use crate::manager::BddManager;
use crate::node::Bdd;
use crate::Result;

impl BddManager {
    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion ([`crate::BddError`]) — after a
    /// reclaim-before-fail pass if the node limit was the cause.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd> {
        self.recover(&[f, g, h], |m| m.ite_rec(f, g, h))
    }

    /// The memoized ITE recursion behind every connective.
    fn ite_rec(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd> {
        // Terminal cases.
        if f.is_true() || g == h {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        // Operand rewrites: a branch equal to (the complement of) the test
        // collapses to a constant.
        let mut g = g;
        let mut h = h;
        if g == f {
            g = Bdd::TRUE; // ite(f, f, h) = f ∨ h
        } else if g == f.complement() {
            g = Bdd::FALSE; // ite(f, ¬f, h) = ¬f ∧ h
        }
        if h == f {
            h = Bdd::FALSE; // ite(f, g, f) = f ∧ g
        } else if h == f.complement() {
            h = Bdd::TRUE; // ite(f, g, ¬f) = ¬f ∨ g
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return Ok(f.complement());
        }
        // Canonicalize to a regular test: ite(¬f, g, h) = ite(f, h, g).
        let mut f = f;
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // Canonicalize to a regular then-branch by complementing the
        // output: ite(f, ¬g, h) = ¬ite(f, g, ¬h).
        let neg = g.is_complemented();
        if neg {
            g = g.complement();
            h = h.complement();
        }
        let key = (f.0, g.0, h.0);
        if let Some(r) = self.caches.ite.get(key) {
            return Ok(if neg { r.complement() } else { r });
        }
        // One arena read per operand: level and children come from the
        // same fetched node, with the children discarded for operands
        // whose top variable sits below the split level.
        let (fv, fl, fh) = self.expand(f);
        let (gv, gl, gh) = self.expand(g);
        let (hv, hl, hh) = self.expand(h);
        let lvl = fv.min(gv).min(hv);
        let (f0, f1) = if fv == lvl { (fl, fh) } else { (f, f) };
        let (g0, g1) = if gv == lvl { (gl, gh) } else { (g, g) };
        let (h0, h1) = if hv == lvl { (hl, hh) } else { (h, h) };
        let t = self.ite_rec(f1, g1, h1)?;
        let e = self.ite_rec(f0, g0, h0)?;
        let r = self.mk(lvl, e, t)?;
        let limit = self.caches.limit;
        self.caches.ite.put(key, r, limit);
        Ok(if neg { r.complement() } else { r })
    }

    /// Conjunction `f ∧ g`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    #[inline]
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction `f ∨ g`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    #[inline]
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or `f ⊕ g`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence `f ↔ g` (xnor).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    #[inline]
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Difference `f ∧ ¬g`.
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        let ng = self.not(g);
        self.ite(f, ng, Bdd::FALSE)
    }

    /// N-ary conjunction of all operands (⊤ for an empty slice).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn and_all(&mut self, fs: &[Bdd]) -> Result<Bdd> {
        let mut acc = Bdd::TRUE;
        for &f in fs {
            acc = self.and(acc, f)?;
            if acc.is_false() {
                break;
            }
        }
        Ok(acc)
    }

    /// N-ary disjunction of all operands (⊥ for an empty slice).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn or_all(&mut self, fs: &[Bdd]) -> Result<Bdd> {
        let mut acc = Bdd::FALSE;
        for &f in fs {
            acc = self.or(acc, f)?;
            if acc.is_true() {
                break;
            }
        }
        Ok(acc)
    }

    /// Whether `f → g` holds for all assignments (set inclusion `f ⊆ g`).
    ///
    /// # Errors
    ///
    /// Fails on resource-limit exhaustion.
    pub fn leq(&mut self, f: Bdd, g: Bdd) -> Result<bool> {
        Ok(self.diff(f, g)?.is_false())
    }

    /// Decides whether `ite(f, g, h)` is a constant *without allocating
    /// any nodes*: returns `Some(true/false)` when it is, `None` when it
    /// depends on at least one variable.
    ///
    /// The classic `bdd_ite_constant` short-circuit used to answer
    /// implication/emptiness queries cheaply inside larger algorithms.
    pub fn ite_constant(&self, f: Bdd, g: Bdd, h: Bdd) -> Option<bool> {
        fn as_const(b: Bdd) -> Option<bool> {
            if b.is_true() {
                Some(true)
            } else if b.is_false() {
                Some(false)
            } else {
                None
            }
        }
        // Terminal resolutions, mirroring `ite`.
        if f.is_true() || g == h {
            return as_const(g);
        }
        if f.is_false() {
            return as_const(h);
        }
        let mut g = g;
        let mut h = h;
        if g == f {
            g = Bdd::TRUE;
        } else if g == f.complement() {
            g = Bdd::FALSE;
        }
        if h == f {
            h = Bdd::FALSE;
        } else if h == f.complement() {
            h = Bdd::TRUE;
        }
        if g == h {
            return as_const(g);
        }
        if (g.is_true() && h.is_false()) || (g.is_false() && h.is_true()) {
            return None; // result is ±f, non-constant here
        }
        let lvl = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors_at(f, lvl);
        let (g0, g1) = self.cofactors_at(g, lvl);
        let (h0, h1) = self.cofactors_at(h, lvl);
        let t = self.ite_constant(f1, g1, h1)?;
        let e = self.ite_constant(f0, g0, h0)?;
        if t == e {
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    fn mgr() -> (BddManager, Bdd, Bdd, Bdd) {
        let m = BddManager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        (m, a, b, c)
    }

    #[test]
    fn truth_table_and() {
        let (mut m, a, b, _) = mgr();
        let f = m.and(a, b).unwrap();
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(!m.eval(f, &[false, true, false]));
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = mgr();
        let ab = m.and(a, b).unwrap();
        let lhs = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation_is_identity() {
        let (mut m, a, b, c) = mgr();
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap();
        assert_eq!(m.not(m.not(f)), f);
    }

    #[test]
    fn not_is_constant_time_and_allocation_free() {
        let (mut m, a, b, c) = mgr();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let before = m.stats().mk_calls;
        let nf = m.not(f);
        assert_eq!(m.stats().mk_calls, before, "not must not allocate");
        assert_ne!(nf, f);
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(nf, &[true, true, false]));
    }

    #[test]
    fn complement_shares_structure() {
        let (mut m, a, b, c) = mgr();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let nf = m.not(f);
        assert_eq!(
            m.live_from(&[f, nf]),
            m.live_from(&[f]),
            "f and ¬f must share one subgraph"
        );
    }

    #[test]
    fn xor_xnor_complementary() {
        let (mut m, a, b, _) = mgr();
        let x = m.xor(a, b).unwrap();
        let xn = m.xnor(a, b).unwrap();
        assert_eq!(xn, m.not(x));
    }

    #[test]
    fn ite_terminal_cases() {
        let (mut m, a, b, c) = mgr();
        assert_eq!(m.ite(Bdd::TRUE, b, c).unwrap(), b);
        assert_eq!(m.ite(Bdd::FALSE, b, c).unwrap(), c);
        assert_eq!(m.ite(a, b, b).unwrap(), b);
        assert_eq!(m.ite(a, Bdd::TRUE, Bdd::FALSE).unwrap(), a);
        assert_eq!(m.ite(a, Bdd::FALSE, Bdd::TRUE).unwrap(), m.not(a));
        let a_or_c = m.or(a, c).unwrap();
        assert_eq!(m.ite(a, a, c).unwrap(), a_or_c);
        let a_and_b = m.and(a, b).unwrap();
        assert_eq!(m.ite(a, b, a).unwrap(), a_and_b);
        // Complement-operand collapses.
        let na = m.not(a);
        let na_and_c = m.and(na, c).unwrap();
        assert_eq!(m.ite(a, na, c).unwrap(), na_and_c);
        let na_or_b = m.or(na, b).unwrap();
        assert_eq!(m.ite(a, b, na).unwrap(), na_or_b);
    }

    #[test]
    fn ite_duality_under_complement() {
        let (mut m, a, b, c) = mgr();
        let ab = m.and(a, b).unwrap();
        let bc = m.or(b, c).unwrap();
        for &f in &[a, ab, m.not(ab)] {
            for &g in &[b, bc, Bdd::TRUE] {
                for &h in &[c, m.not(bc), Bdd::FALSE] {
                    let lhs = m.ite(f, g, h).unwrap();
                    let nf = m.not(f);
                    let rhs = m.ite(nf, h, g).unwrap();
                    assert_eq!(lhs, rhs, "ite(f,g,h) == ite(¬f,h,g)");
                    let ng = m.not(g);
                    let nh = m.not(h);
                    let dual = m.ite(f, ng, nh).unwrap();
                    assert_eq!(dual, m.not(lhs), "ite(f,¬g,¬h) == ¬ite(f,g,h)");
                }
            }
        }
    }

    #[test]
    fn implication_and_leq() {
        let (mut m, a, b, _) = mgr();
        let ab = m.and(a, b).unwrap();
        assert!(m.leq(ab, a).unwrap());
        assert!(!m.leq(a, ab).unwrap());
        let imp = m.implies(ab, a).unwrap();
        assert!(imp.is_true());
    }

    #[test]
    fn nary_ops() {
        let (mut m, a, b, c) = mgr();
        let all = m.and_all(&[a, b, c]).unwrap();
        assert_eq!(m.sat_count(all, 3), 1.0);
        let any = m.or_all(&[a, b, c]).unwrap();
        assert_eq!(m.sat_count(any, 3), 7.0);
        assert!(m.and_all(&[]).unwrap().is_true());
        assert!(m.or_all(&[]).unwrap().is_false());
    }

    #[test]
    fn diff_is_relative_complement() {
        let (mut m, a, b, _) = mgr();
        let d = m.diff(a, b).unwrap();
        assert!(m.eval(d, &[true, false, false]));
        assert!(!m.eval(d, &[true, true, false]));
        assert!(!m.eval(d, &[false, false, false]));
    }

    #[test]
    fn results_are_canonical_across_formulations() {
        let (mut m, a, b, c) = mgr();
        // (a→c) ∧ (b→c)  ==  (a∨b)→c
        let ac = m.implies(a, c).unwrap();
        let bc = m.implies(b, c).unwrap();
        let lhs = m.and(ac, bc).unwrap();
        let aob = m.or(a, b).unwrap();
        let rhs = m.implies(aob, c).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_constant_detects_constants_without_allocating() {
        let (mut m, a, b, _) = mgr();
        let ab = m.and(a, b).unwrap();
        let before = m.stats().mk_calls;
        // a∧b → a is a tautology: ite(ab, a, ⊤)… expressed as implication.
        assert_eq!(m.ite_constant(ab, a, Bdd::TRUE), Some(true));
        assert_eq!(m.ite_constant(ab, Bdd::FALSE, Bdd::FALSE), Some(false));
        assert_eq!(m.ite_constant(a, b, Bdd::FALSE), None);
        assert_eq!(m.ite_constant(Bdd::TRUE, a, Bdd::FALSE), None);
        assert_eq!(m.stats().mk_calls, before, "ite_constant allocated nodes");
        // Agreement with the allocating ite on a sample of triples,
        // including complemented operands.
        let nab = m.not(ab);
        let na = m.not(a);
        let xs = [Bdd::TRUE, Bdd::FALSE, a, na, b, ab, nab];
        for &f in &xs {
            for &g in &xs {
                for &h in &xs {
                    let full = m.ite(f, g, h).unwrap();
                    let expect = if full.is_true() {
                        Some(true)
                    } else if full.is_false() {
                        Some(false)
                    } else {
                        None
                    };
                    assert_eq!(m.ite_constant(f, g, h), expect, "{f:?} {g:?} {h:?}");
                }
            }
        }
    }

    #[test]
    fn cache_hits_accumulate() {
        let (mut m, a, b, c) = mgr();
        let ab = m.and(a, b).unwrap();
        let f1 = m.or(ab, c).unwrap();
        let before = m.stats().cache_hits;
        let ab2 = m.and(a, b).unwrap();
        let f2 = m.or(ab2, c).unwrap();
        assert_eq!(f1, f2);
        assert!(m.stats().cache_hits > before);
    }
}
