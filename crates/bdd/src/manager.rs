//! The BDD manager: composes the arena, unique-table and cache layers.
//!
//! The manager owns one [`Arena`] (node storage + free list), one
//! [`UniqueTable`] (hash consing, per-level subtables) and one set of
//! per-operation [`Caches`]. It enforces the two representation
//! invariants the layers themselves cannot see:
//!
//! * **Complement-edge canonical form** — a stored `hi` edge is never
//!   complemented. [`BddManager::mk`] rewrites `(v, lo, ¬n)` into the
//!   complement of `(v, ¬lo, n)`, so `f` and `¬f` always share one
//!   subgraph and negation is a bit flip.
//! * **Root discipline** — garbage collection marks from explicit roots,
//!   the per-variable literal nodes, and the refcounts held by live
//!   [`Func`] handles.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::arena::Arena;
use crate::cache::{CacheStats, Caches};
use crate::error::BddError;
use crate::func::{Func, RootTable};
use crate::hash::FxHashMap;
use crate::node::{Bdd, Node, Var};
use crate::unique::UniqueTable;
use crate::Result;

/// How often (in node allocations) the deadline is polled.
pub(crate) const DEADLINE_POLL_MASK: u64 = 0x1FFF;

/// Counters describing the current state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Nodes currently allocated (terminal + variables + interior).
    pub allocated_nodes: usize,
    /// High-water mark of `allocated_nodes` over the manager's lifetime.
    pub peak_nodes: usize,
    /// Total node creations (including unique-table hits).
    pub mk_calls: u64,
    /// Computed-cache lookups, summed over all operation caches.
    pub cache_lookups: u64,
    /// Computed-cache hits, summed over all operation caches.
    pub cache_hits: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Nodes reclaimed across all garbage collections.
    pub gc_reclaimed: u64,
}

/// Result of one garbage collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes reclaimed by this collection.
    pub collected: usize,
    /// Nodes still live after this collection.
    pub live: usize,
}

/// An ROBDD manager with a fixed variable order and complement edges.
///
/// All nodes live in one arena owned by the manager; [`Bdd`] handles are
/// complement-encoded edges into it. Allocating operations take
/// `&mut self`; negation ([`BddManager::not`]) and the negative literal
/// ([`BddManager::nvar`]) are `&self`, infallible and allocation-free.
/// See the [crate root](crate) for an overview and example.
///
/// The manager is single-threaded (`!Send`): [`Func`] handles share its
/// root table through an `Rc`.
///
/// # Resource limits
///
/// [`BddManager::set_node_limit`] and [`BddManager::set_deadline`] arm
/// ceilings that make any allocating operation fail with
/// [`BddError::NodeLimit`] / [`BddError::Deadline`]. This is how the
/// reachability engines reproduce the `M.O.`/`T.O.` entries of the paper's
/// Table 2 without thrashing the host.
#[derive(Debug)]
pub struct BddManager {
    arena: Arena,
    unique: UniqueTable,
    pub(crate) caches: Caches,
    num_vars: u32,
    /// Pre-built positive literal edge for each variable (stable, rooted).
    var_nodes: Vec<u32>,
    node_limit: usize,
    deadline: Option<Instant>,
    /// Refcounted roots held by live [`Func`] handles (node index → count).
    roots: RootTable,
    stats: ManagerStats,
}

impl BddManager {
    /// Creates a manager for functions over `num_vars` variables,
    /// `Var(0) .. Var(num_vars - 1)`, with `Var(0)` at the top of the
    /// (fixed) order.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds the 31-bit node index space.
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < (u32::MAX >> 1) - 1, "too many variables");
        let mut m = BddManager {
            arena: Arena::new(num_vars as usize + 1),
            unique: UniqueTable::new(num_vars),
            caches: Caches::new(),
            num_vars,
            var_nodes: Vec::with_capacity(num_vars as usize),
            node_limit: usize::MAX,
            deadline: None,
            roots: Rc::new(RefCell::new(FxHashMap::default())),
            stats: ManagerStats::default(),
        };
        for v in 0..num_vars {
            let lit = m
                .mk(v, Bdd::FALSE, Bdd::TRUE)
                .expect("variable nodes fit within fresh manager limits");
            m.var_nodes.push(lit.0);
        }
        m
    }

    /// Number of variables in the manager's order.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range; variables are
    /// fixed at construction, so this is a programming error.
    #[inline]
    pub fn var(&self, v: Var) -> Bdd {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
        Bdd(self.var_nodes[v.0 as usize])
    }

    /// The function of a single negative literal (`¬v`).
    ///
    /// Constant time and allocation-free: the complement edge to the
    /// positive literal's node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    #[inline]
    pub fn nvar(&self, v: Var) -> Bdd {
        self.var(v).complement()
    }

    /// Negation `¬f`. Constant time and allocation-free: flips the
    /// complement bit of the edge.
    #[inline]
    pub fn not(&self, f: Bdd) -> Bdd {
        f.complement()
    }

    /// An RAII handle pinning `f` (and everything it references) across
    /// garbage collections until the handle — and every clone of it — is
    /// dropped. This is the only root-pinning mechanism; see [`Func`].
    pub fn func(&self, f: Bdd) -> Func {
        Func::new(f, Rc::clone(&self.roots))
    }

    /// Arms a ceiling on allocated nodes; exceeded ⇒ [`BddError::NodeLimit`].
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Removes the node ceiling.
    pub fn clear_node_limit(&mut self) {
        self.node_limit = usize::MAX;
    }

    /// Arms a wall-clock deadline; passed ⇒ [`BddError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Fails with [`BddError::Deadline`] if the armed deadline has passed.
    ///
    /// Node allocation polls the deadline only every few thousand
    /// allocations, so short operations may run to completion past it;
    /// long-running drivers call this at their own iteration boundaries
    /// for prompt, allocation-independent aborts.
    pub fn check_deadline(&self) -> Result<()> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(BddError::Deadline),
            _ => Ok(()),
        }
    }

    /// Caps each operation cache (entries); a cache is cleared when full.
    pub fn set_cache_limit(&mut self, limit: usize) {
        self.caches.limit = limit.max(1);
    }

    /// Current counters (allocation, cache and GC statistics).
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.allocated_nodes = self.allocated();
        s.peak_nodes = self.arena.peak();
        let (lookups, hits) = self.caches.totals();
        s.cache_lookups = lookups;
        s.cache_hits = hits;
        s
    }

    /// Per-operation computed-cache counters (lookups, hits, residency).
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.caches.stats()
    }

    /// Nodes currently allocated (live from the manager's point of view).
    #[inline]
    pub fn allocated(&self) -> usize {
        self.arena.allocated()
    }

    /// High-water mark of allocated nodes.
    #[inline]
    pub fn peak_nodes(&self) -> usize {
        self.arena.peak()
    }

    /// Resets the peak-node high-water mark to the current allocation.
    pub fn reset_peak_nodes(&mut self) {
        self.arena.reset_peak();
    }

    // ----- node access -------------------------------------------------

    /// Level of the decision variable of `f` (`u32::MAX` for terminals).
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.arena.get(f.node()).var
    }

    /// Decision variable of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn top_var(&self, f: Bdd) -> Var {
        let v = self.level(f);
        assert!(v < self.num_vars, "top_var of a terminal");
        Var(v)
    }

    /// Low (else) child of a non-terminal node, with the parent edge's
    /// complement bit pushed into the result — i.e. the cofactor
    /// `f|top=0` of the *function* `f`, not of the stored node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "low of a terminal");
        Bdd(self.arena.get(f.node()).lo ^ (f.0 & 1))
    }

    /// High (then) child of a non-terminal node, complement-resolved the
    /// same way as [`BddManager::low`].
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "high of a terminal");
        Bdd(self.arena.get(f.node()).hi ^ (f.0 & 1))
    }

    /// Cofactors of `f` with respect to level `lvl`: `(f|lvl=0, f|lvl=1)`.
    ///
    /// `lvl` must be ≤ the level of `f`'s top variable (standard apply-step
    /// usage); if `f`'s top is below `lvl`, both cofactors are `f`. The
    /// parent's complement bit is resolved into both children.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, lvl: u32) -> (Bdd, Bdd) {
        let n = self.arena.get(f.node());
        if n.var == lvl {
            let c = f.0 & 1;
            (Bdd(n.lo ^ c), Bdd(n.hi ^ c))
        } else {
            (f, f)
        }
    }

    // ----- node creation ------------------------------------------------

    /// Finds or creates the function `ite(v, hi, lo)`, applying the
    /// reduction rule `lo == hi ⇒ lo` and the complement-edge canonical
    /// form (a stored `hi` edge is never complemented).
    ///
    /// # Errors
    ///
    /// Fails on node-limit, deadline or index-space exhaustion.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd> {
        debug_assert!(var < self.num_vars);
        debug_assert!(
            self.level(lo) > var && self.level(hi) > var,
            "order violation"
        );
        self.stats.mk_calls += 1;
        if lo == hi {
            return Ok(lo);
        }
        if hi.is_complemented() {
            // (v, lo, ¬n) ≡ ¬(v, ¬lo, n): store the regular-hi form.
            let r = self.mk_node(var, lo.complement(), hi.complement())?;
            Ok(r.complement())
        } else {
            self.mk_node(var, lo, hi)
        }
    }

    /// Hash-conses the node `(var, lo, hi)` with `hi` already regular.
    fn mk_node(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd> {
        debug_assert!(!hi.is_complemented());
        if let Some(idx) = self.unique.get(var, lo.0, hi.0) {
            return Ok(Bdd(idx << 1));
        }
        // Resource checks on the slow (allocating) path only.
        if self.allocated() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        if self.stats.mk_calls & DEADLINE_POLL_MASK == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Err(BddError::Deadline);
                }
            }
        }
        let idx = self.arena.alloc(Node {
            var,
            lo: lo.0,
            hi: hi.0,
        })?;
        self.unique.insert(var, lo.0, hi.0, idx);
        Ok(Bdd(idx << 1))
    }

    /// Clears all computed caches (memoized operation results).
    ///
    /// Purely a memory/performance knob; never affects results.
    pub fn clear_cache(&mut self) {
        self.caches.clear_all();
    }

    // ----- garbage collection -------------------------------------------

    /// Reclaims every node not reachable from `roots`, a live [`Func`]
    /// handle, or the per-variable literal nodes. Handles to live nodes
    /// remain valid; the computed caches are cleared.
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> GcStats {
        let mut mark = vec![false; self.arena.len()];
        mark[0] = true; // the terminal
        let mut stack: Vec<u32> = roots.iter().map(|b| b.node()).collect();
        stack.extend(self.roots.borrow().keys().copied());
        stack.extend(self.var_nodes.iter().map(|&e| e >> 1));
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.arena.get(i);
            if n.var < self.num_vars {
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
        let mut collected = 0;
        for i in 1..self.arena.len() as u32 {
            let n = self.arena.get(i);
            if !mark[i as usize] && n.var < self.num_vars {
                self.unique.remove(n.var, n.lo, n.hi);
                self.arena.free(i);
                collected += 1;
            }
        }
        self.caches.clear_all();
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += collected as u64;
        GcStats {
            collected,
            live: self.allocated(),
        }
    }

    /// Counts the nodes reachable from `roots` (shared live size) without
    /// collecting anything. The terminal is not counted, and — because
    /// counting is by node, not by edge — `f` and `¬f` contribute the same
    /// shared structure.
    pub fn live_from(&self, roots: &[Bdd]) -> usize {
        let mut mark = vec![false; self.arena.len()];
        let mut stack: Vec<u32> = roots.iter().map(|b| b.node()).collect();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.arena.get(i);
            if n.var < self.num_vars {
                count += 1;
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
        count
    }

    /// Checks whether the node slot is live (not freed); for debug tooling.
    #[cfg(test)]
    pub(crate) fn is_live(&self, f: Bdd) -> bool {
        self.arena.is_live_slot(f.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let m = BddManager::new(3);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.allocated(), 4); // 1 terminal + 3 literals
        let a = m.var(Var(0));
        assert_eq!(m.top_var(a), Var(0));
        assert_eq!(m.low(a), Bdd::FALSE);
        assert_eq!(m.high(a), Bdd::TRUE);
    }

    #[test]
    fn nvar_is_free_and_complement_resolved() {
        let m = BddManager::new(2);
        let a = m.var(Var(0));
        let na = m.nvar(Var(0));
        assert_eq!(m.allocated(), 3, "nvar allocates nothing");
        assert_eq!(na, m.not(a));
        assert_eq!(m.not(na), a);
        // Accessors push the complement bit into the children.
        assert_eq!(m.low(na), Bdd::TRUE);
        assert_eq!(m.high(na), Bdd::FALSE);
        assert_eq!(m.top_var(na), Var(0));
    }

    #[test]
    fn mk_is_hash_consed_and_reduced() {
        let mut m = BddManager::new(2);
        let n1 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        let n2 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        assert_eq!(n1, n2);
        let red = m.mk(1, Bdd::TRUE, Bdd::TRUE).unwrap();
        assert_eq!(red, Bdd::TRUE);
    }

    #[test]
    fn mk_canonicalizes_complemented_hi() {
        let mut m = BddManager::new(2);
        // (v0, ⊤, ⊥) is ¬v0: must resolve to the complement of the literal
        // node, not a second node.
        let before = m.allocated();
        let nv = m.mk(0, Bdd::TRUE, Bdd::FALSE).unwrap();
        assert_eq!(nv, m.nvar(Var(0)));
        assert_eq!(m.allocated(), before, "no new node for a complement");
        // General case: mk with complemented hi equals ¬mk(¬lo, ¬hi).
        let b = m.var(Var(1));
        let f = m.mk(0, b, b.complement()).unwrap();
        let g = m.mk(0, b.complement(), b).unwrap();
        assert_eq!(f, g.complement());
        assert_eq!(m.live_from(&[f]), m.live_from(&[g]));
    }

    #[test]
    fn node_limit_trips() {
        let mut m = BddManager::new(8);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_node_limit(m.allocated()); // no headroom
        let err = m.and(a, b).unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 9 });
        m.clear_node_limit();
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn deadline_trips_eventually() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_deadline(Some(Instant::now() - std::time::Duration::from_secs(1)));
        // The poll only fires every DEADLINE_POLL_MASK+1 mk calls; hammer
        // it with fresh allocations (GC clears the caches in between).
        let mut r = Ok(Bdd::TRUE);
        for _ in 0..DEADLINE_POLL_MASK + 2 {
            r = m.and(a, b);
            if r.is_err() {
                break;
            }
            m.collect_garbage(&[]);
        }
        assert_eq!(r.unwrap_err(), BddError::Deadline);
    }

    #[test]
    fn gc_reclaims_unrooted() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let nb = m.nvar(Var(1)); // shares b's node
        let g = m.mk(0, nb, b).unwrap();
        let before = m.allocated();
        let stats = m.collect_garbage(&[g]);
        assert_eq!(stats.live, before); // everything is reachable or a literal
        let stats = m.collect_garbage(&[]);
        assert_eq!(stats.collected, 1); // g dies; nb *is* b's node, which stays
        assert!(m.is_live(a));
        assert!(m.is_live(nb));
        assert!(!m.is_live(g));
    }

    #[test]
    fn func_handles_root_across_gc() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.and(a, b).unwrap();
        let h1 = m.func(g);
        let h2 = h1.clone();
        m.collect_garbage(&[]);
        assert!(m.is_live(g));
        drop(h1);
        m.collect_garbage(&[]);
        assert!(m.is_live(g), "second handle still pins the node");
        drop(h2);
        m.collect_garbage(&[]);
        assert!(!m.is_live(g));
    }

    #[test]
    fn func_not_pins_without_allocation() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.and(a, b).unwrap();
        let h = m.func(g);
        let before = m.stats().mk_calls;
        let nh = h.not();
        assert_eq!(m.stats().mk_calls, before, "Func::not must not allocate");
        assert_eq!(nh.bdd(), m.not(g));
        drop(h);
        m.collect_garbage(&[]);
        assert!(m.is_live(g), "¬g pins the same node as g");
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut m = BddManager::new(3);
        let b = m.var(Var(1));
        let x = m.mk(0, b, Bdd::TRUE).unwrap();
        m.collect_garbage(&[]);
        let y = m.mk(0, b, Bdd::TRUE).unwrap();
        assert_eq!(y, x, "slot should be recycled");
    }

    #[test]
    fn live_from_counts_shared_structure() {
        let mut m = BddManager::new(3);
        let b = m.var(Var(1));
        let f = m.mk(0, b, Bdd::TRUE).unwrap();
        // f shares b; counting both roots must not double count.
        assert_eq!(m.live_from(&[f, b]), 2);
        assert_eq!(m.live_from(&[Bdd::TRUE]), 0);
        // f and ¬f are one subgraph under complement edges.
        assert_eq!(m.live_from(&[f, m.not(f)]), 2);
    }

    #[test]
    fn peak_tracking() {
        let mut m = BddManager::new(4);
        let b = m.var(Var(1));
        let base = m.allocated();
        let _x = m.mk(0, b, Bdd::TRUE).unwrap();
        let _y = m.mk(0, Bdd::TRUE, b).unwrap();
        assert_eq!(m.peak_nodes(), base + 2);
        m.collect_garbage(&[]);
        assert_eq!(m.peak_nodes(), base + 2);
        m.reset_peak_nodes();
        assert_eq!(m.peak_nodes(), base);
    }

    #[test]
    fn per_op_cache_stats_are_reported() {
        let mut m = BddManager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let _ = m.and(a, b).unwrap();
        let _ = m.and(a, b).unwrap();
        let stats = m.cache_stats();
        let ite = stats.iter().find(|s| s.name == "ite").unwrap();
        assert!(ite.lookups >= 2);
        assert!(ite.hits >= 1);
        let exists = stats.iter().find(|s| s.name == "exists").unwrap();
        assert_eq!(exists.lookups, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let m = BddManager::new(1);
        let _ = m.var(Var(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nvar_out_of_range_panics() {
        let m = BddManager::new(1);
        let _ = m.nvar(Var(5));
    }
}
