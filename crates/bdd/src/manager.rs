//! The BDD manager: composes the arena, unique-table and cache layers.
//!
//! The manager owns one [`Arena`] (node storage + free list), one
//! [`UniqueTable`] (hash consing, per-level subtables) and one set of
//! per-operation [`Caches`]. It enforces the two representation
//! invariants the layers themselves cannot see:
//!
//! * **Complement-edge canonical form** — a stored `hi` edge is never
//!   complemented. [`BddManager::mk`] rewrites `(v, lo, ¬n)` into the
//!   complement of `(v, ¬lo, n)`, so `f` and `¬f` always share one
//!   subgraph and negation is a bit flip.
//! * **Root discipline** — garbage collection marks from explicit roots,
//!   the per-variable literal nodes, and the refcounts held by live
//!   [`Func`] handles.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::arena::Arena;
use crate::cache::{CacheStats, Caches};
use crate::error::BddError;
use crate::fault::{FaultKind, FaultPlan};
use crate::func::{Func, RootTable};
use crate::hash::FxHashMap;
use crate::node::{Bdd, Node, Var, TERMINAL_LEVEL};
use crate::unique::UniqueTable;
use crate::Result;

/// How often (in node allocations) the deadline is polled.
pub(crate) const DEADLINE_POLL_MASK: u64 = 0x1FFF;

/// Counters describing the current state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Nodes currently allocated (terminal + variables + interior).
    pub allocated_nodes: usize,
    /// High-water mark of `allocated_nodes` over the manager's lifetime.
    pub peak_nodes: usize,
    /// Total node creations (including unique-table hits).
    pub mk_calls: u64,
    /// Computed-cache lookups, summed over all operation caches.
    pub cache_lookups: u64,
    /// Computed-cache hits, summed over all operation caches.
    pub cache_hits: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Nodes reclaimed across all garbage collections.
    pub gc_reclaimed: u64,
    /// Reclaim-before-fail passes triggered by a tripped node limit.
    pub reclaim_attempts: u64,
    /// Nodes recovered by reclaim-before-fail passes (not counted in
    /// [`ManagerStats::gc_reclaimed`], which tracks explicit collections).
    pub reclaimed_nodes: u64,
    /// Resident bytes behind the computed caches' slot arrays — memory
    /// the per-node accounting does not see (see
    /// [`BddManager::set_cache_limit`]).
    pub cache_bytes: usize,
    /// Resident bytes behind the unique table's per-level slot arrays.
    pub unique_bytes: usize,
}

/// Occupancy summary of the unique table (hash-consing index), from
/// [`BddManager::unique_stats`]. All fields are observations — reading
/// them never allocates or perturbs the table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniqueTableStats {
    /// Entries stored across all per-level subtables.
    pub entries: usize,
    /// Slots allocated across all subtables (entries / slots = load).
    pub slots: usize,
    /// Resident bytes behind the slot arrays.
    pub bytes: usize,
    /// Subtables (one per variable level).
    pub levels: usize,
    /// Subtables currently holding at least one entry.
    pub occupied_levels: usize,
}

/// Result of one garbage collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes reclaimed by this collection.
    pub collected: usize,
    /// Nodes still live after this collection.
    pub live: usize,
}

/// An ROBDD manager with a fixed variable order and complement edges.
///
/// All nodes live in one arena owned by the manager; [`Bdd`] handles are
/// complement-encoded edges into it. Allocating operations take
/// `&mut self`; negation ([`BddManager::not`]) and the negative literal
/// ([`BddManager::nvar`]) are `&self`, infallible and allocation-free.
/// See the [crate root](crate) for an overview and example.
///
/// The manager is single-threaded (`!Send`): [`Func`] handles share its
/// root table through an `Rc`.
///
/// # Resource limits
///
/// [`BddManager::set_node_limit`] and [`BddManager::set_deadline`] arm
/// ceilings that make any allocating operation fail with
/// [`BddError::NodeLimit`] / [`BddError::Deadline`]. This is how the
/// reachability engines reproduce the `M.O.`/`T.O.` entries of the paper's
/// Table 2 without thrashing the host.
#[derive(Debug)]
pub struct BddManager {
    pub(crate) arena: Arena,
    pub(crate) unique: UniqueTable,
    pub(crate) caches: Caches,
    num_vars: u32,
    /// Pre-built positive literal edge for each variable (stable, rooted).
    pub(crate) var_nodes: Vec<u32>,
    /// Semantic variable sitting at each level: `level2var[l]` is the
    /// [`Var`] whose decision nodes carry label `l`. Identity until the
    /// first dynamic reorder; node labels are *levels* throughout, so the
    /// apply kernels never consult this — only the public API boundary
    /// (`top_var`, cube building, composition maps, evaluation) does.
    pub(crate) level2var: Vec<u32>,
    /// Inverse of [`Self::level2var`]: the level each variable occupies.
    pub(crate) var2level: Vec<u32>,
    node_limit: usize,
    deadline: Option<Instant>,
    /// Refcounted roots held by live [`Func`] handles (node index → count).
    pub(crate) roots: RootTable,
    stats: ManagerStats,
    /// Nesting depth of public operation entry points; reclaim-and-retry
    /// happens only at depth 0 (the outermost call), where no in-flight
    /// recursion holds unrooted intermediates.
    op_depth: u32,
    /// Results of completed top-level operations since the last *explicit*
    /// garbage collection. A reclaim pass marks these as roots: any edge a
    /// caller can hold was returned by some operation (or is pinned/a
    /// literal), so protecting returned results makes mid-operation
    /// collection safe while still freeing operation-internal transients.
    pub(crate) result_pins: Vec<u32>,
    /// Armed deterministic fault schedule, if any.
    fault: Option<FaultPlan>,
    /// 1-based ordinal of node-allocation attempts (fault injection).
    alloc_seq: u64,
    /// 1-based ordinal of `check_deadline` calls (fault injection); a
    /// `Cell` because deadline checks take `&self`.
    deadline_checks: Cell<u64>,
    /// Cooperative cancellation token, polled wherever the deadline is
    /// (see [`BddManager::set_cancel_token`]). The manager itself stays
    /// `!Send`; only this flag is shared across threads.
    cancel: Option<Arc<AtomicBool>>,
}

impl BddManager {
    /// Creates a manager for functions over `num_vars` variables,
    /// `Var(0) .. Var(num_vars - 1)`, with `Var(0)` at the top of the
    /// (fixed) order.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds the 31-bit node index space.
    #[must_use]
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < (u32::MAX >> 1) - 1, "too many variables");
        let mut m = BddManager {
            arena: Arena::new(num_vars as usize + 1),
            unique: UniqueTable::new(num_vars),
            caches: Caches::new(),
            num_vars,
            var_nodes: Vec::with_capacity(num_vars as usize),
            level2var: (0..num_vars).collect(),
            var2level: (0..num_vars).collect(),
            node_limit: usize::MAX,
            deadline: None,
            roots: Rc::new(RefCell::new(FxHashMap::default())),
            stats: ManagerStats::default(),
            op_depth: 0,
            result_pins: Vec::new(),
            fault: None,
            alloc_seq: 0,
            deadline_checks: Cell::new(0),
            cancel: None,
        };
        for v in 0..num_vars {
            // A fresh manager has no limits or faults armed and the index
            // space check already happened, so literal creation cannot fail.
            #[allow(clippy::expect_used)]
            let lit = m
                .mk(v, Bdd::FALSE, Bdd::TRUE)
                .expect("variable nodes fit within fresh manager limits");
            m.var_nodes.push(lit.0);
        }
        m
    }

    /// Number of variables in the manager's order.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range; variables are
    /// fixed at construction, so this is a programming error.
    #[inline]
    pub fn var(&self, v: Var) -> Bdd {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
        Bdd(self.var_nodes[v.0 as usize])
    }

    /// The function of a single negative literal (`¬v`).
    ///
    /// Constant time and allocation-free: the complement edge to the
    /// positive literal's node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    #[inline]
    pub fn nvar(&self, v: Var) -> Bdd {
        self.var(v).complement()
    }

    /// Negation `¬f`. Constant time and allocation-free: flips the
    /// complement bit of the edge.
    #[inline]
    pub fn not(&self, f: Bdd) -> Bdd {
        f.complement()
    }

    /// An RAII handle pinning `f` (and everything it references) across
    /// garbage collections until the handle — and every clone of it — is
    /// dropped. This is the only root-pinning mechanism; see [`Func`].
    pub fn func(&self, f: Bdd) -> Func {
        Func::new(f, Rc::clone(&self.roots))
    }

    /// Arms a ceiling on allocated nodes; exceeded ⇒ [`BddError::NodeLimit`].
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Removes the node ceiling.
    pub fn clear_node_limit(&mut self) {
        self.node_limit = usize::MAX;
    }

    /// The armed node ceiling, if any. Lets callers (such as the audit
    /// passes) save, suspend and restore the limit around out-of-band
    /// work that must not trip it.
    #[must_use]
    pub fn node_limit(&self) -> Option<usize> {
        (self.node_limit != usize::MAX).then_some(self.node_limit)
    }

    /// Arms a wall-clock deadline; passed ⇒ [`BddError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// The armed deadline, if any (see [`BddManager::node_limit`]).
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Fails with [`BddError::Deadline`] if the armed deadline has passed.
    ///
    /// Node allocation polls the deadline only every few thousand
    /// allocations, so short operations may run to completion past it;
    /// long-running drivers call this at their own iteration boundaries
    /// for prompt, allocation-independent aborts.
    pub fn check_deadline(&self) -> Result<()> {
        let ordinal = self.deadline_checks.get() + 1;
        self.deadline_checks.set(ordinal);
        if let Some(plan) = &self.fault {
            if plan.fail_deadline_at.is_some_and(|k| ordinal >= k) {
                return Err(BddError::Deadline);
            }
        }
        if self.is_cancelled() {
            return Err(BddError::Deadline);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(BddError::Deadline),
            _ => Ok(()),
        }
    }

    /// Arms (or with `None` disarms) a cooperative cancellation token:
    /// once another thread stores `true` in the flag, every deadline
    /// poll — [`BddManager::check_deadline`] and the allocation-path
    /// poll — fails with [`BddError::Deadline`], so a run winds down
    /// exactly like a wall-clock timeout (partial results, checkpoint,
    /// `T.O.` classification). This is how the racing portfolio cancels
    /// losing lanes: each lane owns its manager, only the flag crosses
    /// threads.
    pub fn set_cancel_token(&mut self, token: Option<Arc<AtomicBool>>) {
        self.cancel = token;
    }

    /// Whether the armed cancellation token (if any) has been raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|t| t.load(Ordering::Relaxed))
    }

    /// Arms a deterministic [`FaultPlan`]; see that type's docs for the
    /// sticky-ordinal semantics. Ordinals count from the moment of arming.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.alloc_seq = 0;
        self.deadline_checks.set(0);
        self.fault = Some(plan);
    }

    /// Disarms any fault plan; subsequent operations behave normally.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// Caps each operation cache's slot array at `limit` slots (rounded
    /// up to a power of two). The caches are lossy and direct-mapped, so
    /// a smaller cap trades recomputation for memory — never
    /// correctness. Caches already over the new cap are shrunk
    /// immediately; [`ManagerStats::cache_bytes`] reports the resident
    /// total.
    pub fn set_cache_limit(&mut self, limit: usize) {
        self.caches.set_limit(limit.max(1));
    }

    /// Current counters (allocation, cache and GC statistics).
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.allocated_nodes = self.allocated();
        s.peak_nodes = self.arena.peak();
        let (lookups, hits) = self.caches.totals();
        s.cache_lookups = lookups;
        s.cache_hits = hits;
        s.cache_bytes = self.caches.bytes();
        s.unique_bytes = self.unique.bytes();
        s
    }

    /// Per-operation computed-cache counters (lookups, hits, residency).
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.caches.stats()
    }

    /// Unique-table occupancy (entries, slots, bytes, level spread).
    pub fn unique_stats(&self) -> UniqueTableStats {
        self.unique.stats()
    }

    /// Nodes currently allocated (live from the manager's point of view).
    #[inline]
    pub fn allocated(&self) -> usize {
        self.arena.allocated()
    }

    /// High-water mark of allocated nodes.
    #[inline]
    pub fn peak_nodes(&self) -> usize {
        self.arena.peak()
    }

    /// Resets the peak-node high-water mark to the current allocation.
    pub fn reset_peak_nodes(&mut self) {
        self.arena.reset_peak();
    }

    // ----- node access -------------------------------------------------

    /// Level of the decision variable of `f` (`u32::MAX` for terminals).
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.arena.get(f.node()).var
    }

    /// Decision variable of a non-terminal node — the *semantic* variable,
    /// resolved through the current (possibly dynamically reordered)
    /// level→variable map.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn top_var(&self, f: Bdd) -> Var {
        let v = self.level(f);
        assert!(v < self.num_vars, "top_var of a terminal");
        Var(self.level2var[v as usize])
    }

    /// The level variable `v` currently occupies in the order (0 = top).
    /// Identity until the first dynamic reorder ([`BddManager::sift`] /
    /// [`BddManager::reorder_to`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    #[inline]
    #[must_use]
    pub fn var_to_level(&self, v: Var) -> u32 {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
        self.var2level[v.0 as usize]
    }

    /// The semantic variable at level `lvl` of the current order.
    ///
    /// # Panics
    ///
    /// Panics if `lvl` is not a valid level.
    #[inline]
    #[must_use]
    pub fn level_to_var(&self, lvl: u32) -> Var {
        assert!(lvl < self.num_vars, "level {lvl} out of range");
        Var(self.level2var[lvl as usize])
    }

    /// The current variable order, top of the order first. Identity
    /// (`Var(0), Var(1), …`) until the first dynamic reorder.
    #[must_use]
    pub fn current_order(&self) -> Vec<Var> {
        self.level2var.iter().map(|&v| Var(v)).collect()
    }

    /// Whether the current order differs from the construction order.
    #[must_use]
    pub fn order_is_permuted(&self) -> bool {
        self.level2var
            .iter()
            .enumerate()
            .any(|(l, &v)| l as u32 != v)
    }

    /// Low (else) child of a non-terminal node, with the parent edge's
    /// complement bit pushed into the result — i.e. the cofactor
    /// `f|top=0` of the *function* `f`, not of the stored node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "low of a terminal");
        Bdd(self.arena.get(f.node()).lo ^ (f.0 & 1))
    }

    /// High (then) child of a non-terminal node, complement-resolved the
    /// same way as [`BddManager::low`].
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "high of a terminal");
        Bdd(self.arena.get(f.node()).hi ^ (f.0 & 1))
    }

    /// Cofactors of `f` with respect to level `lvl`: `(f|lvl=0, f|lvl=1)`.
    ///
    /// `lvl` must be ≤ the level of `f`'s top variable (standard apply-step
    /// usage); if `f`'s top is below `lvl`, both cofactors are `f`. The
    /// parent's complement bit is resolved into both children.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, lvl: u32) -> (Bdd, Bdd) {
        let n = self.arena.get(f.node());
        if n.var == lvl {
            let c = f.0 & 1;
            (Bdd(n.lo ^ c), Bdd(n.hi ^ c))
        } else {
            (f, f)
        }
    }

    /// Level plus complement-resolved children of `f` in one arena read
    /// (the apply hot path would otherwise read each operand's node twice:
    /// once for [`Self::level`], once for [`Self::cofactors_at`]).
    ///
    /// For a terminal the level is `u32::MAX` and the children are
    /// garbage — callers must gate on the level before using them.
    #[inline]
    pub(crate) fn expand(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        let n = self.arena.get(f.node());
        let c = f.0 & 1;
        (n.var, Bdd(n.lo ^ c), Bdd(n.hi ^ c))
    }

    // ----- node creation ------------------------------------------------

    /// Finds or creates the function `ite(v, hi, lo)`, applying the
    /// reduction rule `lo == hi ⇒ lo` and the complement-edge canonical
    /// form (a stored `hi` edge is never complemented).
    ///
    /// # Errors
    ///
    /// Fails on node-limit, deadline or index-space exhaustion.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd> {
        debug_assert!(var < self.num_vars);
        debug_assert!(
            self.level(lo) > var && self.level(hi) > var,
            "order violation"
        );
        self.stats.mk_calls += 1;
        if lo == hi {
            return Ok(lo);
        }
        if hi.is_complemented() {
            // (v, lo, ¬n) ≡ ¬(v, ¬lo, n): store the regular-hi form.
            let r = self.mk_node(var, lo.complement(), hi.complement())?;
            Ok(r.complement())
        } else {
            self.mk_node(var, lo, hi)
        }
    }

    /// Hash-conses the node `(var, lo, hi)` with `hi` already regular.
    fn mk_node(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd> {
        debug_assert!(!hi.is_complemented());
        if let Some(idx) = self.unique.get(var, lo.0, hi.0) {
            return Ok(Bdd(idx << 1));
        }
        // Resource checks on the slow (allocating) path only.
        self.alloc_seq += 1;
        if let Some(plan) = &self.fault {
            if plan.fail_alloc_at.is_some_and(|k| self.alloc_seq >= k) {
                return match plan.alloc_fault_kind {
                    Some(FaultKind::Capacity) => Err(BddError::Capacity),
                    _ => Err(BddError::NodeLimit {
                        limit: self.allocated(),
                    }),
                };
            }
        }
        if self.allocated() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        if self.stats.mk_calls & DEADLINE_POLL_MASK == 0 {
            if self.is_cancelled() {
                return Err(BddError::Deadline);
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Err(BddError::Deadline);
                }
            }
        }
        let idx = self.arena.alloc(Node {
            var,
            lo: lo.0,
            hi: hi.0,
        })?;
        self.unique.insert(var, lo.0, hi.0, idx);
        Ok(Bdd(idx << 1))
    }

    /// Clears all computed caches (memoized operation results).
    ///
    /// Purely a memory/performance knob; never affects results.
    pub fn clear_cache(&mut self) {
        self.caches.clear_all();
    }

    // ----- operation recovery -------------------------------------------

    /// Runs a public operation with reclaim-before-fail semantics.
    ///
    /// Every allocating entry point wraps its body in this. Only the
    /// *outermost* invocation (operation depth 0) does anything beyond
    /// bookkeeping; nested invocations — an `exists` step calling `or`,
    /// say — pass errors straight through, because their caller's
    /// recursion stack holds unrooted intermediates that a collection
    /// would free.
    ///
    /// At depth 0, a [`BddError::NodeLimit`] triggers one [`Self::reclaim`]
    /// pass over everything the caller could still observe (`roots` must
    /// list the operation's operands) and, if any node was recovered, one
    /// wholesale retry. A single retry suffices: a second reclaim could
    /// free nothing the first did not, so a third attempt would replay the
    /// second identically.
    ///
    /// A successful outermost result is pinned in [`Self::result_pins`]
    /// until the next explicit [`Self::collect_garbage`], which is what
    /// makes the mid-workload reclaim sound: any edge a caller can hold is
    /// a constant, a literal, `Func`-pinned, or the pinned result of a
    /// completed operation.
    pub(crate) fn recover(
        &mut self,
        roots: &[Bdd],
        mut op: impl FnMut(&mut Self) -> Result<Bdd>,
    ) -> Result<Bdd> {
        let outermost = self.op_depth == 0;
        self.op_depth += 1;
        let mut r = op(self);
        if outermost {
            if matches!(r, Err(BddError::NodeLimit { .. })) && self.reclaim(roots) > 0 {
                r = op(self);
            }
            if let Ok(b) = &r {
                if !b.is_const() {
                    self.result_pins.push(b.node());
                }
            }
        }
        self.op_depth -= 1;
        r
    }

    /// Emergency mark-sweep run when an operation trips the node limit:
    /// marks from `Func` roots, literals, the caller-supplied operand
    /// `roots`, and all pinned results, then sweeps and flushes the
    /// computed caches. Returns the number of nodes recovered.
    fn reclaim(&mut self, roots: &[Bdd]) -> usize {
        let mark = self.mark_from(self.root_indices(roots, true));
        let collected = self.sweep(&mark);
        self.stats.reclaim_attempts += 1;
        self.stats.reclaimed_nodes += collected as u64;
        self.cheap_integrity_check();
        collected
    }

    // ----- garbage collection -------------------------------------------

    /// The mark-phase root set: the caller-supplied `roots`, every node
    /// refcounted by a live [`Func`] handle, the per-variable literal
    /// nodes and — when `with_result_pins` — the pinned results of
    /// completed operations. This single definition of "root" is shared by
    /// [`Self::reclaim`], [`Self::collect_garbage`] and the leak audit, so
    /// the three can never drift apart.
    pub(crate) fn root_indices(&self, roots: &[Bdd], with_result_pins: bool) -> Vec<u32> {
        let mut stack: Vec<u32> = roots.iter().map(|b| b.node()).collect();
        if with_result_pins {
            stack.extend(self.result_pins.iter().copied());
        }
        stack.extend(self.roots.borrow().keys().copied());
        stack.extend(self.var_nodes.iter().map(|&e| e >> 1));
        stack
    }

    /// Marks every node reachable from the indices on `stack`; slot 0 (the
    /// terminal) is always marked.
    pub(crate) fn mark_from(&self, mut stack: Vec<u32>) -> Vec<bool> {
        let mut mark = vec![false; self.arena.len()];
        mark[0] = true; // the terminal
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.arena.get(i);
            if n.var < self.num_vars {
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
        mark
    }

    /// Frees every live, unmarked interior node and flushes the computed
    /// caches (which may reference the freed slots).
    ///
    /// When nothing was freed the caches are left intact: every cached
    /// entry still refers to live, unmoved slots, so flushing would only
    /// throw away valid memoization.
    pub(crate) fn sweep(&mut self, mark: &[bool]) -> usize {
        let mut collected = 0;
        for i in 1..self.arena.len() as u32 {
            let n = self.arena.get(i);
            if !mark[i as usize] && n.var < self.num_vars {
                self.unique.remove(n.var, n.lo, n.hi);
                self.arena.free(i);
                collected += 1;
            }
        }
        if collected > 0 {
            self.unique.compact();
            self.caches.clear_all();
        }
        collected
    }

    /// Reclaims every node not reachable from `roots`, a live [`Func`]
    /// handle, or the per-variable literal nodes. Handles to live nodes
    /// remain valid; the computed caches are cleared.
    ///
    /// Also resets the result-pin set kept for reclaim-before-fail: from
    /// this point on, only `roots`, `Func` handles and literals define
    /// liveness, so results of operations completed before this call must
    /// be pinned by one of those to survive.
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> GcStats {
        self.result_pins.clear();
        let mark = self.mark_from(self.root_indices(roots, false));
        let collected = self.sweep(&mark);
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += collected as u64;
        self.cheap_integrity_check();
        GcStats {
            collected,
            live: self.allocated(),
        }
    }

    /// Allocation floor below which [`Self::maybe_collect_garbage`] never
    /// sweeps. Graphs this small are collected in microseconds, but the
    /// computed-cache flush a sweep forces costs far more than the nodes
    /// it returns.
    pub const GC_DEFER_FLOOR: usize = 1 << 16;

    /// Like [`Self::collect_garbage`], but adaptive: the collection is
    /// skipped while the allocation (garbage included) sits under
    /// [`Self::GC_DEFER_FLOOR`] nodes. Fixed-point loops call this once
    /// per iteration; deferring on small graphs keeps the computed caches
    /// warm across iterations — every sweep that frees nodes must flush
    /// them, and on a graph this size the flush costs far more than the
    /// nodes returned. Large graphs still collect every call: there the
    /// cross-iteration cache-hit yield is low and retained garbage only
    /// bloats the unique table's working set. A skipped collection
    /// reports `collected: 0` and the garbage-inclusive allocation as
    /// `live`.
    ///
    /// Purely a memory/performance knob: deferral never changes any
    /// operation's result, and the reclaim-before-fail path still sweeps
    /// on node-limit pressure regardless of this policy.
    ///
    /// An armed [`Self::set_node_limit`] caps the deferral: once the
    /// allocation fills half the budget, collection happens regardless of
    /// the floor, so deferred garbage (and the result pins only a full
    /// collection clears) never squeezes a tight budget that per-iteration
    /// collection would have honored.
    pub fn maybe_collect_garbage(&mut self, roots: &[Bdd]) -> GcStats {
        let allocated = self.allocated();
        if allocated < Self::GC_DEFER_FLOOR.min(self.node_limit / 2) {
            return GcStats {
                collected: 0,
                live: allocated,
            };
        }
        self.collect_garbage(roots)
    }

    /// O(levels) always-on integrity check run at every collection
    /// boundary: the terminal occupies slot 0 and the unique table holds
    /// exactly one entry per live interior node. Catches arena/unique
    /// drift (lost or duplicated hash-consing entries) immediately instead
    /// of many iterations later as a wrong reached-state count; the
    /// exhaustive per-node walk stays in [`BddManager::audit_graph`].
    fn cheap_integrity_check(&self) {
        assert!(
            self.arena.get(0).var == TERMINAL_LEVEL,
            "post-GC integrity: slot 0 does not hold the terminal"
        );
        debug_assert!(
            self.level2var
                .iter()
                .enumerate()
                .all(|(l, &v)| self.var2level[v as usize] == l as u32),
            "post-GC integrity: level/variable maps are not mutual inverses"
        );
        assert!(
            self.unique.len() == self.allocated() - 1,
            "post-GC integrity: unique table holds {} entries for {} live interior nodes",
            self.unique.len(),
            self.allocated() - 1
        );
    }

    /// Counts the nodes reachable from `roots` (shared live size) without
    /// collecting anything. The terminal is not counted, and — because
    /// counting is by node, not by edge — `f` and `¬f` contribute the same
    /// shared structure.
    pub fn live_from(&self, roots: &[Bdd]) -> usize {
        let mut mark = vec![false; self.arena.len()];
        let mut stack: Vec<u32> = roots.iter().map(|b| b.node()).collect();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.arena.get(i);
            if n.var < self.num_vars {
                count += 1;
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
        count
    }

    /// Checks whether the node slot behind `f` is live (not freed).
    ///
    /// Debug aid for tests and validators; never needed for correct use of
    /// the API, since handles obtained under the root discipline are
    /// always live.
    pub fn is_live(&self, f: Bdd) -> bool {
        self.arena.is_live_slot(f.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let m = BddManager::new(3);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.allocated(), 4); // 1 terminal + 3 literals
        let a = m.var(Var(0));
        assert_eq!(m.top_var(a), Var(0));
        assert_eq!(m.low(a), Bdd::FALSE);
        assert_eq!(m.high(a), Bdd::TRUE);
    }

    #[test]
    fn nvar_is_free_and_complement_resolved() {
        let m = BddManager::new(2);
        let a = m.var(Var(0));
        let na = m.nvar(Var(0));
        assert_eq!(m.allocated(), 3, "nvar allocates nothing");
        assert_eq!(na, m.not(a));
        assert_eq!(m.not(na), a);
        // Accessors push the complement bit into the children.
        assert_eq!(m.low(na), Bdd::TRUE);
        assert_eq!(m.high(na), Bdd::FALSE);
        assert_eq!(m.top_var(na), Var(0));
    }

    #[test]
    fn mk_is_hash_consed_and_reduced() {
        let mut m = BddManager::new(2);
        let n1 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        let n2 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        assert_eq!(n1, n2);
        let red = m.mk(1, Bdd::TRUE, Bdd::TRUE).unwrap();
        assert_eq!(red, Bdd::TRUE);
    }

    #[test]
    fn mk_canonicalizes_complemented_hi() {
        let mut m = BddManager::new(2);
        // (v0, ⊤, ⊥) is ¬v0: must resolve to the complement of the literal
        // node, not a second node.
        let before = m.allocated();
        let nv = m.mk(0, Bdd::TRUE, Bdd::FALSE).unwrap();
        assert_eq!(nv, m.nvar(Var(0)));
        assert_eq!(m.allocated(), before, "no new node for a complement");
        // General case: mk with complemented hi equals ¬mk(¬lo, ¬hi).
        let b = m.var(Var(1));
        let f = m.mk(0, b, b.complement()).unwrap();
        let g = m.mk(0, b.complement(), b).unwrap();
        assert_eq!(f, g.complement());
        assert_eq!(m.live_from(&[f]), m.live_from(&[g]));
    }

    #[test]
    fn node_limit_trips() {
        let mut m = BddManager::new(8);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_node_limit(m.allocated()); // no headroom
        let err = m.and(a, b).unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 9 });
        m.clear_node_limit();
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn deadline_trips_eventually() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_deadline(Some(Instant::now() - std::time::Duration::from_secs(1)));
        // The poll only fires every DEADLINE_POLL_MASK+1 mk calls; hammer
        // it with fresh allocations (GC clears the caches in between).
        let mut r = Ok(Bdd::TRUE);
        for _ in 0..DEADLINE_POLL_MASK + 2 {
            r = m.and(a, b);
            if r.is_err() {
                break;
            }
            m.collect_garbage(&[]);
        }
        assert_eq!(r.unwrap_err(), BddError::Deadline);
    }

    #[test]
    fn gc_reclaims_unrooted() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let nb = m.nvar(Var(1)); // shares b's node
        let g = m.mk(0, nb, b).unwrap();
        let before = m.allocated();
        let stats = m.collect_garbage(&[g]);
        assert_eq!(stats.live, before); // everything is reachable or a literal
        let stats = m.collect_garbage(&[]);
        assert_eq!(stats.collected, 1); // g dies; nb *is* b's node, which stays
        assert!(m.is_live(a));
        assert!(m.is_live(nb));
        assert!(!m.is_live(g));
    }

    #[test]
    fn func_handles_root_across_gc() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.and(a, b).unwrap();
        let h1 = m.func(g);
        let h2 = h1.clone();
        m.collect_garbage(&[]);
        assert!(m.is_live(g));
        drop(h1);
        m.collect_garbage(&[]);
        assert!(m.is_live(g), "second handle still pins the node");
        drop(h2);
        m.collect_garbage(&[]);
        assert!(!m.is_live(g));
    }

    #[test]
    fn func_not_pins_without_allocation() {
        let mut m = BddManager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.and(a, b).unwrap();
        let h = m.func(g);
        let before = m.stats().mk_calls;
        let nh = h.not();
        assert_eq!(m.stats().mk_calls, before, "Func::not must not allocate");
        assert_eq!(nh.bdd(), m.not(g));
        drop(h);
        m.collect_garbage(&[]);
        assert!(m.is_live(g), "¬g pins the same node as g");
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut m = BddManager::new(3);
        let b = m.var(Var(1));
        let x = m.mk(0, b, Bdd::TRUE).unwrap();
        m.collect_garbage(&[]);
        let y = m.mk(0, b, Bdd::TRUE).unwrap();
        assert_eq!(y, x, "slot should be recycled");
    }

    #[test]
    fn live_from_counts_shared_structure() {
        let mut m = BddManager::new(3);
        let b = m.var(Var(1));
        let f = m.mk(0, b, Bdd::TRUE).unwrap();
        // f shares b; counting both roots must not double count.
        assert_eq!(m.live_from(&[f, b]), 2);
        assert_eq!(m.live_from(&[Bdd::TRUE]), 0);
        // f and ¬f are one subgraph under complement edges.
        assert_eq!(m.live_from(&[f, m.not(f)]), 2);
    }

    #[test]
    fn peak_tracking() {
        let mut m = BddManager::new(4);
        let b = m.var(Var(1));
        let base = m.allocated();
        let _x = m.mk(0, b, Bdd::TRUE).unwrap();
        let _y = m.mk(0, Bdd::TRUE, b).unwrap();
        assert_eq!(m.peak_nodes(), base + 2);
        m.collect_garbage(&[]);
        assert_eq!(m.peak_nodes(), base + 2);
        m.reset_peak_nodes();
        assert_eq!(m.peak_nodes(), base);
    }

    #[test]
    fn per_op_cache_stats_are_reported() {
        let mut m = BddManager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let _ = m.and(a, b).unwrap();
        let _ = m.and(a, b).unwrap();
        let stats = m.cache_stats();
        let ite = stats.iter().find(|s| s.name == "ite").unwrap();
        assert!(ite.lookups >= 2);
        assert!(ite.hits >= 1);
        let exists = stats.iter().find(|s| s.name == "exists").unwrap();
        assert_eq!(exists.lookups, 0);
    }

    #[test]
    fn reclaim_before_fail_recovers_garbage() {
        let mut m = BddManager::new(8);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        // Manufacture unrooted garbage: pin g across an explicit GC (which
        // clears the result pins), then drop the handle.
        let g = m.xor(a, b).unwrap();
        let h = m.func(g);
        m.collect_garbage(&[]);
        drop(h);
        assert!(m.is_live(g));
        // No headroom: and(a, c) needs a fresh node, which only fits after
        // the reclaim pass frees g (whose slot the retry then recycles).
        let limit = m.allocated();
        m.set_node_limit(limit);
        let r = m.and(a, c).unwrap();
        assert_eq!(m.low(r), Bdd::FALSE);
        assert_eq!(m.allocated(), limit, "retry must recycle, not grow");
        let stats = m.stats();
        assert_eq!(stats.reclaim_attempts, 1);
        assert!(stats.reclaimed_nodes >= 1);
        assert_eq!(stats.gc_runs, 1, "reclaim is not an explicit collection");
        m.check_invariants().unwrap();
    }

    #[test]
    fn reclaim_fails_when_nothing_is_collectable() {
        let mut m = BddManager::new(8);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_node_limit(m.allocated()); // fresh manager: no garbage at all
        let err = m.and(a, b).unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 9 });
        assert_eq!(m.stats().reclaim_attempts, 1);
        assert_eq!(m.stats().reclaimed_nodes, 0);
        // The manager stays usable once the limit is lifted.
        m.clear_node_limit();
        assert!(m.and(a, b).is_ok());
        m.check_invariants().unwrap();
    }

    #[test]
    fn fault_plan_fails_allocations_stickily() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_fault_plan(FaultPlan::node_limit_at(1));
        assert!(matches!(
            m.and(a, b).unwrap_err(),
            BddError::NodeLimit { .. }
        ));
        // Sticky: the reclaim-retry cannot mask it.
        assert!(m.and(a, b).is_err());
        m.clear_fault_plan();
        assert!(m.and(a, b).is_ok());
        m.check_invariants().unwrap();
    }

    #[test]
    fn fault_plan_capacity_is_reported_verbatim() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        m.set_fault_plan(FaultPlan::capacity_at(1));
        assert_eq!(m.and(a, b).unwrap_err(), BddError::Capacity);
        assert_eq!(
            m.stats().reclaim_attempts,
            0,
            "capacity is not recoverable by collection"
        );
        m.clear_fault_plan();
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn fault_plan_trips_deadline_at_ordinal() {
        let mut m = BddManager::new(2);
        m.set_fault_plan(FaultPlan::deadline_at(3));
        assert!(m.check_deadline().is_ok());
        assert!(m.check_deadline().is_ok());
        assert_eq!(m.check_deadline().unwrap_err(), BddError::Deadline);
        assert_eq!(m.check_deadline().unwrap_err(), BddError::Deadline); // sticky
        m.clear_fault_plan();
        assert!(m.check_deadline().is_ok());
    }

    #[test]
    fn invariants_hold_through_ops_and_gc() {
        let mut m = BddManager::new(6);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap();
        m.check_invariants().unwrap();
        let _h = m.func(f);
        m.collect_garbage(&[]);
        m.check_invariants().unwrap();
        m.collect_garbage(&[]);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cancel_token_trips_like_a_deadline() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let token = Arc::new(AtomicBool::new(false));
        m.set_cancel_token(Some(Arc::clone(&token)));
        assert!(m.check_deadline().is_ok());
        assert!(m.and(a, b).is_ok());
        token.store(true, Ordering::Relaxed);
        assert!(m.is_cancelled());
        assert_eq!(m.check_deadline().unwrap_err(), BddError::Deadline);
        // Disarming restores normal operation.
        m.set_cancel_token(None);
        assert!(m.check_deadline().is_ok());
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn stats_report_resident_table_bytes() {
        let mut m = BddManager::new(6);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let _ = m.and(a, b).unwrap();
        let s = m.stats();
        assert!(s.cache_bytes > 0, "ite cache allocated slots");
        assert!(s.unique_bytes > 0, "unique levels allocated slots");
        // Capping the cache never leaves it larger than before.
        m.set_cache_limit(1);
        assert!(m.stats().cache_bytes <= s.cache_bytes);
    }

    #[test]
    fn tight_cache_limit_never_affects_results() {
        let mut big = BddManager::new(8);
        let mut tiny = BddManager::new(8);
        tiny.set_cache_limit(1); // rounds up to the minimum slot count
        let mut f_big = Bdd::FALSE;
        let mut f_tiny = Bdd::FALSE;
        for v in 0..8 {
            let (x, y) = (big.var(Var(v)), tiny.var(Var(v)));
            f_big = big.xor(f_big, x).unwrap();
            f_tiny = tiny.xor(f_tiny, y).unwrap();
        }
        assert_eq!(
            big.sat_count(f_big, 8),
            tiny.sat_count(f_tiny, 8),
            "cache pressure must only cost recomputation"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let m = BddManager::new(1);
        let _ = m.var(Var(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nvar_out_of_range_panics() {
        let m = BddManager::new(1);
        let _ = m.nvar(Var(5));
    }
}
