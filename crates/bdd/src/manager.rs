//! The BDD manager: node arena, unique table, computed cache, GC, limits.

use std::time::Instant;

use crate::error::BddError;
use crate::hash::FxHashMap;
use crate::node::{Bdd, Node, Var, FREE_LEVEL, TERMINAL_LEVEL};
use crate::Result;

/// Sentinel for "no next entry" in the free list.
const FREE_END: u32 = u32::MAX;

/// How often (in node allocations) the deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x1FFF;

/// Default maximum number of memoized results before the computed cache is
/// wholesale cleared (a standard CUDD-style safety valve).
const DEFAULT_CACHE_LIMIT: usize = 1 << 22;

/// Key into the computed cache: operation tag plus up to three operands.
pub(crate) type CacheKey = (u8, u32, u32, u32);

/// Operation tags for the computed cache.
pub(crate) mod op {
    pub const ITE: u8 = 1;
    pub const EXISTS: u8 = 2;
    pub const FORALL: u8 = 3;
    pub const AND_EXISTS: u8 = 4;
    pub const CONSTRAIN: u8 = 5;
    pub const RESTRICT: u8 = 6;
}

/// Counters describing the current state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Nodes currently allocated (terminals + variables + interior).
    pub allocated_nodes: usize,
    /// High-water mark of `allocated_nodes` over the manager's lifetime.
    pub peak_nodes: usize,
    /// Total node creations (including unique-table hits).
    pub mk_calls: u64,
    /// Computed-cache lookups.
    pub cache_lookups: u64,
    /// Computed-cache hits.
    pub cache_hits: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Nodes reclaimed across all garbage collections.
    pub gc_reclaimed: u64,
}

/// Result of one garbage collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes reclaimed by this collection.
    pub collected: usize,
    /// Nodes still live after this collection.
    pub live: usize,
}

/// An ROBDD manager with a fixed variable order.
///
/// All nodes live in one arena owned by the manager; [`Bdd`] handles are
/// indices into it. Operations take `&mut self` because they allocate nodes
/// and consult the computed cache. See the [crate root](crate) for an
/// overview and example.
///
/// # Resource limits
///
/// [`BddManager::set_node_limit`] and [`BddManager::set_deadline`] arm
/// ceilings that make any allocating operation fail with
/// [`BddError::NodeLimit`] / [`BddError::Deadline`]. This is how the
/// reachability engines reproduce the `M.O.`/`T.O.` entries of the paper's
/// Table 2 without thrashing the host.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, u32, u32), u32>,
    free_head: u32,
    free_count: usize,
    cache: FxHashMap<CacheKey, u32>,
    cache_limit: usize,
    num_vars: u32,
    /// Pre-built positive literal for each variable (stable, protected).
    var_nodes: Vec<u32>,
    node_limit: usize,
    deadline: Option<Instant>,
    protected: FxHashMap<u32, u32>,
    stats: ManagerStats,
}

impl BddManager {
    /// Creates a manager for functions over `num_vars` variables,
    /// `Var(0) .. Var(num_vars - 1)`, with `Var(0)` at the top of the
    /// (fixed) order.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds `u32::MAX - 2` (index space for
    /// sentinels).
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < u32::MAX - 2, "too many variables");
        let mut m = BddManager {
            nodes: Vec::with_capacity(num_vars as usize + 2),
            unique: FxHashMap::default(),
            free_head: FREE_END,
            free_count: 0,
            cache: FxHashMap::default(),
            cache_limit: DEFAULT_CACHE_LIMIT,
            num_vars,
            var_nodes: Vec::with_capacity(num_vars as usize),
            node_limit: usize::MAX,
            deadline: None,
            protected: FxHashMap::default(),
            stats: ManagerStats::default(),
        };
        // Terminals occupy slots 0 and 1.
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: 0, hi: 0 });
        m.nodes.push(Node { var: TERMINAL_LEVEL, lo: 1, hi: 1 });
        for v in 0..num_vars {
            let id = m
                .mk(v, Bdd::FALSE, Bdd::TRUE)
                .expect("variable nodes fit within fresh manager limits");
            m.var_nodes.push(id.0);
        }
        m.stats.allocated_nodes = m.nodes.len();
        m.stats.peak_nodes = m.nodes.len();
        m
    }

    /// Number of variables in the manager's order.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range; variables are
    /// fixed at construction, so this is a programming error.
    #[inline]
    pub fn var(&self, v: Var) -> Bdd {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
        Bdd(self.var_nodes[v.0 as usize])
    }

    /// The function of a single negative literal (`¬v`).
    ///
    /// # Errors
    ///
    /// Fails only on resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the manager's variable range.
    pub fn nvar(&mut self, v: Var) -> Result<Bdd> {
        assert!(v.0 < self.num_vars, "variable {v} out of range");
        self.mk(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// Arms a ceiling on allocated nodes; exceeded ⇒ [`BddError::NodeLimit`].
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Removes the node ceiling.
    pub fn clear_node_limit(&mut self) {
        self.node_limit = usize::MAX;
    }

    /// Arms a wall-clock deadline; passed ⇒ [`BddError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Caps the computed cache (entries); the cache is cleared when full.
    pub fn set_cache_limit(&mut self, limit: usize) {
        self.cache_limit = limit.max(1);
    }

    /// Current counters (allocation, cache and GC statistics).
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.allocated_nodes = self.allocated();
        s
    }

    /// Nodes currently allocated (live from the manager's point of view).
    #[inline]
    pub fn allocated(&self) -> usize {
        self.nodes.len() - self.free_count
    }

    /// High-water mark of allocated nodes.
    #[inline]
    pub fn peak_nodes(&self) -> usize {
        self.stats.peak_nodes
    }

    /// Resets the peak-node high-water mark to the current allocation.
    pub fn reset_peak_nodes(&mut self) {
        self.stats.peak_nodes = self.allocated();
    }

    // ----- node access -------------------------------------------------

    /// Level of the decision variable of `f` (`u32::MAX` for terminals).
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// Decision variable of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn top_var(&self, f: Bdd) -> Var {
        let v = self.level(f);
        assert!(v < self.num_vars, "top_var of a terminal");
        Var(v)
    }

    /// Low (else) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "low of a terminal");
        Bdd(self.nodes[f.0 as usize].lo)
    }

    /// High (then) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[inline]
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "high of a terminal");
        Bdd(self.nodes[f.0 as usize].hi)
    }

    /// Cofactors of `f` with respect to level `lvl`: `(f|lvl=0, f|lvl=1)`.
    ///
    /// `lvl` must be ≤ the level of `f`'s top variable (standard apply-step
    /// usage); if `f`'s top is below `lvl`, both cofactors are `f`.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, lvl: u32) -> (Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        if n.var == lvl {
            (Bdd(n.lo), Bdd(n.hi))
        } else {
            (f, f)
        }
    }

    // ----- node creation ------------------------------------------------

    /// Finds or creates the node `(var, lo, hi)`, applying the reduction
    /// rule `lo == hi ⇒ lo`.
    ///
    /// # Errors
    ///
    /// Fails on node-limit, deadline or index-space exhaustion.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd> {
        debug_assert!(var < self.num_vars);
        debug_assert!(self.level(lo) > var && self.level(hi) > var, "order violation");
        self.stats.mk_calls += 1;
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&id) = self.unique.get(&(var, lo.0, hi.0)) {
            return Ok(Bdd(id));
        }
        // Resource checks on the slow (allocating) path only.
        if self.allocated() >= self.node_limit {
            return Err(BddError::NodeLimit { limit: self.node_limit });
        }
        if self.stats.mk_calls & DEADLINE_POLL_MASK == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Err(BddError::Deadline);
                }
            }
        }
        let node = Node { var, lo: lo.0, hi: hi.0 };
        let id = if self.free_head != FREE_END {
            let slot = self.free_head;
            self.free_head = self.nodes[slot as usize].lo;
            self.free_count -= 1;
            self.nodes[slot as usize] = node;
            slot
        } else {
            if self.nodes.len() >= (u32::MAX - 2) as usize {
                return Err(BddError::Capacity);
            }
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        };
        self.unique.insert((var, lo.0, hi.0), id);
        let alloc = self.allocated();
        if alloc > self.stats.peak_nodes {
            self.stats.peak_nodes = alloc;
        }
        Ok(Bdd(id))
    }

    // ----- computed cache -------------------------------------------------

    #[inline]
    pub(crate) fn cache_get(&mut self, key: CacheKey) -> Option<Bdd> {
        self.stats.cache_lookups += 1;
        let hit = self.cache.get(&key).copied().map(Bdd);
        if hit.is_some() {
            self.stats.cache_hits += 1;
        }
        hit
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: CacheKey, val: Bdd) {
        if self.cache.len() >= self.cache_limit {
            self.cache.clear();
        }
        self.cache.insert(key, val.0);
    }

    /// Clears the computed cache (memoized operation results).
    ///
    /// Purely a memory/performance knob; never affects results.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    // ----- protection & garbage collection -------------------------------

    /// Pins `f` (and everything it references) across garbage collections.
    ///
    /// Protection is counted: matching calls to [`BddManager::unprotect`]
    /// release it.
    pub fn protect(&mut self, f: Bdd) {
        *self.protected.entry(f.0).or_insert(0) += 1;
    }

    /// Releases one level of protection added by [`BddManager::protect`].
    ///
    /// Unprotecting a handle that is not protected is a no-op.
    pub fn unprotect(&mut self, f: Bdd) {
        if let Some(c) = self.protected.get_mut(&f.0) {
            *c -= 1;
            if *c == 0 {
                self.protected.remove(&f.0);
            }
        }
    }

    /// Reclaims every node not reachable from `roots`, the protected set,
    /// or the per-variable literal nodes. Handles to live nodes remain
    /// valid; the computed cache is cleared.
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> GcStats {
        let mut mark = vec![false; self.nodes.len()];
        mark[0] = true;
        mark[1] = true;
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            stack.push(r.0);
        }
        stack.extend(self.protected.keys().copied());
        stack.extend(self.var_nodes.iter().copied());
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.nodes[i as usize];
            if n.var < self.num_vars {
                if !mark[n.lo as usize] {
                    stack.push(n.lo);
                }
                if !mark[n.hi as usize] {
                    stack.push(n.hi);
                }
            }
        }
        let mut collected = 0;
        #[allow(clippy::needless_range_loop)] // reads nodes[i] and writes nodes[i]
        for i in 2..self.nodes.len() {
            let n = self.nodes[i];
            if !mark[i] && n.var < self.num_vars {
                self.unique.remove(&(n.var, n.lo, n.hi));
                self.nodes[i] = Node { var: FREE_LEVEL, lo: self.free_head, hi: 0 };
                self.free_head = i as u32;
                self.free_count += 1;
                collected += 1;
            }
        }
        self.cache.clear();
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += collected as u64;
        GcStats { collected, live: self.allocated() }
    }

    /// Counts the nodes reachable from `roots` (shared live size) without
    /// collecting anything. Terminals are not counted.
    pub fn live_from(&self, roots: &[Bdd]) -> usize {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|b| b.0).collect();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if mark[i as usize] {
                continue;
            }
            mark[i as usize] = true;
            let n = self.nodes[i as usize];
            if n.var < self.num_vars {
                count += 1;
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        count
    }

    /// Checks whether the node slot is live (not freed); for debug tooling.
    #[cfg(test)]
    pub(crate) fn is_live(&self, f: Bdd) -> bool {
        (f.0 as usize) < self.nodes.len() && self.nodes[f.0 as usize].var != FREE_LEVEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let m = BddManager::new(3);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.allocated(), 5); // 2 terminals + 3 literals
        let a = m.var(Var(0));
        assert_eq!(m.top_var(a), Var(0));
        assert_eq!(m.low(a), Bdd::FALSE);
        assert_eq!(m.high(a), Bdd::TRUE);
    }

    #[test]
    fn mk_is_hash_consed_and_reduced() {
        let mut m = BddManager::new(2);
        let n1 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        let n2 = m.mk(0, Bdd::FALSE, Bdd::TRUE).unwrap();
        assert_eq!(n1, n2);
        let red = m.mk(1, Bdd::TRUE, Bdd::TRUE).unwrap();
        assert_eq!(red, Bdd::TRUE);
    }

    #[test]
    fn node_limit_trips() {
        let mut m = BddManager::new(8);
        m.set_node_limit(m.allocated()); // no headroom
        let err = m.nvar(Var(0)).unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 10 });
        m.clear_node_limit();
        assert!(m.nvar(Var(0)).is_ok());
    }

    #[test]
    fn deadline_trips_eventually() {
        let mut m = BddManager::new(4);
        m.set_deadline(Some(Instant::now() - std::time::Duration::from_secs(1)));
        // The poll only fires every DEADLINE_POLL_MASK+1 mk calls; hammer it.
        let mut r = Ok(Bdd::TRUE);
        'outer: for _ in 0..DEADLINE_POLL_MASK + 2 {
            for v in 0..4 {
                r = m.nvar(Var(v));
                if r.is_err() {
                    break 'outer;
                }
                // Force fresh allocations by collecting in between.
                m.collect_garbage(&[]);
            }
        }
        assert_eq!(r.unwrap_err(), BddError::Deadline);
    }

    #[test]
    fn gc_reclaims_unrooted() {
        let mut m = BddManager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let nb = m.nvar(Var(1)).unwrap();
        let g = m.mk(0, nb, b).unwrap();
        let before = m.allocated();
        let stats = m.collect_garbage(&[g]);
        assert_eq!(stats.live, before); // everything is reachable or a literal
        let stats = m.collect_garbage(&[]);
        assert_eq!(stats.collected, 2); // g and nb die; literals stay
        assert!(m.is_live(a));
        assert!(!m.is_live(g));
    }

    #[test]
    fn protection_survives_gc_and_is_counted() {
        let mut m = BddManager::new(2);
        let nb = m.nvar(Var(1)).unwrap();
        m.protect(nb);
        m.protect(nb);
        m.collect_garbage(&[]);
        assert!(m.is_live(nb));
        m.unprotect(nb);
        m.collect_garbage(&[]);
        assert!(m.is_live(nb)); // still one protection left
        m.unprotect(nb);
        m.collect_garbage(&[]);
        assert!(!m.is_live(nb));
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut m = BddManager::new(3);
        let x = m.nvar(Var(2)).unwrap();
        let slot = x.0;
        m.collect_garbage(&[]);
        let y = m.nvar(Var(2)).unwrap();
        assert_eq!(y.0, slot, "slot should be recycled");
    }

    #[test]
    fn live_from_counts_shared_structure() {
        let mut m = BddManager::new(3);
        let b = m.var(Var(1));
        let f = m.mk(0, b, Bdd::TRUE).unwrap();
        // f shares b; counting both roots must not double count.
        assert_eq!(m.live_from(&[f, b]), 2);
        assert_eq!(m.live_from(&[Bdd::TRUE]), 0);
    }

    #[test]
    fn peak_tracking() {
        let mut m = BddManager::new(4);
        let base = m.allocated();
        let x = m.nvar(Var(1)).unwrap();
        let _ = m.mk(0, x, Bdd::TRUE).unwrap();
        assert_eq!(m.peak_nodes(), base + 2);
        m.collect_garbage(&[]);
        assert_eq!(m.peak_nodes(), base + 2);
        m.reset_peak_nodes();
        assert_eq!(m.peak_nodes(), base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let m = BddManager::new(1);
        let _ = m.var(Var(5));
    }
}
