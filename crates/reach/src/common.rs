//! Shared options, statistics and outcome types for the engines.

use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use bfvr_bdd::{Bdd, BddError, BddManager, Func};
use bfvr_bfv::reparam::Schedule;
use bfvr_bfv::BfvError;
use bfvr_setrepr::{ReprCheckpoint, ReprKind, SetView};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// Which reachability engine to run (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's Figure 2 flow (Boolean functional vectors).
    Bfv,
    /// Coudert–Berthet–Madre Figure 1 flow (χ + range computation).
    Cbm,
    /// Monolithic transition relation.
    Monolithic,
    /// Partitioned transition relation with IWLS95-style scheduling.
    Iwls95,
    /// Figure 2 flow over McMillan's conjunctive decomposition (§2.7).
    Cdec,
}

impl EngineKind {
    /// Short label used in benchmark tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Bfv => "BFV",
            EngineKind::Cbm => "CBM",
            EngineKind::Monolithic => "MONO",
            EngineKind::Iwls95 => "IWLS95",
            EngineKind::Cdec => "CDEC",
        }
    }

    /// All engines, for sweeps.
    #[must_use]
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Bfv,
            EngineKind::Cbm,
            EngineKind::Monolithic,
            EngineKind::Iwls95,
            EngineKind::Cdec,
        ]
    }

    /// Parses a benchmark-table label (case-insensitive) back into an
    /// engine — the inverse of [`EngineKind::label`], used by durable
    /// checkpoint headers and the job store.
    #[must_use]
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::all()
            .into_iter()
            .find(|e| e.label().eq_ignore_ascii_case(s))
    }

    /// The representation each engine natively iterates on (the lane
    /// [`crate::run`] dispatches to).
    #[must_use]
    pub fn native_repr(self) -> ReprKind {
        match self {
            EngineKind::Bfv => ReprKind::Bfv,
            EngineKind::Cbm | EngineKind::Monolithic | EngineKind::Iwls95 => ReprKind::Chi,
            EngineKind::Cdec => ReprKind::Cdec,
        }
    }

    /// The representations this engine's image computation can drive
    /// (native first). The χ engines additionally iterate on ZDDs
    /// through the χ↔ZDD converters; the BFV engine's functional image
    /// additionally drives the over-approximating zonotope lane.
    #[must_use]
    pub fn supported_reprs(self) -> &'static [ReprKind] {
        match self {
            EngineKind::Bfv => &[ReprKind::Bfv, ReprKind::Zonotope],
            EngineKind::Cbm | EngineKind::Monolithic | EngineKind::Iwls95 => {
                &[ReprKind::Chi, ReprKind::Zdd]
            }
            EngineKind::Cdec => &[ReprKind::Cdec],
        }
    }

    /// Whether this engine's image step can run on the frozen-function
    /// parallel backend ([`ReachOptions::frozen`]). The functional-
    /// composition engines qualify — their image is one independent
    /// compose per vector component; the χ engines' relational products
    /// have no per-component fan-out and ignore the flag.
    #[must_use]
    pub fn frozen_capable(self) -> bool {
        matches!(self, EngineKind::Bfv | EngineKind::Cdec)
    }
}

/// Label of an engine × representation lane. Native lanes keep the bare
/// engine label (so existing tables read unchanged); cross-representation
/// lanes are tagged `ENGINE+REPR`.
#[must_use]
pub fn lane_label(engine: EngineKind, repr: ReprKind) -> &'static str {
    if repr == engine.native_repr() {
        return engine.label();
    }
    match (engine, repr) {
        (EngineKind::Cbm, ReprKind::Zdd) => "CBM+ZDD",
        (EngineKind::Monolithic, ReprKind::Zdd) => "MONO+ZDD",
        (EngineKind::Iwls95, ReprKind::Zdd) => "IWLS95+ZDD",
        (EngineKind::Bfv, ReprKind::Zonotope) => "BFV+ZONO",
        _ => "UNSUPPORTED",
    }
}

/// Everything an [`IterationObserver`] sees at one iteration boundary:
/// the engine, the iteration count, the engine's full garbage-collection
/// root set, and the live set representation.
#[derive(Clone, Copy, Debug)]
pub struct IterationView<'a> {
    /// The engine producing this iteration.
    pub engine: EngineKind,
    /// The set representation the engine is iterating on (matches the
    /// [`IterationView::set`] variant; `engine × repr` names the lane).
    pub repr: ReprKind,
    /// Iterations completed so far (1-based at the first callback).
    pub iteration: usize,
    /// The complete root set the engine just collected garbage against
    /// (its loop state plus any engine-private relations, e.g. the
    /// IWLS95 cluster relations). Anything live but unreachable from
    /// these — plus the manager's pinned handles — is a leak.
    pub roots: &'a [Bdd],
    /// The set representation the engine iterates on.
    pub set: SetView<'a>,
}

/// Per-iteration callback, invoked at every completed (growing)
/// fixed-point iteration right after the engine's garbage collection.
/// Receives the manager so it can inspect — or audit — the live graph.
///
/// `Rc` keeps [`ReachOptions`] cheaply cloneable; the engines never
/// retain the observer beyond the run.
pub type IterationObserver = Rc<dyn Fn(&mut BddManager, &EncodedFsm, &IterationView<'_>)>;

/// Resource limits and tuning knobs shared by all engines.
#[derive(Clone)]
pub struct ReachOptions {
    /// Ceiling on allocated BDD nodes (reproduces `M.O.`).
    pub node_limit: Option<usize>,
    /// Wall-clock budget (reproduces `T.O.`).
    pub time_limit: Option<Duration>,
    /// Ceiling on computed-table slots per op cache (see
    /// [`BddManager::set_cache_limit`]); `None` keeps the manager's
    /// default. Unlike `node_limit` this is not an abort threshold — the
    /// caches are lossy and simply stop growing, trading hit rate for a
    /// bounded resident footprint (visible in `cache_stats`).
    pub cache_limit: Option<usize>,
    /// Safety cap on image iterations.
    pub max_iterations: Option<usize>,
    /// Static variable-ordering heuristic for the drivers that own the
    /// netlist encoding — the racing portfolio (each lane encodes the
    /// netlist in its own thread) and the CLI front end. Engines called
    /// with an already-encoded [`EncodedFsm`] inherit whatever order the
    /// caller encoded with; this field does not re-order them.
    pub order: OrderHeuristic,
    /// Parameter-elimination schedule for the BFV/CDEC engines (§3).
    pub schedule: Schedule,
    /// Cluster size threshold for the partitioned-TR engine \[IWLS95\].
    pub cluster_threshold: usize,
    /// Use the smaller of frontier/reached as the image source (the
    /// selection heuristic of Figures 1–2). When false, always iterate
    /// from the full reached set.
    pub use_frontier: bool,
    /// Run the image step on the frozen-function parallel backend
    /// (CLI `--frozen`): freeze the transition vector and current set
    /// once per iteration, fan per-component coupled-DFS compose tasks
    /// across [`ReachOptions::jobs`] scoped threads, and canonicalize
    /// the results back in one batched re-intern pass. Results are
    /// bit-identical to the sequential path. Only the
    /// [`EngineKind::frozen_capable`] engines honor the flag.
    pub frozen: bool,
    /// Worker threads of the frozen image pool (`0` = ask the OS via
    /// [`std::thread::available_parallelism`]). Clamped to the
    /// component count per image. Ignored unless
    /// [`ReachOptions::frozen`] is set.
    pub jobs: usize,
    /// Enable dynamic variable reordering (Rudell sifting) between
    /// iterations (CLI `--sift`). The driver watches live-node growth
    /// after each iteration's collection and, once the graph has grown
    /// past [`ReachOptions::sift_trigger`] × the post-reorder baseline
    /// (and past [`bfvr_bdd::SIFT_SIZE_FLOOR`]), runs
    /// [`BddManager::sift`] over the loop roots with resource limits
    /// suspended. Only backends whose loop state survives a permuted
    /// order honor the flag ([`bfvr_setrepr::SetRepr::supports_reorder`]);
    /// the BFV/CDEC/ZDD/zonotope lanes silently decline — their
    /// representations hard-code the component-order-equals-variable-
    /// order constraint of the paper's §3.
    pub sift: bool,
    /// Per-variable growth bound of a sift pass: moving one variable may
    /// let the graph grow to at most this multiple of its size before
    /// the move is aborted and undone (Rudell's `maxGrowth`).
    pub sift_max_growth: f64,
    /// Live-node growth multiple (relative to the last post-reorder
    /// baseline) at which the driver triggers the next sift.
    pub sift_trigger: f64,
    /// Record per-iteration statistics (adds one count per step).
    pub record_iterations: bool,
    /// Per-iteration callback (see [`IterationObserver`]); used by the
    /// `bfvr audit` subcommand to run the analysis passes against every
    /// intermediate set. `None` costs nothing.
    pub observer: Option<IterationObserver>,
    /// Telemetry stream (see [`crate::telemetry::TraceHandle`]). Unlike
    /// `observer`, tracing is read-only: it records sampled iteration
    /// events, engine spans and outcome/limit events without forcing
    /// collections or otherwise changing what the engine computes.
    /// `None` costs nothing.
    pub trace: Option<crate::telemetry::TraceHandle>,
    /// Invoke [`ReachOptions::checkpoint_hook`] every this many growing
    /// iterations. `None` disables periodic checkpoints (the default);
    /// the driver still builds a final checkpoint on recoverable
    /// exhaustion either way.
    pub checkpoint_every: Option<usize>,
    /// Periodic durable-checkpoint callback (see [`CheckpointHook`]).
    /// Called with the manager's resource limits suspended, so writing a
    /// checkpoint can never itself trip the budget it exists to survive.
    /// `None` costs nothing.
    pub checkpoint_hook: Option<CheckpointHook>,
}

/// Periodic checkpoint callback, invoked by the shared fixed-point
/// driver every [`ReachOptions::checkpoint_every`] growing iterations
/// with a freshly built [`Checkpoint`] of the loop state. The CLI uses
/// it to write durable checkpoint files mid-run so a killed process
/// resumes from the last completed multiple of `checkpoint_every`
/// instead of iteration zero.
///
/// The hook must not panic; failures (a full disk, say) should be
/// latched by the caller and surfaced after the run — a failed periodic
/// checkpoint must never abort the in-memory traversal.
pub type CheckpointHook = Rc<dyn Fn(&mut BddManager, &Checkpoint)>;

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            node_limit: None,
            time_limit: None,
            cache_limit: None,
            max_iterations: None,
            order: OrderHeuristic::DfsFanin,
            schedule: Schedule::DynamicSupport,
            cluster_threshold: 500,
            use_frontier: true,
            frozen: false,
            jobs: 0,
            sift: false,
            sift_max_growth: 1.2,
            sift_trigger: 2.0,
            record_iterations: false,
            observer: None,
            trace: None,
            checkpoint_every: None,
            checkpoint_hook: None,
        }
    }
}

// Hand-written: `Rc<dyn Fn>` has no `Debug`.
impl fmt::Debug for ReachOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReachOptions")
            .field("node_limit", &self.node_limit)
            .field("time_limit", &self.time_limit)
            .field("cache_limit", &self.cache_limit)
            .field("max_iterations", &self.max_iterations)
            .field("order", &self.order)
            .field("schedule", &self.schedule)
            .field("cluster_threshold", &self.cluster_threshold)
            .field("use_frontier", &self.use_frontier)
            .field("frozen", &self.frozen)
            .field("jobs", &self.jobs)
            .field("sift", &self.sift)
            .field("sift_max_growth", &self.sift_max_growth)
            .field("sift_trigger", &self.sift_trigger)
            .field("record_iterations", &self.record_iterations)
            .field("observer", &self.observer.as_ref().map(|_| "<callback>"))
            .field("trace", &self.trace.as_ref().map(|_| "<tracer>"))
            .field("checkpoint_every", &self.checkpoint_every)
            .field(
                "checkpoint_hook",
                &self.checkpoint_hook.as_ref().map(|_| "<callback>"),
            )
            .finish()
    }
}

/// Internal: one iteration's measurements, as only the engine's loop
/// knows them — its (possibly deferred) collection result and its own
/// wall-clock/op-class timers. Everything else recorded at the boundary
/// is derived from `&self` reads inside [`notify_iteration`].
pub(crate) struct IterMetrics<'a> {
    /// Result of the engine's adaptive per-iteration collection.
    pub gc: bfvr_bdd::GcStats,
    /// Wall time of the whole iteration.
    pub elapsed: Duration,
    /// Time spent in representation conversions this iteration.
    pub conversion: Duration,
    /// Op-class durations (`image`, `union`, `convert`), in loop order.
    pub ops: &'a [(&'static str, Duration)],
}

/// Internal: the per-iteration boundary hook shared by all five engines —
/// records telemetry and `per_iteration` statistics, runs the
/// `audit`-feature self-check, then the caller-supplied observer.
///
/// Ordering is load-bearing. Telemetry and statistics come **first**,
/// from `&self` reads only, so a traced run measures exactly the state
/// an untraced run would be in. The observer/audit path comes second
/// and is allowed to perturb: the engines' own per-iteration collection
/// is adaptive ([`BddManager::maybe_collect_garbage`]) and defers on
/// small graphs, leaving garbage in the arena on purpose — but
/// observers and the audit's leak pass are promised a freshly-collected
/// heap (anything live but unreachable from `view.roots` is a finding
/// to them), so when anyone is *observing* we force the full collection
/// the engines skipped. Tracing alone never triggers that collection.
pub(crate) fn notify_iteration(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    view: &IterationView<'_>,
    metrics: &IterMetrics<'_>,
    per_iteration: &mut Vec<IterationStats>,
) {
    if let Some(trace) = &opts.trace {
        let mut t = trace.borrow_mut();
        if t.should_record(view.iteration as u64) {
            let record = crate::telemetry::iter_record(m, fsm, view, metrics);
            t.iteration(record);
        }
    }
    if opts.record_iterations {
        let (reached_nodes, frontier_nodes) = crate::telemetry::view_sizes(m, &view.set);
        per_iteration.push(IterationStats {
            reached_states: crate::telemetry::view_states(m, fsm, &view.set).unwrap_or(f64::NAN),
            reached_nodes,
            frontier_nodes,
            live_nodes: metrics.gc.live,
            elapsed: metrics.elapsed,
            conversion: metrics.conversion,
        });
    }
    #[cfg(not(feature = "audit"))]
    let observed = opts.observer.is_some();
    #[cfg(feature = "audit")]
    let observed = true;
    if observed {
        m.collect_garbage(view.roots);
    }
    #[cfg(feature = "audit")]
    crate::selfcheck::selfcheck_iteration(m, fsm, view);
    if let Some(obs) = &opts.observer {
        obs(m, fsm, view);
    }
}

/// How a traversal ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The least fixed point was reached.
    FixedPoint,
    /// The wall-clock budget was exhausted (`T.O.` in Table 2).
    TimeOut,
    /// The node ceiling was hit (`M.O.` in Table 2).
    MemOut,
    /// The iteration cap was hit.
    IterationLimit,
    /// An internal failure that is *not* a legitimate resource exhaustion
    /// (index-space capacity, a variable out of range). Kept distinct so
    /// bugs are never reported as `M.O.` — and never retried with a
    /// bigger budget.
    Error,
}

impl Outcome {
    /// The paper's table notation: `ok`, `T.O.`, `M.O.`, `I.L.` (plus
    /// `ERR` for internal failures, which Table 2 never shows).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::FixedPoint => "ok",
            Outcome::TimeOut => "T.O.",
            Outcome::MemOut => "M.O.",
            Outcome::IterationLimit => "I.L.",
            Outcome::Error => "ERR",
        }
    }

    /// Whether a retry with a larger budget could change this outcome
    /// (the escalation driver's retry predicate).
    #[must_use]
    pub fn is_resource_exhaustion(self) -> bool {
        matches!(self, Outcome::TimeOut | Outcome::MemOut)
    }
}

/// One image iteration's bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationStats {
    /// States reached after this iteration (`NaN` for the vector/CDec
    /// engines, which would have to build a χ to count).
    pub reached_states: f64,
    /// Shared BDD size of the reached-set representation.
    pub reached_nodes: usize,
    /// Shared BDD size of the iteration's start (frontier) set.
    pub frontier_nodes: usize,
    /// Allocated nodes after this iteration's garbage collection.
    pub live_nodes: usize,
    /// Time spent in this iteration.
    pub elapsed: Duration,
    /// Time spent converting between representations (CBM flow only).
    pub conversion: Duration,
}

/// The result of a reachability run.
#[derive(Clone, Debug)]
pub struct ReachResult {
    /// The engine that produced this result.
    pub engine: EngineKind,
    /// The set representation the engine iterated on (the engine's
    /// native one under [`crate::run`]; see [`crate::run_repr`]).
    pub repr: ReprKind,
    /// Whether `reached_states`/`reached_chi` may strictly
    /// over-approximate the exact reached set (zonotope lanes). Exact
    /// lanes always report `false`.
    pub over_approx: bool,
    /// How the traversal ended.
    pub outcome: Outcome,
    /// Image iterations completed.
    pub iterations: usize,
    /// Number of reached states (exact when the state count fits; present
    /// even on resource-limited runs, for the states found so far).
    pub reached_states: Option<f64>,
    /// Characteristic function of the reached set over the current-state
    /// variables (present when the engine completed; the BFV engine
    /// converts once at the end purely for cross-engine validation).
    ///
    /// The [`Func`] handle roots the BDD, so later engine runs in the same
    /// manager cannot collect it; it is released when the result (and all
    /// clones of the handle) are dropped.
    pub reached_chi: Option<Func>,
    /// Shared size of the final reached-set representation (BDD nodes).
    pub representation_nodes: Option<usize>,
    /// Peak allocated BDD nodes during the run (the paper's `Peak(K)`).
    pub peak_nodes: usize,
    /// Wall time.
    pub elapsed: Duration,
    /// Total time spent in representation conversions (χ↔BFV); zero for
    /// the Figure 2 flow — that is the paper's headline.
    pub conversion_time: Duration,
    /// Effective worker count of the frozen image pool — the
    /// parallelism actually used, after clamping [`ReachOptions::jobs`]
    /// to the component count. `None` when the run took the sequential
    /// image path (frozen off, or an engine without a frozen backend).
    pub frozen_jobs: Option<usize>,
    /// Dynamic reorder (sift) passes the driver triggered during the
    /// run. Zero when [`ReachOptions::sift`] was off, the backend
    /// declined ([`bfvr_setrepr::SetRepr::supports_reorder`]), or the
    /// graph never crossed the growth trigger.
    pub reorders: usize,
    /// Live-node counts summed across reorders: `(before, after)` totals
    /// of every triggered sift pass, for the `Peak(K)`-style tables.
    pub reorder_nodes: (usize, usize),
    /// Per-iteration statistics (when requested).
    pub per_iteration: Vec<IterationStats>,
    /// Resumable state, present when the run stopped short of its fixed
    /// point for a recoverable reason (time-out, mem-out, iteration cap)
    /// with at least one state reached. Feed it to [`crate::resume`] —
    /// typically with raised limits — to continue from where this run
    /// stopped instead of restarting.
    pub checkpoint: Option<Checkpoint>,
}

/// Resumable traversal state captured at the last completed iteration.
///
/// All BDD state is held through [`Func`] handles, so the checkpoint's
/// nodes survive garbage collection for as long as the checkpoint lives;
/// drop it to release them. Checkpoints are tied to the
/// manager/[`bfvr_sim::EncodedFsm`] pair that produced them.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Engine that produced this checkpoint (resume re-dispatches to it).
    pub engine: EngineKind,
    /// Representation lane that produced this checkpoint (resume rebuilds
    /// the same backend; a mismatched state is rejected as an error).
    pub repr: ReprKind,
    /// Image iterations completed before the interruption.
    pub iterations: usize,
    /// Backend-specific reached/frontier representation, re-expressed in
    /// manager-stable handles (see [`bfvr_setrepr::SetRepr::checkpoint`]).
    pub(crate) state: ReprCheckpoint,
}

impl Checkpoint {
    /// Assembles a checkpoint from its parts — the deserialization
    /// entry point for durable on-disk checkpoints, which reconstruct
    /// the representation state in a fresh manager and hand it back to
    /// [`crate::resume`]. In-memory checkpoints come from the driver.
    #[must_use]
    pub fn new(
        engine: EngineKind,
        repr: ReprKind,
        iterations: usize,
        state: ReprCheckpoint,
    ) -> Checkpoint {
        Checkpoint {
            engine,
            repr,
            iterations,
            state,
        }
    }

    /// The representation half of the checkpoint — what a durable
    /// serializer persists (the engine half is the public fields).
    #[must_use]
    pub fn state(&self) -> &ReprCheckpoint {
        &self.state
    }
}

/// Internal: classify a BDD failure as an outcome.
pub(crate) fn outcome_of_bdd_error(e: &BddError) -> Outcome {
    match e {
        BddError::NodeLimit { .. } => Outcome::MemOut,
        BddError::Deadline => Outcome::TimeOut,
        // Capacity / VarOutOfRange are internal failures, not legitimate
        // memory-outs: never classify them as `M.O.`.
        _ => Outcome::Error,
    }
}

/// Internal: classify a BFV failure as an outcome.
pub(crate) fn outcome_of_bfv_error(e: &BfvError) -> Outcome {
    match e {
        BfvError::Bdd(b) => outcome_of_bdd_error(b),
        _ => Outcome::Error,
    }
}

/// Internal: a result for a run that failed before completing a single
/// iteration (no partial state to report or checkpoint).
pub(crate) fn failed_result(
    m: &mut BddManager,
    engine: EngineKind,
    repr: ReprKind,
    outcome: Outcome,
    elapsed: Duration,
) -> ReachResult {
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);
    ReachResult {
        engine,
        repr,
        over_approx: repr.over_approximates(),
        outcome,
        iterations: 0,
        reached_states: None,
        reached_chi: None,
        representation_nodes: None,
        peak_nodes,
        elapsed,
        conversion_time: Duration::ZERO,
        frozen_jobs: None,
        reorders: 0,
        reorder_nodes: (0, 0),
        per_iteration: Vec::new(),
        checkpoint: None,
    }
}

/// Internal: arm the manager's limits; returns the deadline used.
pub(crate) fn arm_limits(m: &mut BddManager, opts: &ReachOptions) -> Option<Instant> {
    if let Some(n) = opts.node_limit {
        m.set_node_limit(n);
    }
    if let Some(c) = opts.cache_limit {
        m.set_cache_limit(c);
    }
    let deadline = opts.time_limit.map(|d| Instant::now() + d);
    m.set_deadline(deadline);
    m.reset_peak_nodes();
    deadline
}

/// Internal: disarm limits after a run.
pub(crate) fn disarm_limits(m: &mut BddManager) {
    m.clear_node_limit();
    m.set_deadline(None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EngineKind::Bfv.label(), "BFV");
        assert_eq!(Outcome::TimeOut.label(), "T.O.");
        assert_eq!(Outcome::MemOut.label(), "M.O.");
        assert_eq!(EngineKind::all().len(), 5);
    }

    #[test]
    fn lane_labels_and_native_reprs() {
        for e in EngineKind::all() {
            // Native lanes keep the bare engine label.
            assert_eq!(lane_label(e, e.native_repr()), e.label());
            assert_eq!(e.supported_reprs()[0], e.native_repr());
        }
        assert_eq!(
            lane_label(EngineKind::Monolithic, ReprKind::Zdd),
            "MONO+ZDD"
        );
        assert_eq!(lane_label(EngineKind::Cbm, ReprKind::Zdd), "CBM+ZDD");
        assert_eq!(lane_label(EngineKind::Iwls95, ReprKind::Zdd), "IWLS95+ZDD");
        assert_eq!(lane_label(EngineKind::Bfv, ReprKind::Zonotope), "BFV+ZONO");
        assert_eq!(
            lane_label(EngineKind::Cdec, ReprKind::Zonotope),
            "UNSUPPORTED"
        );
        assert!(EngineKind::Cdec
            .supported_reprs()
            .iter()
            .all(|&r| r == ReprKind::Cdec));
    }

    #[test]
    fn default_options_are_unbounded() {
        let o = ReachOptions::default();
        assert!(o.node_limit.is_none());
        assert!(o.time_limit.is_none());
        assert!(o.use_frontier);
    }

    #[test]
    fn error_classification() {
        assert_eq!(
            outcome_of_bdd_error(&BddError::NodeLimit { limit: 1 }),
            Outcome::MemOut
        );
        assert_eq!(outcome_of_bdd_error(&BddError::Deadline), Outcome::TimeOut);
        assert_eq!(
            outcome_of_bfv_error(&BfvError::Bdd(BddError::Deadline)),
            Outcome::TimeOut
        );
    }

    #[test]
    fn internal_failures_are_not_memouts() {
        assert_eq!(outcome_of_bdd_error(&BddError::Capacity), Outcome::Error);
        assert_eq!(
            outcome_of_bdd_error(&BddError::VarOutOfRange {
                var: 9,
                num_vars: 4
            }),
            Outcome::Error
        );
        assert_eq!(
            outcome_of_bfv_error(&BfvError::Bdd(BddError::Capacity)),
            Outcome::Error
        );
        assert_eq!(Outcome::Error.label(), "ERR");
        assert!(!Outcome::Error.is_resource_exhaustion());
        assert!(Outcome::MemOut.is_resource_exhaustion());
        assert!(Outcome::TimeOut.is_resource_exhaustion());
        assert!(!Outcome::FixedPoint.is_resource_exhaustion());
    }
}
