//! Backward reachability (pre-image traversal) on characteristic
//! functions — the dual traversal VIS-class tools pair with forward
//! reachability for invariant checking.
//!
//! The BFV representation has no natural pre-image (the paper's flow is
//! forward-only; a functional vector maps *into* a set, not out of it),
//! so this engine intentionally runs on characteristic functions with the
//! monolithic relation. It exists to cross-validate the forward engines:
//! `init ∈ backward(bad) ⟺ bad ∩ forward(init) ≠ ∅`.

use std::time::Instant;

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_sim::EncodedFsm;

use crate::cf::{count_states, initial_chi};
use crate::common::{
    arm_limits, disarm_limits, outcome_of_bdd_error, IterationStats, Outcome, ReachOptions,
    ReachResult,
};
use crate::EngineKind;

/// Computes the set of states that can reach `bad` (a characteristic
/// function over the *current*-state variables), as a characteristic
/// function over the current-state variables. The result includes `bad`
/// itself.
///
/// Reported under [`EngineKind::Monolithic`] in the result (it shares
/// that engine's relation construction).
pub fn reach_backward(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    bad: Bdd,
    opts: &ReachOptions,
) -> ReachResult {
    let start = Instant::now();
    arm_limits(m, opts);
    let mut per_iteration = Vec::new();
    let mut iterations = 0usize;
    let mut reached = bad;
    let mut outcome_opt = None;
    // Pin the caller's bad-set against mid-operation reclaim passes.
    let _bad_guard = m.func(bad);
    let run = (|| -> Result<(), bfvr_bdd::BddError> {
        let mut t = Bdd::TRUE;
        for l in 0..fsm.num_latches() {
            let (_, u) = fsm.state_vars(l);
            let uu = m.var(u);
            let eq = m.xnor(uu, fsm.next_fn(l))?;
            t = m.and(t, eq)?;
        }
        let _t_guard = m.func(t);
        // Pre-image quantifies the *next*-state and input variables.
        let mut qvars: Vec<Var> = (0..fsm.num_latches())
            .map(|l| fsm.state_vars(l).1)
            .collect();
        qvars.extend(fsm.input_vars());
        let cube = m.cube_from_vars(&qvars)?;
        let _cube_guard = m.func(cube);
        let pairs = fsm.swap_pairs();
        let mut from = reached;
        // Pin the loop state against mid-operation reclaim passes.
        let mut _state_guards = (m.func(reached), m.func(from));
        loop {
            if opts.max_iterations.is_some_and(|cap| iterations >= cap) {
                outcome_opt = Some(Outcome::IterationLimit);
                break;
            }
            let iter_start = Instant::now();
            m.check_deadline()?;
            // pre(R) = ∃u,w. T(v,u,w) ∧ R[v→u].
            let from_u = m.swap_vars(from, &pairs)?;
            let pre = m.and_exists(t, from_u, cube)?;
            let new_reached = m.or(reached, pre)?;
            iterations += 1;
            if new_reached == reached {
                break;
            }
            reached = new_reached;
            from = if opts.use_frontier && m.size(pre) <= m.size(reached) {
                pre
            } else {
                reached
            };
            _state_guards = (m.func(reached), m.func(from));
            let gc = m.maybe_collect_garbage(&[reached, from, t, cube, bad]);
            if opts.record_iterations {
                per_iteration.push(IterationStats {
                    reached_states: count_states(m, fsm, reached),
                    reached_nodes: m.size(reached),
                    frontier_nodes: m.size(from),
                    live_nodes: gc.live,
                    elapsed: iter_start.elapsed(),
                    conversion: std::time::Duration::ZERO,
                });
            }
        }
        Ok(())
    })();
    let outcome = match (&run, outcome_opt) {
        (_, Some(o)) => o,
        (Ok(()), None) => Outcome::FixedPoint,
        (Err(e), None) => outcome_of_bdd_error(e),
    };
    let elapsed = start.elapsed();
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);
    ReachResult {
        engine: EngineKind::Monolithic,
        repr: bfvr_setrepr::ReprKind::Chi,
        over_approx: false,
        outcome,
        iterations,
        reached_states: Some(count_states(m, fsm, reached)),
        reached_chi: Some(m.func(reached)),
        representation_nodes: Some(m.size(reached)),
        peak_nodes,
        elapsed,
        conversion_time: std::time::Duration::ZERO,
        frozen_jobs: None,
        reorders: 0,
        reorder_nodes: (0, 0),
        per_iteration,
        // Backward traversal is a validation utility, not one of the
        // escalation-driven engines; it does not checkpoint.
        checkpoint: None,
    }
}

/// Backward invariant check: does some initial state reach `bad`?
///
/// Returns `Ok(true)` when the invariant *holds* (bad is unreachable).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn check_invariant_backward(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    bad: Bdd,
    opts: &ReachOptions,
) -> Result<bool, bfvr_bdd::BddError> {
    let r = reach_backward(m, fsm, bad, opts);
    let init = initial_chi(m, fsm)?;
    // `reach_backward` always yields a χ; an absent one hits nothing.
    let hit = match r.reached_chi {
        Some(back) => m.and(back.bdd(), init)?,
        None => Bdd::FALSE,
    };
    Ok(hit.is_false())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_invariant, reach_monolithic, CheckResult};
    use bfvr_bfv::StateSet;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn backward_from_rotator_state_is_the_onehot_ring() {
        let net = generators::rotator(6);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        // Bad: token at station 3.
        let space = fsm.space();
        let mut point = vec![false; 6];
        let comp_of_latch3 = (0..6)
            .position(|c| fsm.latch_of_component(c) == 3)
            .expect("latch 3 exists");
        point[comp_of_latch3] = true;
        let bad_set = StateSet::singleton(&mut m, &space, &point).unwrap();
        let bad = bad_set.to_characteristic(&mut m, &space).unwrap();
        let r = reach_backward(&mut m, &fsm, bad, &ReachOptions::default());
        assert_eq!(r.outcome, Outcome::FixedPoint);
        // Rotation is a permutation: exactly the 6 one-hot states can
        // reach a one-hot state.
        assert_eq!(r.reached_states, Some(6.0));
    }

    #[test]
    fn forward_and_backward_checks_agree() {
        // For assorted (circuit, bad-state) pairs, the forward checker and
        // the backward checker must give the same verdict.
        let cases: Vec<(bfvr_netlist::Netlist, Vec<bool>, bool)> = vec![
            // counter(4) reaches all states: bad = 1111 is reachable.
            (generators::counter(4), vec![true; 4], false),
            // johnson(4) cannot reach 0101 (latch order).
            (generators::johnson(4), vec![false, true, false, true], true),
            // mod-5 counter never shows value 7 (binary 111).
            (generators::counter_modk(3, 5), vec![true, true, true], true),
        ];
        for (net, bad_latch_bits, expect_holds) in cases {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let space = fsm.space();
            let comp_bits: Vec<bool> = (0..space.len())
                .map(|c| bad_latch_bits[fsm.latch_of_component(c)])
                .collect();
            let bad_set = StateSet::singleton(&mut m, &space, &comp_bits).unwrap();
            let bad_chi = bad_set.to_characteristic(&mut m, &space).unwrap();
            let _bad_guard = m.func(bad_chi);
            let back_holds =
                check_invariant_backward(&mut m, &fsm, bad_chi, &ReachOptions::default()).unwrap();
            let fwd = check_invariant(&mut m, &fsm, &bad_set, &ReachOptions::default()).unwrap();
            let fwd_holds = matches!(fwd, CheckResult::Holds { .. });
            assert_eq!(back_holds, fwd_holds, "{} verdicts disagree", net.name());
            assert_eq!(back_holds, expect_holds, "{} wrong verdict", net.name());
        }
    }

    #[test]
    fn backward_from_unreachable_state_misses_init() {
        let net = generators::lfsr(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // All-ones is the LFSR's lockout state; nothing else reaches it.
        let bad = StateSet::singleton(&mut m, &space, &[true; 4]).unwrap();
        let bad_chi = bad.to_characteristic(&mut m, &space).unwrap();
        let r = reach_backward(&mut m, &fsm, bad_chi, &ReachOptions::default());
        // The lockout state maps to itself under XNOR feedback, so the
        // backward set is just {1111}.
        assert_eq!(r.reached_states, Some(1.0));
        assert!(check_invariant_backward(&mut m, &fsm, bad_chi, &ReachOptions::default()).unwrap());
    }

    #[test]
    fn backward_of_full_space_is_full_space() {
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let r = reach_backward(&mut m, &fsm, Bdd::TRUE, &ReachOptions::default());
        assert_eq!(r.reached_states, Some(16.0));
        assert_eq!(r.iterations, 1);
        // Sanity: forward reach also completes in the same manager after.
        let f = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
        assert_eq!(f.reached_states, Some(16.0));
    }
}
