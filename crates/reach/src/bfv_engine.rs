//! The paper's Figure 2 flow: reachability with Boolean functional
//! vectors only — symbolic simulation, re-parameterization, BFV union.

use std::time::Instant;

use bfvr_bdd::BddManager;
use bfvr_bfv::{ops, Bfv, StateSet};
use bfvr_sim::{simulate_image_with, EncodedFsm};

use crate::common::{
    arm_limits, disarm_limits, failed_result, notify_iteration, outcome_of_bfv_error, Checkpoint,
    CheckpointState, IterMetrics, IterationView, Outcome, ReachOptions, ReachResult, SetView,
};
use crate::EngineKind;

/// Internal: the BFV-engine resume seed — reached and from vectors plus
/// the number of iterations already completed.
pub(crate) type BfvSeed = (Bfv, Bfv, usize);

/// Runs least-fixed-point reachability with the BFV engine.
///
/// ```
/// use bfvr_netlist::generators;
/// use bfvr_reach::{reach_bfv, ReachOptions};
/// use bfvr_sim::{EncodedFsm, OrderHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::johnson(6);
/// let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
/// let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
/// assert_eq!(r.reached_states, Some(12.0)); // 2n of 2^n states
/// # Ok(())
/// # }
/// ```
///
/// No characteristic function is constructed anywhere in the loop; the
/// fix-point test is componentwise BDD-handle equality, which canonicity
/// makes sound. The final `reached_chi`/state count are produced *after*
/// the timed region, purely for cross-engine validation.
pub fn reach_bfv(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    reach_bfv_seeded(m, fsm, opts, None)
}

/// The Figure 2 traversal, optionally resumed from a checkpoint seed.
pub(crate) fn reach_bfv_seeded(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    seed: Option<BfvSeed>,
) -> ReachResult {
    let start = Instant::now();
    arm_limits(m, opts);
    let space = fsm.space();
    let (mut reached, mut from, mut iterations) = match seed {
        Some((r, f, i)) => (r, f, i),
        None => {
            let init = match StateSet::singleton(m, &space, &fsm.initial_state()) {
                Ok(s) => s,
                Err(e) => {
                    let o = outcome_of_bfv_error(&e);
                    return failed_result(m, EngineKind::Bfv, o, start.elapsed());
                }
            };
            let Some(init) = init.as_bfv().cloned() else {
                // A singleton set is never empty; treat it as internal.
                return failed_result(m, EngineKind::Bfv, Outcome::Error, start.elapsed());
            };
            (init.clone(), init, 0usize)
        }
    };
    // Pin the loop state against mid-operation reclaim passes.
    let mut _state_guards = (reached.pin(m), from.pin(m));
    let mut per_iteration = Vec::new();
    let outcome = loop {
        if opts.max_iterations.is_some_and(|cap| iterations >= cap) {
            break Outcome::IterationLimit;
        }
        let iter_start = Instant::now();
        if m.check_deadline().is_err() {
            break Outcome::TimeOut;
        }
        let op_start = Instant::now();
        let img = match simulate_image_with(m, fsm, &from, opts.schedule) {
            Ok(img) => img,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let image_time = op_start.elapsed();
        let op_start = Instant::now();
        let new_reached = match ops::union(m, &space, &reached, &img) {
            Ok(u) => u,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let union_time = op_start.elapsed();
        iterations += 1;
        if new_reached.components() == reached.components() {
            break Outcome::FixedPoint;
        }
        reached = new_reached;
        // Selection heuristic (Figure 2): iterate from the smaller of the
        // image and the full reached set.
        from = if opts.use_frontier && img.shared_size(m) <= reached.shared_size(m) {
            img
        } else {
            reached.clone()
        };
        _state_guards = (reached.pin(m), from.pin(m));
        let mut roots: Vec<bfvr_bdd::Bdd> = reached.components().to_vec();
        roots.extend_from_slice(from.components());
        let gc = m.maybe_collect_garbage(&roots);
        notify_iteration(
            m,
            fsm,
            opts,
            &IterationView {
                engine: EngineKind::Bfv,
                iteration: iterations,
                roots: &roots,
                set: SetView::Vector {
                    reached: &reached,
                    from: &from,
                },
            },
            &IterMetrics {
                gc,
                elapsed: iter_start.elapsed(),
                conversion: std::time::Duration::ZERO,
                ops: &[("image", image_time), ("union", union_time)],
            },
            &mut per_iteration,
        );
    };
    let elapsed = start.elapsed();
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);
    let checkpoint = if outcome == Outcome::FixedPoint || outcome == Outcome::Error {
        None
    } else {
        Some(Checkpoint {
            engine: EngineKind::Bfv,
            iterations,
            state: CheckpointState::Vector {
                reached: reached.pin(m),
                from: from.pin(m),
            },
        })
    };
    // Post-run accounting (untimed): state count + χ for validation.
    let set = StateSet::NonEmpty(reached.clone());
    let chi = set.to_characteristic(m, &space).ok();
    let reached_states = chi.map(|chi| {
        m.sat_count(chi, m.num_vars()) / 2f64.powi(m.num_vars() as i32 - space.len() as i32)
    });
    ReachResult {
        engine: EngineKind::Bfv,
        outcome,
        iterations,
        reached_states,
        reached_chi: chi.map(|c| m.func(c)),
        representation_nodes: Some(reached.shared_size(m)),
        peak_nodes,
        elapsed,
        conversion_time: std::time::Duration::ZERO,
        per_iteration,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    fn run(net: &bfvr_netlist::Netlist) -> (BddManager, EncodedFsm, ReachResult) {
        let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
        let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        (m, fsm, r)
    }

    #[test]
    fn counter_reaches_all_states() {
        let (_, _, r) = run(&generators::counter(6));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(64.0));
        // One step per count plus the fix-point confirmation.
        assert!(r.iterations >= 64, "iterations = {}", r.iterations);
    }

    #[test]
    fn modk_counter_reaches_k_states() {
        let (_, _, r) = run(&generators::counter_modk(5, 11));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(11.0));
    }

    #[test]
    fn johnson_reaches_2n() {
        let (_, _, r) = run(&generators::johnson(7));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(14.0));
    }

    #[test]
    fn rotator_reaches_n() {
        let (_, _, r) = run(&generators::rotator(6));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(6.0));
    }

    #[test]
    fn lfsr_reaches_all_but_one() {
        let (_, _, r) = run(&generators::lfsr(5));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(31.0));
        assert_eq!(r.iterations, 31); // 30 growth steps + cycle-closing confirmation
    }

    #[test]
    fn paired_registers_reach_diagonal() {
        let (_, _, r) = run(&generators::paired_registers(5));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(32.0)); // 2^5 of 2^10
    }

    #[test]
    fn s27_reached_states() {
        let (_, _, r) = run(&bfvr_netlist::circuits::s27());
        assert_eq!(r.outcome, Outcome::FixedPoint);
        // s27 has 6 reachable states of 8 — a classic known result.
        assert_eq!(r.reached_states, Some(6.0));
        assert_eq!(r.conversion_time, std::time::Duration::ZERO);
    }

    #[test]
    fn iteration_cap_respected() {
        let net = generators::counter(8);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            max_iterations: Some(5),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::IterationLimit);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.reached_states, Some(6.0)); // init + 5 steps
    }

    #[test]
    fn node_limit_produces_memout() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            node_limit: Some(m.allocated() + 40),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::MemOut);
    }

    #[test]
    fn time_limit_produces_timeout() {
        let net = generators::gray(10);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            time_limit: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::TimeOut);
    }

    #[test]
    fn frontier_and_full_iteration_agree() {
        let net = generators::traffic_chain(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let rf = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let ra = reach_bfv(
            &mut m,
            &fsm,
            &ReachOptions {
                use_frontier: false,
                ..Default::default()
            },
        );
        assert_eq!(rf.reached_chi, ra.reached_chi);
        assert_eq!(rf.reached_states, ra.reached_states);
    }
}
