//! The paper's Figure 2 flow: reachability with Boolean functional
//! vectors only — symbolic simulation, re-parameterization, BFV union.

use bfvr_bdd::BddManager;
use bfvr_sim::EncodedFsm;

use crate::backends::BfvBackend;
use crate::common::{ReachOptions, ReachResult};
use crate::driver::run_fixed_point;
use crate::EngineKind;

/// Runs least-fixed-point reachability with the BFV engine.
///
/// ```
/// use bfvr_netlist::generators;
/// use bfvr_reach::{reach_bfv, ReachOptions};
/// use bfvr_sim::{EncodedFsm, OrderHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::johnson(6);
/// let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
/// let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
/// assert_eq!(r.reached_states, Some(12.0)); // 2n of 2^n states
/// # Ok(())
/// # }
/// ```
///
/// No characteristic function is constructed anywhere in the loop; the
/// fix-point test is componentwise BDD-handle equality, which canonicity
/// makes sound. The final `reached_chi`/state count are produced *after*
/// the timed region, purely for cross-engine validation.
pub fn reach_bfv(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    let mut backend = BfvBackend::new(fsm, opts.schedule);
    run_fixed_point(EngineKind::Bfv, &mut backend, m, fsm, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Outcome;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    fn run(net: &bfvr_netlist::Netlist) -> (BddManager, EncodedFsm, ReachResult) {
        let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
        let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        (m, fsm, r)
    }

    #[test]
    fn counter_reaches_all_states() {
        let (_, _, r) = run(&generators::counter(6));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(64.0));
        // One step per count plus the fix-point confirmation.
        assert!(r.iterations >= 64, "iterations = {}", r.iterations);
    }

    #[test]
    fn modk_counter_reaches_k_states() {
        let (_, _, r) = run(&generators::counter_modk(5, 11));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(11.0));
    }

    #[test]
    fn johnson_reaches_2n() {
        let (_, _, r) = run(&generators::johnson(7));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(14.0));
    }

    #[test]
    fn rotator_reaches_n() {
        let (_, _, r) = run(&generators::rotator(6));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(6.0));
    }

    #[test]
    fn lfsr_reaches_all_but_one() {
        let (_, _, r) = run(&generators::lfsr(5));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(31.0));
        assert_eq!(r.iterations, 31); // 30 growth steps + cycle-closing confirmation
    }

    #[test]
    fn paired_registers_reach_diagonal() {
        let (_, _, r) = run(&generators::paired_registers(5));
        assert_eq!(r.outcome, Outcome::FixedPoint);
        assert_eq!(r.reached_states, Some(32.0)); // 2^5 of 2^10
    }

    #[test]
    fn s27_reached_states() {
        let (_, _, r) = run(&bfvr_netlist::circuits::s27());
        assert_eq!(r.outcome, Outcome::FixedPoint);
        // s27 has 6 reachable states of 8 — a classic known result.
        assert_eq!(r.reached_states, Some(6.0));
        assert_eq!(r.conversion_time, std::time::Duration::ZERO);
    }

    #[test]
    fn iteration_cap_respected() {
        let net = generators::counter(8);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            max_iterations: Some(5),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::IterationLimit);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.reached_states, Some(6.0)); // init + 5 steps
    }

    #[test]
    fn node_limit_produces_memout() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            node_limit: Some(m.allocated() + 40),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::MemOut);
    }

    #[test]
    fn time_limit_produces_timeout() {
        let net = generators::gray(10);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let opts = ReachOptions {
            time_limit: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        let r = reach_bfv(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::TimeOut);
    }

    #[test]
    fn frontier_and_full_iteration_agree() {
        let net = generators::traffic_chain(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let rf = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let ra = reach_bfv(
            &mut m,
            &fsm,
            &ReachOptions {
                use_frontier: false,
                ..Default::default()
            },
        );
        assert_eq!(rf.reached_chi, ra.reached_chi);
        assert_eq!(rf.reached_states, ra.reached_states);
    }
}
