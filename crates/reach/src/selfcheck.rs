//! Per-iteration engine self-checks (the `audit` feature).
//!
//! With `--features audit`, [`crate::common::notify_iteration`] routes
//! every engine's iteration boundary through [`selfcheck_iteration`],
//! which runs the full [`bfvr_audit`] pass battery against the engine's
//! live set representation and panics on any [`bfvr_audit::Severity`]
//! `Error` finding — turning a silent representation bug into an
//! immediate, located failure at the iteration that introduced it.
//!
//! The audit's own scratch work must not be throttled by the engine's
//! resource budget (nor count against it): the manager's node limit and
//! deadline are suspended around the passes and restored afterwards. An
//! audit that still fails with a BDD error — possible only under injected
//! faults, which stay armed on purpose so sticky fault ordinals keep
//! their meaning — is *inconclusive* and skipped, never reported as a
//! finding.

use bfvr_audit::{run_passes, AuditTargets, Report};
use bfvr_bdd::BddManager;
use bfvr_sim::EncodedFsm;

use crate::common::IterationView;
use bfvr_setrepr::SetView;

/// Audits one iteration's set representation, panicking on any
/// `Severity::Error` finding. See the module docs for the
/// suspend/restore and inconclusive-skip semantics.
pub(crate) fn selfcheck_iteration(m: &mut BddManager, fsm: &EncodedFsm, view: &IterationView<'_>) {
    // Zonotope lanes over-approximate by design: the exactness invariants
    // the pass battery checks do not apply to them.
    if matches!(view.set, SetView::Zonotope { .. }) {
        return;
    }
    let space = fsm.space();

    let node_limit = m.node_limit();
    let deadline = m.deadline();
    m.clear_node_limit();
    m.set_deadline(None);

    // Pin for a χ derived from a lane-private representation (ZDD): keeps
    // it alive — and leak-pass-exempt — across the passes' collections.
    let _chi_guard;
    let targets = match view.set {
        SetView::Chi { reached, .. } => AuditTargets::for_chi(&space, reached),
        SetView::Vector { reached, .. } => AuditTargets::for_bfv(&space, reached),
        SetView::Cdec { reached, .. } => AuditTargets::for_cdec(&space, reached),
        SetView::Zdd { store, reached, .. } => {
            // Audit the lane through the production ZDD → χ converter.
            // A conversion failure is possible only under injected
            // faults: inconclusive, skip.
            let Ok(chi) = bfvr_bdd::bdd_from_zdd(m, store, reached, space.vars()) else {
                match node_limit {
                    Some(n) => m.set_node_limit(n),
                    None => m.clear_node_limit(),
                }
                m.set_deadline(deadline);
                return;
            };
            _chi_guard = m.func(chi);
            // Sweep the conversion's scratch so the leak pass sees only
            // what the engine itself left live.
            let mut roots = view.roots.to_vec();
            roots.push(chi);
            m.collect_garbage(&roots);
            AuditTargets::for_chi(&space, chi)
        }
        SetView::Zonotope { .. } => unreachable!("handled above"),
    }
    .with_leak_roots(view.roots);

    let scope = format!(
        "{}/iter[{}]",
        crate::common::lane_label(view.engine, view.repr),
        view.iteration
    );
    let mut report = Report::new();
    let run = run_passes(m, &targets, &scope, &mut report);

    // The passes derive representations and build violation BDDs; sweep
    // that scratch work away so the self-check leaves the heap exactly as
    // the engine's own collection established it — a later auditor (the
    // observer, or the next iteration's leak pass) must not see our
    // garbage as the engine's leak.
    m.collect_garbage(view.roots);

    match node_limit {
        Some(n) => m.set_node_limit(n),
        None => m.clear_node_limit(),
    }
    m.set_deadline(deadline);

    if run.is_ok() {
        assert!(
            !report.has_errors(),
            "audit self-check failed at {scope}:\n{}",
            report.render()
        );
    }
}
