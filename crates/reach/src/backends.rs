//! The concrete [`SetRepr`] backends the fixed-point driver runs on.
//!
//! Each backend packages one set representation — the transition
//! structure it needs for image computation, any lane-private stores,
//! and the conversion bridges — behind the [`bfvr_setrepr::SetRepr`]
//! trait, so the driver's loop (`driver.rs`) is written once:
//!
//! * [`ChiBackend`] — characteristic functions, in three image flavors
//!   (monolithic relational product, CBM constrain + range-splitting,
//!   IWLS95 partitioned early quantification);
//! * [`BfvBackend`] — the paper's Figure 2 flow on canonical Boolean
//!   functional vectors;
//! * [`CdecBackend`] — Figure 2 over McMillan's conjunctive
//!   decomposition (§2.7), carrying a companion vector for simulation;
//! * [`ZddBackend`] — zero-suppressed decision diagrams in a
//!   lane-private [`ZddStore`], bridged to any χ image flavor through
//!   the [`zdd_from_bdd`]/[`bdd_from_zdd`] converters;
//! * [`ZonotopeBackend`] — logical zonotopes (GF(2) affine subspaces),
//!   an over-approximating lane driven by affine symbolic simulation of
//!   the next-state functions.

use std::time::{Duration, Instant};

use bfvr_bdd::{bdd_from_zdd, zdd_from_bdd, Zdd, ZddStore};
use bfvr_bdd::{Bdd, BddManager, Func, Var};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::reparam::Schedule;
use bfvr_bfv::{convert, ops, Bfv, BfvError, Space, StateSet};
use bfvr_setrepr::zonotope::{AffineEvaluator, Zonotope};
use bfvr_setrepr::{ReprCheckpoint, ReprKind, SetRepr, SetView};
use bfvr_sim::{
    resolve_jobs, simulate_image_frozen, simulate_image_scratch, EncodedFsm, ImageScratch,
};

use crate::cf::{count_states, initial_chi};

/// Which χ image computation a [`ChiBackend`] (or the inner χ step of a
/// [`ZddBackend`]) runs. Built by [`ChiBackend::prepare`]; the `Func`
/// guards pinning the relations live in the backend.
enum ChiOp {
    /// One conjoined relation, one relational product per step.
    Monolithic {
        /// `T(v,u,w) = ⋀ᵢ (uᵢ ↔ δᵢ(v,w))`.
        t: Bdd,
        /// Quantification cube: current-state and input variables.
        cube: Bdd,
    },
    /// CBM: constrain the next-state functions by the from-set, then
    /// compute their range by recursive splitting (the χ↔BFV bridges
    /// the paper's Figure 2 flow eliminates; timed as conversion).
    Cbm {
        /// Next-state functions in component order.
        deltas: Vec<Bdd>,
        /// Next-state variables, component order.
        next_vars: Vec<Var>,
    },
    /// IWLS95: clustered partitioned relation with early quantification.
    Iwls {
        /// Scheduled clusters (relation + per-step retire cube).
        clusters: Vec<crate::iwls95::Cluster>,
        /// Cube of quantifiable variables no cluster mentions.
        presmooth: Bdd,
    },
}

/// Which [`ChiOp`] flavor a [`ChiBackend`] builds in `prepare`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChiFlavor {
    Monolithic,
    Cbm,
    Iwls95 { cluster_threshold: usize },
}

/// χ-based set representation: the three characteristic-function engines
/// share everything except the image step, so one backend hosts all
/// three flavors.
pub struct ChiBackend<'a> {
    fsm: &'a EncodedFsm,
    flavor: ChiFlavor,
    op: Option<ChiOp>,
    pairs: Vec<(Var, Var)>,
    /// Pins for the relations/cubes in `op`, so mid-operation reclaim
    /// passes and observer-forced collections never free them.
    guards: Vec<Func>,
    conversion: Duration,
}

impl<'a> ChiBackend<'a> {
    /// Monolithic-relation flavor ([`crate::reach_monolithic`]).
    #[must_use]
    pub fn monolithic(fsm: &'a EncodedFsm) -> Self {
        ChiBackend::new(fsm, ChiFlavor::Monolithic)
    }

    /// Coudert–Berthet–Madre flavor ([`crate::reach_cbm`]).
    #[must_use]
    pub fn cbm(fsm: &'a EncodedFsm) -> Self {
        ChiBackend::new(fsm, ChiFlavor::Cbm)
    }

    /// Partitioned-relation flavor ([`crate::reach_iwls95`]).
    #[must_use]
    pub fn iwls95(fsm: &'a EncodedFsm, cluster_threshold: usize) -> Self {
        ChiBackend::new(fsm, ChiFlavor::Iwls95 { cluster_threshold })
    }

    fn new(fsm: &'a EncodedFsm, flavor: ChiFlavor) -> Self {
        ChiBackend {
            fsm,
            flavor,
            op: None,
            pairs: fsm.swap_pairs(),
            guards: Vec::new(),
            conversion: Duration::ZERO,
        }
    }

    /// One χ image step with whatever flavor `prepare` built. Shared
    /// with [`ZddBackend`], whose image round-trips through χ.
    fn chi_image(&mut self, m: &mut BddManager, from: Bdd) -> Result<Bdd, BfvError> {
        let Some(op) = &self.op else {
            // `prepare` not run: no engine of this crate does that.
            return Err(BfvError::EmptySpace);
        };
        // Image of the empty set is empty for every flavor; the CBM
        // bridge in particular cannot constrain by an empty care set.
        if from.is_false() {
            return Ok(Bdd::FALSE);
        }
        let img = match op {
            ChiOp::Monolithic { t, cube } => {
                let img_u = m.and_exists(*t, from, *cube)?;
                m.swap_vars(img_u, &self.pairs)?
            }
            ChiOp::Cbm { deltas, next_vars } => {
                // χ → functional vector bridge: constrain δ by the care
                // set; vector → χ bridge: range by recursive splitting.
                let conv_start = Instant::now();
                let mut constrained = Vec::with_capacity(deltas.len());
                for &d in deltas {
                    constrained.push(m.constrain(d, from)?);
                }
                let img_u = crate::cbm::range_by_splitting(m, &constrained, next_vars)?;
                self.conversion += conv_start.elapsed();
                m.swap_vars(img_u, &self.pairs)?
            }
            ChiOp::Iwls {
                clusters,
                presmooth,
            } => {
                let mut acc = m.exists(from, *presmooth)?;
                for c in clusters {
                    acc = m.and_exists(acc, c.relation, c.retire_cube)?;
                }
                m.swap_vars(acc, &self.pairs)?
            }
        };
        Ok(img)
    }
}

impl SetRepr for ChiBackend<'_> {
    type Set = Bdd;

    fn kind(&self) -> ReprKind {
        ReprKind::Chi
    }

    /// χ state is plain BDD edges plus *semantic* [`Var`] lists
    /// (`pairs`, the CBM `next_vars`), which resolve their current
    /// levels at the manager's API boundary — so a sift pass between
    /// iterations preserves every captured function and the flavor's
    /// image stays correct under the permuted order.
    fn supports_reorder(&self) -> bool {
        true
    }

    fn prepare(&mut self, m: &mut BddManager) -> Result<(), BfvError> {
        let fsm = self.fsm;
        let op = match self.flavor {
            ChiFlavor::Monolithic => {
                let mut t = Bdd::TRUE;
                for l in 0..fsm.num_latches() {
                    let (_, u) = fsm.state_vars(l);
                    let uu = m.var(u);
                    let eq = m.xnor(uu, fsm.next_fn(l))?;
                    t = m.and(t, eq)?;
                }
                self.guards.push(m.func(t));
                let mut qvars: Vec<Var> = fsm.space().vars().to_vec();
                qvars.extend(fsm.input_vars());
                let cube = m.cube_from_vars(&qvars)?;
                self.guards.push(m.func(cube));
                ChiOp::Monolithic { t, cube }
            }
            ChiFlavor::Cbm => ChiOp::Cbm {
                deltas: fsm.next_fns_in_component_order(),
                next_vars: fsm.next_space().vars().to_vec(),
            },
            ChiFlavor::Iwls95 { cluster_threshold } => {
                let mut qvars: Vec<Var> = fsm.space().vars().to_vec();
                qvars.extend(fsm.input_vars());
                let raw = crate::iwls95::build_clusters(m, fsm, cluster_threshold)?;
                let clusters = crate::iwls95::schedule(m, raw, &qvars)?;
                for c in &clusters {
                    self.guards.push(m.func(c.relation));
                    self.guards.push(m.func(c.retire_cube));
                }
                // Variables in no cluster at all can be smoothed out of
                // the from-set up front (inputs the next-state logic
                // ignores, say).
                let unused: Vec<Var> = {
                    let mut used = bfvr_bdd::Support::empty(m.num_vars());
                    for c in &clusters {
                        used.union_with(&m.support(c.relation));
                    }
                    qvars
                        .iter()
                        .copied()
                        .filter(|&v| !used.contains(v))
                        .collect()
                };
                let presmooth = m.cube_from_vars(&unused)?;
                self.guards.push(m.func(presmooth));
                ChiOp::Iwls {
                    clusters,
                    presmooth,
                }
            }
        };
        self.op = Some(op);
        Ok(())
    }

    fn initial(&mut self, m: &mut BddManager) -> Result<Bdd, BfvError> {
        Ok(initial_chi(m, self.fsm)?)
    }

    fn image(&mut self, m: &mut BddManager, from: &Bdd) -> Result<Bdd, BfvError> {
        self.chi_image(m, *from)
    }

    fn union(&mut self, m: &mut BddManager, a: &Bdd, b: &Bdd) -> Result<Bdd, BfvError> {
        Ok(m.or(*a, *b)?)
    }

    fn set_eq(&self, _m: &BddManager, a: &Bdd, b: &Bdd) -> bool {
        a == b
    }

    fn size(&self, m: &BddManager, s: &Bdd) -> usize {
        m.size(*s)
    }

    fn append_roots(&self, s: &Bdd, out: &mut Vec<Bdd>) {
        out.push(*s);
    }

    fn persistent_roots(&self, out: &mut Vec<Bdd>) {
        match &self.op {
            Some(ChiOp::Monolithic { t, cube }) => out.extend([*t, *cube]),
            Some(ChiOp::Iwls { clusters, .. }) => {
                out.extend(clusters.iter().map(|c| c.relation));
            }
            Some(ChiOp::Cbm { .. }) | None => {}
        }
    }

    fn pin(&self, m: &BddManager, s: &Bdd) -> Vec<Func> {
        vec![m.func(*s)]
    }

    fn view<'b>(&'b self, reached: &'b Bdd, from: &'b Bdd) -> SetView<'b> {
        SetView::Chi {
            reached: *reached,
            from: *from,
        }
    }

    fn count_states(&self, m: &BddManager, s: &Bdd) -> Option<f64> {
        Some(count_states(m, self.fsm, *s))
    }

    fn to_chi(&mut self, _m: &mut BddManager, s: &Bdd) -> Result<Bdd, BfvError> {
        Ok(*s)
    }

    fn from_chi(&mut self, _m: &mut BddManager, chi: Bdd) -> Result<Option<Bdd>, BfvError> {
        Ok(Some(chi))
    }

    fn checkpoint(
        &mut self,
        m: &mut BddManager,
        reached: &Bdd,
        from: &Bdd,
    ) -> Result<ReprCheckpoint, BfvError> {
        Ok(ReprCheckpoint::Chi {
            reached: m.func(*reached),
            from: m.func(*from),
        })
    }

    fn restore(
        &mut self,
        _m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Option<(Bdd, Bdd)>, BfvError> {
        match cp {
            ReprCheckpoint::Chi { reached, from } => Ok(Some((reached.bdd(), from.bdd()))),
            _ => Ok(None),
        }
    }

    fn take_conversion(&mut self) -> Duration {
        std::mem::take(&mut self.conversion)
    }
}

/// The shared symbolic-simulation image machinery of the functional-
/// composition backends (BFV, CDEC): the reusable [`ImageScratch`]
/// buffers, and the opt-in frozen-function parallel path with its
/// per-phase timers and effective-parallelism report.
struct SimImage {
    schedule: Schedule,
    frozen: bool,
    jobs: usize,
    scratch: ImageScratch,
    phases: Vec<(&'static str, Duration)>,
    effective: Option<usize>,
}

impl SimImage {
    fn new(schedule: Schedule) -> Self {
        SimImage {
            schedule,
            frozen: false,
            jobs: 0,
            scratch: ImageScratch::default(),
            phases: Vec::new(),
            effective: None,
        }
    }

    fn set_parallel(&mut self, frozen: bool, jobs: usize) {
        self.frozen = frozen;
        // `--jobs` is a cap, not a demand: a pool wider than the machine
        // only serializes workers that then share no compose memo with
        // each other — pure duplicated work for a CPU-bound kernel. The
        // sim layer still honors an explicit width (its determinism
        // tests drive real multi-worker fan-out on any box); the engine
        // layer clamps to the cores that are actually there.
        self.jobs = resolve_jobs(jobs).min(resolve_jobs(0));
    }

    fn run(&mut self, m: &mut BddManager, fsm: &EncodedFsm, from: &Bfv) -> Result<Bfv, BfvError> {
        if self.frozen {
            let (img, ph, eff) =
                simulate_image_frozen(m, fsm, from, self.schedule, self.jobs, &mut self.scratch)?;
            self.phases.push(("freeze", ph.freeze));
            self.phases.push(("compose", ph.compose));
            self.phases.push(("intern", ph.intern));
            self.effective = Some(eff);
            Ok(img)
        } else {
            simulate_image_scratch(m, fsm, from, self.schedule, &mut self.scratch)
        }
    }
}

/// The paper's Figure 2 representation: canonical Boolean functional
/// vectors. No characteristic function is built anywhere in the loop;
/// the fixpoint test is componentwise handle equality, which canonicity
/// makes sound.
pub struct BfvBackend<'a> {
    fsm: &'a EncodedFsm,
    space: Space,
    sim: SimImage,
}

impl<'a> BfvBackend<'a> {
    /// A BFV backend simulating with the given re-parameterization
    /// schedule (§3).
    #[must_use]
    pub fn new(fsm: &'a EncodedFsm, schedule: Schedule) -> Self {
        BfvBackend {
            fsm,
            space: fsm.space(),
            sim: SimImage::new(schedule),
        }
    }

    /// Opts the image step into the frozen-function parallel backend
    /// with a `jobs`-thread pool (see [`crate::ReachOptions::frozen`]).
    #[must_use]
    pub fn with_parallel(mut self, frozen: bool, jobs: usize) -> Self {
        self.sim.set_parallel(frozen, jobs);
        self
    }
}

impl SetRepr for BfvBackend<'_> {
    type Set = Bfv;

    fn kind(&self) -> ReprKind {
        ReprKind::Bfv
    }

    fn initial(&mut self, m: &mut BddManager) -> Result<Bfv, BfvError> {
        let init = StateSet::singleton(m, &self.space, &self.fsm.initial_state())?;
        // A singleton set is never empty; treat absence as internal.
        init.as_bfv().cloned().ok_or(BfvError::EmptySpace)
    }

    fn image(&mut self, m: &mut BddManager, from: &Bfv) -> Result<Bfv, BfvError> {
        self.sim.run(m, self.fsm, from)
    }

    fn union(&mut self, m: &mut BddManager, a: &Bfv, b: &Bfv) -> Result<Bfv, BfvError> {
        ops::union(m, &self.space, a, b)
    }

    fn set_eq(&self, _m: &BddManager, a: &Bfv, b: &Bfv) -> bool {
        a.components() == b.components()
    }

    fn size(&self, m: &BddManager, s: &Bfv) -> usize {
        s.shared_size(m)
    }

    fn append_roots(&self, s: &Bfv, out: &mut Vec<Bdd>) {
        out.extend_from_slice(s.components());
    }

    fn pin(&self, m: &BddManager, s: &Bfv) -> Vec<Func> {
        s.pin(m)
    }

    fn view<'b>(&'b self, reached: &'b Bfv, from: &'b Bfv) -> SetView<'b> {
        SetView::Vector { reached, from }
    }

    fn count_states(&self, _m: &BddManager, _s: &Bfv) -> Option<f64> {
        None
    }

    fn to_chi(&mut self, m: &mut BddManager, s: &Bfv) -> Result<Bdd, BfvError> {
        convert::to_characteristic(m, &self.space, s)
    }

    fn from_chi(&mut self, m: &mut BddManager, chi: Bdd) -> Result<Option<Bfv>, BfvError> {
        convert::from_characteristic(m, &self.space, chi)
    }

    fn checkpoint(
        &mut self,
        m: &mut BddManager,
        reached: &Bfv,
        from: &Bfv,
    ) -> Result<ReprCheckpoint, BfvError> {
        Ok(ReprCheckpoint::Vector {
            reached: reached.pin(m),
            from: from.pin(m),
        })
    }

    fn restore(
        &mut self,
        _m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Option<(Bfv, Bfv)>, BfvError> {
        let ReprCheckpoint::Vector { reached, from } = cp else {
            return Ok(None);
        };
        let rv = Bfv::from_components(&self.space, reached.iter().map(Func::bdd).collect());
        let fv = Bfv::from_components(&self.space, from.iter().map(Func::bdd).collect());
        match (rv, fv) {
            (Ok(rv), Ok(fv)) => Ok(Some((rv, fv))),
            // A malformed vector cannot come from this crate's engines.
            _ => Ok(None),
        }
    }

    fn take_image_phases(&mut self) -> Vec<(&'static str, Duration)> {
        std::mem::take(&mut self.sim.phases)
    }

    fn effective_jobs(&self) -> Option<usize> {
        self.sim.effective
    }
}

/// A reached/from pair in the conjunctive-decomposition lane: the §2.7
/// constraint view for set algebra, plus the companion vector the
/// simulation image step consumes.
#[derive(Clone)]
pub struct CdecSet {
    /// The set as McMillan's conjunctive decomposition.
    dec: CDec,
    /// The same set as a functional vector (simulation input).
    bfv: Bfv,
}

/// Figure 2 flow storing sets as McMillan's conjunctive decomposition;
/// the per-step translations between the constraint and vector views are
/// reported as conversion time.
pub struct CdecBackend<'a> {
    fsm: &'a EncodedFsm,
    space: Space,
    sim: SimImage,
    conversion: Duration,
}

impl<'a> CdecBackend<'a> {
    /// A CDEC backend simulating with the given schedule.
    #[must_use]
    pub fn new(fsm: &'a EncodedFsm, schedule: Schedule) -> Self {
        CdecBackend {
            fsm,
            space: fsm.space(),
            sim: SimImage::new(schedule),
            conversion: Duration::ZERO,
        }
    }

    /// Opts the image step into the frozen-function parallel backend
    /// with a `jobs`-thread pool (see [`crate::ReachOptions::frozen`]).
    #[must_use]
    pub fn with_parallel(mut self, frozen: bool, jobs: usize) -> Self {
        self.sim.set_parallel(frozen, jobs);
        self
    }

    fn wrap(&mut self, m: &mut BddManager, bfv: Bfv) -> Result<CdecSet, BfvError> {
        let conv = Instant::now();
        let dec = CDec::from_bfv(m, &self.space, &bfv)?;
        self.conversion += conv.elapsed();
        Ok(CdecSet { dec, bfv })
    }
}

impl SetRepr for CdecBackend<'_> {
    type Set = CdecSet;

    fn kind(&self) -> ReprKind {
        ReprKind::Cdec
    }

    fn initial(&mut self, m: &mut BddManager) -> Result<CdecSet, BfvError> {
        let init = StateSet::singleton(m, &self.space, &self.fsm.initial_state())?;
        let bfv = init.as_bfv().cloned().ok_or(BfvError::EmptySpace)?;
        // The initial decomposition predates the loop: not conversion
        // time (parity with the dedicated engine's accounting).
        let dec = CDec::from_bfv(m, &self.space, &bfv)?;
        Ok(CdecSet { dec, bfv })
    }

    fn image(&mut self, m: &mut BddManager, from: &CdecSet) -> Result<CdecSet, BfvError> {
        let img = self.sim.run(m, self.fsm, &from.bfv)?;
        self.wrap(m, img)
    }

    fn union(&mut self, m: &mut BddManager, a: &CdecSet, b: &CdecSet) -> Result<CdecSet, BfvError> {
        let dec = a.dec.union(m, &self.space, &b.dec)?;
        // Back to the vector view for the next simulation step.
        let conv = Instant::now();
        let bfv = dec.to_bfv(m, &self.space)?;
        self.conversion += conv.elapsed();
        Ok(CdecSet { dec, bfv })
    }

    fn set_eq(&self, _m: &BddManager, a: &CdecSet, b: &CdecSet) -> bool {
        a.dec.constraints() == b.dec.constraints()
    }

    fn size(&self, m: &BddManager, s: &CdecSet) -> usize {
        s.bfv.shared_size(m)
    }

    fn repr_nodes(&self, m: &BddManager, s: &CdecSet) -> usize {
        s.dec.shared_size(m)
    }

    fn append_roots(&self, s: &CdecSet, out: &mut Vec<Bdd>) {
        out.extend_from_slice(s.dec.constraints());
        out.extend_from_slice(s.bfv.components());
    }

    fn pin(&self, m: &BddManager, s: &CdecSet) -> Vec<Func> {
        let mut pins: Vec<Func> = s.dec.constraints().iter().map(|&c| m.func(c)).collect();
        pins.extend(s.bfv.pin(m));
        pins
    }

    fn view<'b>(&'b self, reached: &'b CdecSet, from: &'b CdecSet) -> SetView<'b> {
        SetView::Cdec {
            reached: &reached.dec,
            from: &from.bfv,
        }
    }

    fn count_states(&self, _m: &BddManager, _s: &CdecSet) -> Option<f64> {
        None
    }

    fn to_chi(&mut self, m: &mut BddManager, s: &CdecSet) -> Result<Bdd, BfvError> {
        s.dec.conjoin_all(m)
    }

    fn from_chi(&mut self, m: &mut BddManager, chi: Bdd) -> Result<Option<CdecSet>, BfvError> {
        let Some(bfv) = convert::from_characteristic(m, &self.space, chi)? else {
            return Ok(None);
        };
        let dec = CDec::from_bfv(m, &self.space, &bfv)?;
        Ok(Some(CdecSet { dec, bfv }))
    }

    fn checkpoint(
        &mut self,
        m: &mut BddManager,
        reached: &CdecSet,
        from: &CdecSet,
    ) -> Result<ReprCheckpoint, BfvError> {
        Ok(ReprCheckpoint::Cdec {
            constraints: reached
                .dec
                .constraints()
                .iter()
                .map(|&c| m.func(c))
                .collect(),
            from: from.bfv.pin(m),
        })
    }

    fn restore(
        &mut self,
        m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Option<(CdecSet, CdecSet)>, BfvError> {
        let ReprCheckpoint::Cdec { constraints, from } = cp else {
            return Ok(None);
        };
        let dec = CDec::from_constraints(constraints.iter().map(Func::bdd).collect());
        let Ok(from_bfv) = Bfv::from_components(&self.space, from.iter().map(Func::bdd).collect())
        else {
            return Ok(None);
        };
        // The reached set needs its companion vector back for the
        // frontier heuristic; a conversion resume pays once.
        let reached_bfv = dec.to_bfv(m, &self.space)?;
        let from_dec = CDec::from_bfv(m, &self.space, &from_bfv)?;
        Ok(Some((
            CdecSet {
                dec,
                bfv: reached_bfv,
            },
            CdecSet {
                dec: from_dec,
                bfv: from_bfv,
            },
        )))
    }

    fn take_conversion(&mut self) -> Duration {
        std::mem::take(&mut self.conversion)
    }

    fn take_image_phases(&mut self) -> Vec<(&'static str, Duration)> {
        std::mem::take(&mut self.sim.phases)
    }

    fn effective_jobs(&self) -> Option<usize> {
        self.sim.effective
    }
}

/// Zero-suppressed decision diagrams in a lane-private [`ZddStore`],
/// with the image step round-tripping through an inner χ flavor: the
/// set algebra (union, fixpoint test, counting) runs zero-suppressed;
/// each image converts ZDD → χ, applies the χ image, and converts back.
/// Both conversions are timed as conversion cost — this lane exists to
/// measure exactly that trade.
pub struct ZddBackend<'a> {
    inner: ChiBackend<'a>,
    store: ZddStore,
    vars: Vec<Var>,
    conversion: Duration,
}

impl<'a> ZddBackend<'a> {
    /// A ZDD backend over the monolithic χ image.
    #[must_use]
    pub fn monolithic(fsm: &'a EncodedFsm) -> Self {
        ZddBackend::over(ChiBackend::monolithic(fsm))
    }

    /// A ZDD backend over the CBM χ image.
    #[must_use]
    pub fn cbm(fsm: &'a EncodedFsm) -> Self {
        ZddBackend::over(ChiBackend::cbm(fsm))
    }

    /// A ZDD backend over the IWLS95 χ image.
    #[must_use]
    pub fn iwls95(fsm: &'a EncodedFsm, cluster_threshold: usize) -> Self {
        ZddBackend::over(ChiBackend::iwls95(fsm, cluster_threshold))
    }

    fn over(inner: ChiBackend<'a>) -> Self {
        let vars: Vec<Var> = inner.fsm.space().vars().to_vec();
        let store = ZddStore::new(vars.len() as u32);
        ZddBackend {
            inner,
            store,
            vars,
            conversion: Duration::ZERO,
        }
    }

    /// Borrow of the lane-private store (tests and audits).
    #[must_use]
    pub fn store(&self) -> &ZddStore {
        &self.store
    }
}

impl SetRepr for ZddBackend<'_> {
    type Set = Zdd;

    fn kind(&self) -> ReprKind {
        ReprKind::Zdd
    }

    fn prepare(&mut self, m: &mut BddManager) -> Result<(), BfvError> {
        self.inner.prepare(m)
    }

    fn initial(&mut self, m: &mut BddManager) -> Result<Zdd, BfvError> {
        let chi = initial_chi(m, self.inner.fsm)?;
        Ok(zdd_from_bdd(m, &mut self.store, chi, &self.vars)?)
    }

    fn image(&mut self, m: &mut BddManager, from: &Zdd) -> Result<Zdd, BfvError> {
        let conv = Instant::now();
        let from_chi = bdd_from_zdd(m, &self.store, *from, &self.vars)?;
        self.conversion += conv.elapsed();
        // Pin the χ across the image step: a mid-operation reclaim pass
        // must not free it (the ZDD store roots nothing in the manager).
        let _from_guard = m.func(from_chi);
        let img_chi = self.inner.chi_image(m, from_chi)?;
        let _img_guard = m.func(img_chi);
        let conv = Instant::now();
        let img = zdd_from_bdd(m, &mut self.store, img_chi, &self.vars)?;
        self.conversion += conv.elapsed();
        Ok(img)
    }

    fn union(&mut self, _m: &mut BddManager, a: &Zdd, b: &Zdd) -> Result<Zdd, BfvError> {
        self.store.union(*a, *b).map_err(BfvError::Bdd)
    }

    fn set_eq(&self, _m: &BddManager, a: &Zdd, b: &Zdd) -> bool {
        // Zero-suppressed reduction is canonical: handle equality.
        a == b
    }

    fn size(&self, _m: &BddManager, s: &Zdd) -> usize {
        self.store.size(*s)
    }

    fn append_roots(&self, _s: &Zdd, _out: &mut Vec<Bdd>) {
        // ZDD sets live outside the manager; χ scratch from the image
        // bridge is garbage the moment the step ends, by design.
    }

    fn persistent_roots(&self, out: &mut Vec<Bdd>) {
        self.inner.persistent_roots(out);
    }

    fn pin(&self, _m: &BddManager, _s: &Zdd) -> Vec<Func> {
        Vec::new()
    }

    fn view<'b>(&'b self, reached: &'b Zdd, from: &'b Zdd) -> SetView<'b> {
        SetView::Zdd {
            store: &self.store,
            reached: *reached,
            from: *from,
        }
    }

    fn count_states(&self, _m: &BddManager, s: &Zdd) -> Option<f64> {
        Some(self.store.count(*s))
    }

    fn to_chi(&mut self, m: &mut BddManager, s: &Zdd) -> Result<Bdd, BfvError> {
        Ok(bdd_from_zdd(m, &self.store, *s, &self.vars)?)
    }

    fn from_chi(&mut self, m: &mut BddManager, chi: Bdd) -> Result<Option<Zdd>, BfvError> {
        Ok(Some(zdd_from_bdd(m, &mut self.store, chi, &self.vars)?))
    }

    fn checkpoint(
        &mut self,
        m: &mut BddManager,
        reached: &Zdd,
        from: &Zdd,
    ) -> Result<ReprCheckpoint, BfvError> {
        // ZDD node indexes are private to this lane's store; the
        // manager-stable canonical form is χ, shared with the χ lanes.
        let r = bdd_from_zdd(m, &self.store, *reached, &self.vars)?;
        let r_guard = m.func(r);
        let f = bdd_from_zdd(m, &self.store, *from, &self.vars)?;
        Ok(ReprCheckpoint::Chi {
            reached: r_guard,
            from: m.func(f),
        })
    }

    fn restore(
        &mut self,
        m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Option<(Zdd, Zdd)>, BfvError> {
        let ReprCheckpoint::Chi { reached, from } = cp else {
            return Ok(None);
        };
        let r = zdd_from_bdd(m, &mut self.store, reached.bdd(), &self.vars)?;
        let f = zdd_from_bdd(m, &mut self.store, from.bdd(), &self.vars)?;
        Ok(Some((r, f)))
    }

    fn end_of_iteration(&mut self, reached: &Zdd, from: &Zdd) {
        // Lane-private housekeeping: mark-sweep the store so dead
        // intermediate families do not accumulate across iterations.
        self.store.collect(&[*reached, *from]);
    }

    fn take_conversion(&mut self) -> Duration {
        std::mem::take(&mut self.conversion) + self.inner.take_conversion()
    }
}

/// Logical zonotopes: GF(2) affine subspaces in generator form. The
/// image step symbolically evaluates the next-state functions over
/// affine forms (XOR is exact; AND introduces a fresh generator unless
/// a closed form applies), so every image is a superset of the exact
/// image and the fixed point over-approximates the reached set. The
/// lane trades exactness for images that never build BDDs at all.
pub struct ZonotopeBackend<'a> {
    fsm: &'a EncodedFsm,
    vars: Vec<Var>,
}

impl<'a> ZonotopeBackend<'a> {
    /// A zonotope backend for the FSM's state space.
    #[must_use]
    pub fn new(fsm: &'a EncodedFsm) -> Self {
        ZonotopeBackend {
            fsm,
            vars: fsm.space().vars().to_vec(),
        }
    }
}

impl SetRepr for ZonotopeBackend<'_> {
    type Set = Zonotope;

    fn kind(&self) -> ReprKind {
        ReprKind::Zonotope
    }

    fn initial(&mut self, _m: &mut BddManager) -> Result<Zonotope, BfvError> {
        Ok(Zonotope::point(&self.fsm.initial_state()))
    }

    fn image(&mut self, m: &mut BddManager, from: &Zonotope) -> Result<Zonotope, BfvError> {
        // Fresh evaluator per step: generators are relative to `from`.
        let mut eval = AffineEvaluator::new(from.rank());
        for (i, &v) in self.vars.iter().enumerate() {
            eval.bind(v, from.bit_form(i));
        }
        let forms: Vec<_> = self
            .fsm
            .next_fns_in_component_order()
            .into_iter()
            .map(|f| eval.eval(m, f))
            .collect();
        Ok(Zonotope::from_forms(&forms, eval.gen_count()))
    }

    fn union(
        &mut self,
        _m: &mut BddManager,
        a: &Zonotope,
        b: &Zonotope,
    ) -> Result<Zonotope, BfvError> {
        // The affine hull of the union: the representation's join.
        Ok(a.join(b))
    }

    fn set_eq(&self, _m: &BddManager, a: &Zonotope, b: &Zonotope) -> bool {
        // Generator matrices are kept in canonical RREF form.
        a == b
    }

    fn size(&self, _m: &BddManager, s: &Zonotope) -> usize {
        // Generator rows plus the center — the representation's own
        // footprint (there are no BDD nodes to count).
        s.rank() + 1
    }

    fn append_roots(&self, _s: &Zonotope, _out: &mut Vec<Bdd>) {}

    fn pin(&self, _m: &BddManager, _s: &Zonotope) -> Vec<Func> {
        Vec::new()
    }

    fn view<'b>(&'b self, reached: &'b Zonotope, from: &'b Zonotope) -> SetView<'b> {
        SetView::Zonotope { reached, from }
    }

    fn count_states(&self, _m: &BddManager, s: &Zonotope) -> Option<f64> {
        Some(s.count())
    }

    fn to_chi(&mut self, m: &mut BddManager, s: &Zonotope) -> Result<Bdd, BfvError> {
        Ok(s.to_chi(m, &self.vars)?)
    }

    fn from_chi(&mut self, m: &mut BddManager, chi: Bdd) -> Result<Option<Zonotope>, BfvError> {
        Ok(Zonotope::hull_of_chi(m, chi, &self.vars, 1024))
    }

    fn checkpoint(
        &mut self,
        _m: &mut BddManager,
        reached: &Zonotope,
        from: &Zonotope,
    ) -> Result<ReprCheckpoint, BfvError> {
        Ok(ReprCheckpoint::Zonotope {
            reached: reached.clone(),
            from: from.clone(),
        })
    }

    fn restore(
        &mut self,
        _m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Option<(Zonotope, Zonotope)>, BfvError> {
        match cp {
            ReprCheckpoint::Zonotope { reached, from } => Ok(Some((reached.clone(), from.clone()))),
            _ => Ok(None),
        }
    }

    fn over_approximates(&self) -> bool {
        true
    }
}
