//! Monolithic transition-relation reachability (characteristic functions).

use std::time::Instant;

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_sim::EncodedFsm;

use crate::common::{
    arm_limits, disarm_limits, notify_iteration, outcome_of_bdd_error, Checkpoint, CheckpointState,
    IterMetrics, IterationView, Outcome, ReachOptions, ReachResult, SetView,
};
use crate::EngineKind;

/// Internal: the χ-engine resume seed — reached set, iteration start set
/// and the number of iterations already completed.
pub(crate) type ChiSeed = (Bdd, Bdd, usize);

/// Internal: checkpoint a χ-based engine's partial traversal, unless it
/// never got past the empty set (resuming from ⊥ would instantly — and
/// wrongly — report an empty fixed point).
pub(crate) fn chi_checkpoint(
    m: &BddManager,
    engine: EngineKind,
    outcome: Outcome,
    iterations: usize,
    reached: Bdd,
    from: Bdd,
) -> Option<Checkpoint> {
    if outcome == Outcome::FixedPoint || outcome == Outcome::Error || reached.is_false() {
        return None;
    }
    Some(Checkpoint {
        engine,
        iterations,
        state: CheckpointState::Chi {
            reached: m.func(reached),
            from: m.func(from),
        },
    })
}

/// Builds the cube of the initial state over the current-state variables.
pub(crate) fn initial_chi(m: &mut BddManager, fsm: &EncodedFsm) -> Result<Bdd, bfvr_bdd::BddError> {
    let space = fsm.space();
    let bits = fsm.initial_state();
    let mut chi = Bdd::TRUE;
    for (c, &v) in space.vars().iter().enumerate() {
        let lit = if bits[c] { m.var(v) } else { m.nvar(v) };
        chi = m.and(chi, lit)?;
    }
    Ok(chi)
}

/// Counts states of a χ over the current-state variables.
pub(crate) fn count_states(m: &BddManager, fsm: &EncodedFsm, chi: Bdd) -> f64 {
    let n = fsm.space().len() as i32;
    m.sat_count(chi, m.num_vars()) / 2f64.powi(m.num_vars() as i32 - n)
}

/// Runs reachability with one monolithic transition relation
/// `T(v,u,w) = ⋀ᵢ (uᵢ ↔ δᵢ(v,w))` and one relational product per step.
pub fn reach_monolithic(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    reach_monolithic_seeded(m, fsm, opts, None)
}

/// The monolithic traversal, optionally resumed from a checkpoint seed.
pub(crate) fn reach_monolithic_seeded(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    seed: Option<ChiSeed>,
) -> ReachResult {
    let start = Instant::now();
    arm_limits(m, opts);
    let mut per_iteration = Vec::new();
    let mut iterations = seed.map_or(0, |(_, _, i)| i);
    let mut reached = Bdd::FALSE;
    let mut from = Bdd::FALSE;
    let mut outcome_opt = None;
    // Quantification cube: all current-state and input variables.
    let run = (|| -> Result<(), bfvr_bdd::BddError> {
        let mut t = Bdd::TRUE;
        for l in 0..fsm.num_latches() {
            let (_, u) = fsm.state_vars(l);
            let uu = m.var(u);
            let eq = m.xnor(uu, fsm.next_fn(l))?;
            t = m.and(t, eq)?;
        }
        let _t_guard = m.func(t);
        let mut qvars: Vec<Var> = fsm.space().vars().to_vec();
        qvars.extend(fsm.input_vars());
        let cube = m.cube_from_vars(&qvars)?;
        let _cube_guard = m.func(cube);
        let pairs = fsm.swap_pairs();
        (reached, from) = match seed {
            Some((r, f, _)) => (r, f),
            None => {
                let init = initial_chi(m, fsm)?;
                (init, init)
            }
        };
        // Pin the loop state so a mid-operation reclaim pass (or the
        // boundary collection) can never free it; rebound every iteration.
        let mut _state_guards = (m.func(reached), m.func(from));
        loop {
            if opts.max_iterations.is_some_and(|cap| iterations >= cap) {
                outcome_opt = Some(Outcome::IterationLimit);
                return Ok(());
            }
            let iter_start = Instant::now();
            m.check_deadline()?;
            let op_start = Instant::now();
            let img_u = m.and_exists(t, from, cube)?;
            let img = m.swap_vars(img_u, &pairs)?;
            let image_time = op_start.elapsed();
            let op_start = Instant::now();
            let new_reached = m.or(reached, img)?;
            let union_time = op_start.elapsed();
            iterations += 1;
            if new_reached == reached {
                return Ok(());
            }
            reached = new_reached;
            from = if opts.use_frontier && m.size(img) <= m.size(reached) {
                img
            } else {
                reached
            };
            _state_guards = (m.func(reached), m.func(from));
            let roots = [reached, from, t, cube];
            let gc = m.maybe_collect_garbage(&roots);
            notify_iteration(
                m,
                fsm,
                opts,
                &IterationView {
                    engine: EngineKind::Monolithic,
                    iteration: iterations,
                    roots: &roots,
                    set: SetView::Chi { reached, from },
                },
                &IterMetrics {
                    gc,
                    elapsed: iter_start.elapsed(),
                    conversion: std::time::Duration::ZERO,
                    ops: &[("image", image_time), ("union", union_time)],
                },
                &mut per_iteration,
            );
        }
    })();
    let outcome = match (&run, outcome_opt) {
        (_, Some(o)) => o,
        (Ok(()), None) => Outcome::FixedPoint,
        (Err(e), None) => outcome_of_bdd_error(e),
    };
    let elapsed = start.elapsed();
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);
    let checkpoint = chi_checkpoint(
        m,
        EngineKind::Monolithic,
        outcome,
        iterations,
        reached,
        from,
    );
    ReachResult {
        engine: EngineKind::Monolithic,
        outcome,
        iterations,
        reached_states: Some(count_states(m, fsm, reached)),
        reached_chi: Some(m.func(reached)),
        representation_nodes: Some(m.size(reached)),
        peak_nodes,
        elapsed,
        conversion_time: std::time::Duration::ZERO,
        per_iteration,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach_bfv;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn monolithic_counts_match_known_values() {
        for (net, expect) in [
            (generators::counter(5), 32.0),
            (generators::counter_modk(4, 9), 9.0),
            (generators::johnson(5), 10.0),
            (bfvr_netlist::circuits::s27(), 6.0),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let r = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(r.reached_states, Some(expect), "{}", net.name());
        }
    }

    #[test]
    fn monolithic_agrees_with_bfv_engine() {
        for net in [
            generators::shift_register(6),
            generators::queue_controller(2),
            generators::rotator(5),
            generators::traffic_chain(2),
            generators::paired_registers(4),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            let b = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint);
            assert_eq!(b.outcome, Outcome::FixedPoint);
            assert_eq!(a.reached_chi, b.reached_chi, "{} sets differ", net.name());
        }
    }

    #[test]
    fn initial_chi_is_singleton() {
        let net = generators::rotator(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let chi = initial_chi(&mut m, &fsm).unwrap();
        assert_eq!(count_states(&m, &fsm, chi), 1.0);
    }
}
