//! Monolithic transition-relation reachability (characteristic functions).

use bfvr_bdd::{Bdd, BddManager};
use bfvr_sim::EncodedFsm;

use crate::backends::ChiBackend;
use crate::common::{ReachOptions, ReachResult};
use crate::driver::run_fixed_point;
use crate::EngineKind;

/// Builds the cube of the initial state over the current-state variables.
pub(crate) fn initial_chi(m: &mut BddManager, fsm: &EncodedFsm) -> Result<Bdd, bfvr_bdd::BddError> {
    let space = fsm.space();
    let bits = fsm.initial_state();
    let mut chi = Bdd::TRUE;
    for (c, &v) in space.vars().iter().enumerate() {
        let lit = if bits[c] { m.var(v) } else { m.nvar(v) };
        chi = m.and(chi, lit)?;
    }
    Ok(chi)
}

/// Counts states of a χ over the current-state variables.
pub(crate) fn count_states(m: &BddManager, fsm: &EncodedFsm, chi: Bdd) -> f64 {
    let n = fsm.space().len() as i32;
    m.sat_count(chi, m.num_vars()) / 2f64.powi(m.num_vars() as i32 - n)
}

/// Runs reachability with one monolithic transition relation
/// `T(v,u,w) = ⋀ᵢ (uᵢ ↔ δᵢ(v,w))` and one relational product per step.
pub fn reach_monolithic(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    let mut backend = ChiBackend::monolithic(fsm);
    run_fixed_point(EngineKind::Monolithic, &mut backend, m, fsm, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Outcome;
    use crate::reach_bfv;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn monolithic_counts_match_known_values() {
        for (net, expect) in [
            (generators::counter(5), 32.0),
            (generators::counter_modk(4, 9), 9.0),
            (generators::johnson(5), 10.0),
            (bfvr_netlist::circuits::s27(), 6.0),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let r = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(r.reached_states, Some(expect), "{}", net.name());
        }
    }

    #[test]
    fn monolithic_agrees_with_bfv_engine() {
        for net in [
            generators::shift_register(6),
            generators::queue_controller(2),
            generators::rotator(5),
            generators::traffic_chain(2),
            generators::paired_registers(4),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            let b = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint);
            assert_eq!(b.outcome, Outcome::FixedPoint);
            assert_eq!(a.reached_chi, b.reached_chi, "{} sets differ", net.name());
        }
    }

    #[test]
    fn initial_chi_is_singleton() {
        let net = generators::rotator(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let chi = initial_chi(&mut m, &fsm).unwrap();
        assert_eq!(count_states(&m, &fsm, chi), 1.0);
    }
}
