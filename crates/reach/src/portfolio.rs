//! Portfolio drivers: budget escalation and engine racing.
//!
//! **Escalation.** A run that ends in `T.O.`/`M.O.` (the paper's Table 2
//! failure cells) has still computed a prefix of the reachable set.
//! Instead of restarting from scratch with a bigger machine,
//! [`run_escalating`] resumes the traversal from the [`crate::Checkpoint`] it
//! returned, multiplying the node/time budgets by a fixed factor each
//! round until the fixed point is reached, a budget ceiling is hit, or
//! the round cap runs out. Internal errors ([`Outcome::Error`]) are never
//! retried — a bug does not go away with a bigger budget.
//!
//! **Racing.** The paper's Table 2 story is that different engines win on
//! different circuits, and no static chooser predicts the winner.
//! [`run_racing`] runs a set of engine × representation lanes (see
//! [`Lane`]) concurrently on the same netlist and returns the first fixed
//! point any *exact* lane reaches — over-approximating lanes (zonotopes)
//! report early bounds but never win or cancel exact lanes. Because
//! [`BddManager`] is deliberately `!Send` (its [`bfvr_bdd::Func`] root
//! handles share an `Rc` root table), each lane runs a *private* manager
//! built by encoding the netlist in its own worker thread — there is no
//! shared mutable BDD state and therefore no locking on the op-cache and
//! unique-table hot paths. Losers are cancelled cooperatively: the winner
//! trips a shared [`AtomicBool`] that every manager polls at the same
//! points as its deadline (each fixed-point iteration and every few
//! thousand node allocations), so a cancelled lane unwinds as a clean
//! `T.O.`-shaped partial result, never an error.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bfvr_bdd::BddManager;
use bfvr_netlist::Netlist;
use bfvr_sim::{EncodedFsm, OrderHeuristic};

use crate::common::lane_label;
use crate::{
    resume, run_repr, EngineKind, IterationStats, Outcome, ReachOptions, ReachResult, ReprKind,
};

/// One engine × representation × ordering lane of a race: which image
/// computation runs, which set representation it iterates on, and —
/// optionally — a variable order overriding the race-wide base
/// ([`ReachOptions::order`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lane {
    /// The engine driving the image computation.
    pub engine: EngineKind,
    /// The set representation the fixed-point loop iterates on.
    pub repr: ReprKind,
    /// Variable-ordering override for this lane's private encoding;
    /// `None` inherits [`ReachOptions::order`].
    pub order: Option<OrderHeuristic>,
}

impl Lane {
    /// An engine on its native representation (the classic race lane).
    #[must_use]
    pub fn native(engine: EngineKind) -> Self {
        Lane {
            engine,
            repr: engine.native_repr(),
            order: None,
        }
    }

    /// An explicit engine × representation pair.
    #[must_use]
    pub fn new(engine: EngineKind, repr: ReprKind) -> Self {
        Lane {
            engine,
            repr,
            order: None,
        }
    }

    /// This lane with an explicit variable-ordering override — the third
    /// axis of the portfolio (engine × repr × ordering).
    #[must_use]
    pub fn with_order(mut self, order: OrderHeuristic) -> Self {
        self.order = Some(order);
        self
    }

    /// The lane's display label (`BFV`, `MONO+ZDD`, `BFV+ZONO`, …).
    /// Ordering overrides do not change the label (the trace schema keys
    /// race events by static engine labels); use [`Lane::display`] where
    /// the override matters.
    #[must_use]
    pub fn label(self) -> &'static str {
        lane_label(self.engine, self.repr)
    }

    /// The lane's full display name: the label, tagged `@ORDER` when the
    /// lane overrides the race's base order (`MONO+ZDD@COI`, `BFV@FORCE`).
    #[must_use]
    pub fn display(self) -> String {
        match self.order {
            Some(o) => format!("{}@{}", self.label(), o.label()),
            None => self.label().to_string(),
        }
    }

    /// Whether this lane's results may over-approximate the reached set.
    #[must_use]
    pub fn over_approximates(self) -> bool {
        self.repr.over_approximates()
    }

    /// Every engine on its native representation, in [`EngineKind::all`]
    /// order — the pre-representation race portfolio.
    #[must_use]
    pub fn native_lanes() -> Vec<Lane> {
        EngineKind::all().into_iter().map(Lane::native).collect()
    }

    /// The full engine × supported-representation matrix (native lanes
    /// first per engine, then the cross-representation lanes).
    #[must_use]
    pub fn all_lanes() -> Vec<Lane> {
        EngineKind::all()
            .into_iter()
            .flat_map(|e| e.supported_reprs().iter().map(move |&r| Lane::new(e, r)))
            .collect()
    }
}

/// How to raise budgets between escalation rounds.
#[derive(Clone, Debug)]
pub struct EscalationPolicy {
    /// Multiplier applied to the node and time budgets on every retry
    /// (must be > 1 to make progress; values ≤ 1 are treated as 2).
    pub factor: f64,
    /// Maximum number of retries after the initial run.
    pub max_rounds: usize,
    /// Hard ceiling on the node budget: escalation stops raising past
    /// it, and gives up once a capped run still exhausts.
    pub max_node_budget: Option<usize>,
    /// Hard ceiling on the time budget.
    pub max_time_budget: Option<Duration>,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy {
            factor: 2.0,
            max_rounds: 8,
            max_node_budget: None,
            max_time_budget: None,
        }
    }
}

/// One row of the escalation log.
#[derive(Clone, Debug)]
pub struct EscalationRound {
    /// Outcome of this round's (partial) run.
    pub outcome: Outcome,
    /// Cumulative image iterations after this round.
    pub iterations: usize,
    /// Node budget this round ran under.
    pub node_limit: Option<usize>,
    /// Time budget this round ran under.
    pub time_limit: Option<Duration>,
    /// Whether this round continued from a checkpoint (as opposed to
    /// starting from scratch).
    pub resumed: bool,
}

/// The escalation driver's verdict: the final result plus the per-round
/// log (round 0 is the initial run).
#[derive(Clone, Debug)]
pub struct EscalationReport {
    /// Result of the last round — final if its outcome is not a
    /// resource exhaustion, best-effort partial otherwise.
    pub result: ReachResult,
    /// One entry per round, in order.
    pub rounds: Vec<EscalationRound>,
}

impl EscalationReport {
    /// Whether the traversal eventually completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.result.outcome == Outcome::FixedPoint
    }
}

/// Raises the budgets in `opts` by the policy factor, respecting the
/// ceilings. Returns `false` when no budget could be raised any further
/// (both already at their ceilings, or no budget is set at all) — the
/// signal to stop escalating.
fn raise_budgets(opts: &mut ReachOptions, policy: &EscalationPolicy) -> bool {
    let factor = if policy.factor > 1.0 {
        policy.factor
    } else {
        2.0
    };
    let mut raised = false;
    if let Some(n) = opts.node_limit {
        let mut next = ((n as f64) * factor).ceil() as usize;
        next = next.max(n + 1);
        if let Some(cap) = policy.max_node_budget {
            next = next.min(cap);
        }
        if next > n {
            opts.node_limit = Some(next);
            raised = true;
        }
    }
    if let Some(t) = opts.time_limit {
        let mut next = t.mul_f64(factor);
        if let Some(cap) = policy.max_time_budget {
            next = next.min(cap);
        }
        if next > t {
            opts.time_limit = Some(next);
            raised = true;
        }
    }
    raised
}

/// Runs `kind` under `opts`, then — while the outcome is a resource
/// exhaustion and budgets can still be raised — resumes from the
/// returned checkpoint with the budgets multiplied by
/// [`EscalationPolicy::factor`].
///
/// A round that exhausts without leaving a checkpoint (it failed before
/// completing a single iteration) is restarted from scratch under the
/// raised budgets instead.
pub fn run_escalating(
    kind: EngineKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    policy: &EscalationPolicy,
) -> EscalationReport {
    run_escalating_repr(kind, kind.native_repr(), m, fsm, opts, policy)
}

/// [`run_escalating`] for an explicit engine × representation lane:
/// every round (initial, resumed, restarted) re-enters the same lane.
pub fn run_escalating_repr(
    kind: EngineKind,
    repr: ReprKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    policy: &EscalationPolicy,
) -> EscalationReport {
    let mut opts = opts.clone();
    let mut result = run_repr(kind, repr, m, fsm, &opts);
    let mut rounds = vec![EscalationRound {
        outcome: result.outcome,
        iterations: result.iterations,
        node_limit: opts.node_limit,
        time_limit: opts.time_limit,
        resumed: false,
    }];
    for _ in 0..policy.max_rounds {
        if !result.outcome.is_resource_exhaustion() {
            break;
        }
        if !raise_budgets(&mut opts, policy) {
            break;
        }
        let checkpoint = result.checkpoint.take();
        let resumed = checkpoint.is_some();
        result = match checkpoint {
            Some(c) => resume(m, fsm, &opts, c),
            None => run_repr(kind, repr, m, fsm, &opts),
        };
        rounds.push(EscalationRound {
            outcome: result.outcome,
            iterations: result.iterations,
            node_limit: opts.node_limit,
            time_limit: opts.time_limit,
            resumed,
        });
    }
    if let Some(trace) = &opts.trace {
        let mut t = trace.borrow_mut();
        for (i, round) in rounds.iter().enumerate() {
            t.round(
                lane_label(kind, repr),
                i as u64,
                round.outcome.label(),
                round.resumed,
                round.node_limit.map(|n| n as u64),
                round.time_limit.map(|d| d.as_micros() as u64),
            );
        }
    }
    EscalationReport { result, rounds }
}

/// Tuning for [`run_racing`].
#[derive(Clone, Debug, Default)]
pub struct RaceConfig {
    /// Worker-thread cap: at most this many lanes run at once (`0` means
    /// one thread per engine). Lanes beyond the cap queue and start as
    /// threads free up; queued lanes are skipped outright once a winner
    /// has been declared.
    pub jobs: usize,
    /// When set, every lane runs under [`run_escalating`] with this
    /// policy instead of a single [`crate::run`] — the race then composes with
    /// budget escalation (`--race --escalate` in the CLI).
    pub escalation: Option<EscalationPolicy>,
}

/// One engine × representation lane's report in a race.
#[derive(Clone, Debug)]
pub struct LaneReport {
    /// The engine this lane ran.
    pub engine: EngineKind,
    /// The set representation the lane iterated on.
    pub repr: ReprKind,
    /// The variable-ordering heuristic the lane's private encoding used
    /// (its override if it had one, else the race's base order).
    pub order: OrderHeuristic,
    /// Whether the lane's reached-state count may over-approximate
    /// (zonotope lanes). Over-approximating lanes never win a race.
    pub over_approx: bool,
    /// How the lane's traversal ended; `None` when the lane was skipped
    /// because the race was already decided before it could start.
    pub outcome: Option<Outcome>,
    /// Image iterations the lane completed.
    pub iterations: usize,
    /// States the lane had reached when it stopped.
    pub reached_states: Option<f64>,
    /// Final representation size (completed lanes only).
    pub representation_nodes: Option<usize>,
    /// Peak allocated nodes in the lane's private manager.
    pub peak_nodes: usize,
    /// Lane wall time, including its private FSM encoding.
    pub elapsed: Duration,
    /// Escalation rounds the lane ran (1 without an escalation policy).
    pub rounds: usize,
    /// Whether the lane was stopped by the race (a winner finished first)
    /// rather than by its own budget. Cancellation rides the deadline
    /// path, so a cancelled lane reports [`Outcome::TimeOut`] — never
    /// [`Outcome::Error`].
    pub cancelled: bool,
    /// Effective worker count of the lane's frozen image pool (`None`
    /// when the lane ran the sequential image path). Racing lanes run
    /// their frozen pools single-threaded — the race already owns the
    /// thread budget — so this reports the parallelism actually used,
    /// not the `--jobs` request.
    pub frozen_jobs: Option<usize>,
    /// Dynamic reorder (sift) passes the lane's driver triggered; zero
    /// unless the lane requested sifting and its representation supports
    /// it ([`bfvr_setrepr::SetRepr::supports_reorder`]).
    pub reorders: usize,
}

/// The race's verdict: the winning result plus every lane's report.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The winner's result — the first lane to reach its fixed point, or
    /// the best partial result when none did (completion beats iteration
    /// cap beats resource exhaustion; ties go to the lane with more
    /// iterations). `None` only when `lanes` was empty.
    ///
    /// The result crosses a thread boundary, so the fields that hold
    /// manager-owned state ([`ReachResult::reached_chi`] and
    /// [`ReachResult::checkpoint`]) are always `None`: the lane's private
    /// manager — and every `Func` rooted in it — dies with its thread.
    /// Race when you want the answer fast; run a single engine when you
    /// need the reached set itself afterwards.
    pub result: Option<ReachResult>,
    /// Index into `lanes` of the lane that produced [`RaceReport::result`].
    pub winner: Option<usize>,
    /// One report per lane, in the order given.
    pub lanes: Vec<LaneReport>,
    /// Wall time of the whole race.
    pub elapsed: Duration,
}

/// The `Send`able subset of [`ReachOptions`] shipped to lane threads: the
/// per-iteration observer is an `Rc` callback and stays on the caller's
/// thread (lanes run unobserved), and the tracer is `!Send` — lanes get
/// only its sampling stride and rebuild a private collector tracer.
#[derive(Clone, Copy)]
struct LaneOpts {
    node_limit: Option<usize>,
    time_limit: Option<Duration>,
    cache_limit: Option<usize>,
    max_iterations: Option<usize>,
    order: OrderHeuristic,
    schedule: bfvr_bfv::reparam::Schedule,
    cluster_threshold: usize,
    use_frontier: bool,
    frozen: bool,
    sift: bool,
    sift_max_growth: f64,
    sift_trigger: f64,
    record_iterations: bool,
    /// `Some(stride)` when the race driver traces: the lane records its
    /// own stream into a collector tracer and ships the events home.
    trace_sample: Option<u64>,
}

impl LaneOpts {
    fn of(opts: &ReachOptions) -> Self {
        LaneOpts {
            node_limit: opts.node_limit,
            time_limit: opts.time_limit,
            cache_limit: opts.cache_limit,
            max_iterations: opts.max_iterations,
            order: opts.order,
            schedule: opts.schedule,
            cluster_threshold: opts.cluster_threshold,
            use_frontier: opts.use_frontier,
            frozen: opts.frozen,
            sift: opts.sift,
            sift_max_growth: opts.sift_max_growth,
            sift_trigger: opts.sift_trigger,
            record_iterations: opts.record_iterations,
            trace_sample: opts.trace.as_ref().map(|t| t.borrow().sample_every()),
        }
    }

    fn into_options(self) -> ReachOptions {
        ReachOptions {
            node_limit: self.node_limit,
            time_limit: self.time_limit,
            cache_limit: self.cache_limit,
            max_iterations: self.max_iterations,
            order: self.order,
            schedule: self.schedule,
            cluster_threshold: self.cluster_threshold,
            use_frontier: self.use_frontier,
            frozen: self.frozen,
            // Racing lanes keep their frozen pools single-threaded: the
            // race itself owns the machine's thread budget (`--jobs`
            // caps *lanes* there), so a frozen racing lane exercises the
            // frozen kernel without oversubscribing the pool.
            jobs: 1,
            sift: self.sift,
            sift_max_growth: self.sift_max_growth,
            sift_trigger: self.sift_trigger,
            record_iterations: self.record_iterations,
            observer: None,
            trace: self
                .trace_sample
                .map(|s| crate::telemetry::trace_handle(bfvr_obs::Tracer::collector(s))),
            // Periodic durable checkpointing is a single-lane facility:
            // the hook is an `Rc` callback and cannot cross the lane
            // thread boundary (racing lanes still checkpoint in memory
            // on exhaustion, as before).
            checkpoint_every: None,
            checkpoint_hook: None,
        }
    }
}

/// Everything a lane thread sends home. All fields are plain data —
/// [`IterationStats`] is `Copy` — so the message is `Send` even though
/// the result it summarizes was produced by a `!Send` manager.
struct LaneMessage {
    lane: usize,
    engine: EngineKind,
    repr: ReprKind,
    order: OrderHeuristic,
    outcome: Option<Outcome>,
    iterations: usize,
    reached_states: Option<f64>,
    representation_nodes: Option<usize>,
    peak_nodes: usize,
    elapsed: Duration,
    conversion_time: Duration,
    per_iteration: Vec<IterationStats>,
    rounds: usize,
    won: bool,
    cancelled: bool,
    frozen_jobs: Option<usize>,
    reorders: usize,
    reorder_nodes: (usize, usize),
    /// The lane's collected trace stream ([`bfvr_obs::Event`] is plain
    /// data), empty when the race is untraced.
    events: Vec<bfvr_obs::Event>,
}

/// Runs one lane to completion (or cancellation) on the current thread.
fn race_lane(
    lane: usize,
    spec: Lane,
    net: &Netlist,
    opts: LaneOpts,
    escalation: Option<&EscalationPolicy>,
    cancel: &Arc<AtomicBool>,
) -> LaneMessage {
    let start = Instant::now();
    let Lane { engine, repr, .. } = spec;
    let order = spec.order.unwrap_or(opts.order);
    let skipped = LaneMessage {
        lane,
        engine,
        repr,
        order,
        outcome: None,
        iterations: 0,
        reached_states: None,
        representation_nodes: None,
        peak_nodes: 0,
        elapsed: Duration::ZERO,
        conversion_time: Duration::ZERO,
        per_iteration: Vec::new(),
        rounds: 0,
        won: false,
        cancelled: true,
        frozen_jobs: None,
        reorders: 0,
        reorder_nodes: (0, 0),
        events: Vec::new(),
    };
    if cancel.load(Ordering::Relaxed) {
        return skipped;
    }
    let Ok((mut m, fsm)) = EncodedFsm::encode(net, order) else {
        return LaneMessage {
            outcome: Some(Outcome::Error),
            elapsed: start.elapsed(),
            cancelled: false,
            ..skipped
        };
    };
    m.set_cancel_token(Some(Arc::clone(cancel)));
    let opts = opts.into_options();
    let (result, rounds) = match escalation {
        Some(policy) => {
            let report = run_escalating_repr(engine, repr, &mut m, &fsm, &opts, policy);
            let n = report.rounds.len();
            (report.result, n)
        }
        None => (run_repr(engine, repr, &mut m, &fsm, &opts), 1),
    };
    // First *exact* fixed point wins; `swap` makes exactly one lane the
    // winner even if two finish back-to-back. An over-approximating lane
    // finishing first proves nothing about the exact reached set, so it
    // neither wins nor cancels the exact lanes still running.
    let won = result.outcome == Outcome::FixedPoint
        && !result.over_approx
        && !cancel.swap(true, Ordering::AcqRel);
    // A loser whose run ended while the flag was up was (or would have
    // been) stopped by the race, not by its own budget.
    let cancelled =
        !won && result.outcome.is_resource_exhaustion() && cancel.load(Ordering::Acquire);
    let events = opts
        .trace
        .as_ref()
        .map_or_else(Vec::new, |t| t.borrow_mut().drain());
    LaneMessage {
        lane,
        engine,
        repr,
        order,
        outcome: Some(result.outcome),
        iterations: result.iterations,
        reached_states: result.reached_states,
        representation_nodes: result.representation_nodes,
        peak_nodes: result.peak_nodes,
        elapsed: start.elapsed(),
        conversion_time: result.conversion_time,
        per_iteration: result.per_iteration,
        rounds,
        won,
        cancelled,
        frozen_jobs: result.frozen_jobs,
        reorders: result.reorders,
        reorder_nodes: result.reorder_nodes,
        events,
    }
}

/// Lower ranks make better fallback winners when no lane completed.
fn outcome_rank(outcome: Option<Outcome>) -> u8 {
    match outcome {
        Some(Outcome::FixedPoint) => 0,
        Some(Outcome::IterationLimit) => 1,
        Some(Outcome::TimeOut | Outcome::MemOut) => 2,
        Some(Outcome::Error) => 3,
        None => 4,
    }
}

/// Races `lanes` on `net`: every engine × representation × ordering lane
/// encodes the netlist in its own worker thread with its own private
/// [`BddManager`] — under [`ReachOptions::order`] unless the lane
/// carries an override ([`Lane::with_order`]) — and the first *exact*
/// lane to reach the fixed point cancels the rest through the managers'
/// cooperative deadline poll.
///
/// The returned [`RaceReport`] carries the winning [`ReachResult`]
/// (reached-state count, iterations, peak nodes — but not the reached
/// set itself; see [`RaceReport::result`]) and a [`LaneReport`] per
/// lane. Reached-state counts are deterministic: every exact lane
/// converges to the same unique least fixed point, so whichever lane
/// wins, the count matches a sequential run bit for bit.
/// Over-approximating lanes ([`Lane::over_approximates`]) race for
/// information only — their counts upper-bound the exact answer and
/// their reports are flagged [`LaneReport::over_approx`].
#[must_use]
pub fn run_racing(
    lanes: &[Lane],
    net: &Netlist,
    opts: &ReachOptions,
    config: &RaceConfig,
) -> RaceReport {
    let start = Instant::now();
    let n = lanes.len();
    let jobs = if config.jobs == 0 {
        n
    } else {
        config.jobs.min(n)
    };
    let lane_opts = LaneOpts::of(opts);
    let cancel = Arc::new(AtomicBool::new(false));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<LaneMessage>();
    let mut messages: Vec<Option<LaneMessage>> = Vec::new();
    messages.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cancel = Arc::clone(&cancel);
            let next = &next;
            scope.spawn(move || {
                // Work-stealing loop: each thread pulls the next unstarted
                // lane until the queue is drained, so `jobs` caps
                // concurrency without dedicating a thread per engine.
                loop {
                    let lane = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&spec) = lanes.get(lane) else {
                        return;
                    };
                    let msg = race_lane(
                        lane,
                        spec,
                        net,
                        lane_opts,
                        config.escalation.as_ref(),
                        &cancel,
                    );
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for msg in rx {
            let lane = msg.lane;
            messages[lane] = Some(msg);
        }
    });
    // Winner: the lane that won the swap; otherwise the best-ranked
    // partial result (exact lanes before over-approximating ones, then
    // most iterations, then lowest lane index).
    let winner = messages
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.as_ref().map(|m| (i, m)))
        .min_by_key(|(i, m)| {
            (
                !m.won,
                m.repr.over_approximates(),
                outcome_rank(m.outcome),
                std::cmp::Reverse(m.iterations),
                *i,
            )
        })
        .map(|(i, _)| i);
    let mut reports = Vec::with_capacity(n);
    let mut result = None;
    for (i, slot) in messages.into_iter().enumerate() {
        // Every spawned lane sends exactly one message, so the slot is
        // always populated; guard anyway so a panicked lane degrades to
        // a skipped report instead of poisoning the race.
        let mut msg = slot.unwrap_or(LaneMessage {
            lane: i,
            engine: lanes[i].engine,
            repr: lanes[i].repr,
            order: lanes[i].order.unwrap_or(opts.order),
            outcome: None,
            iterations: 0,
            reached_states: None,
            representation_nodes: None,
            peak_nodes: 0,
            elapsed: Duration::ZERO,
            conversion_time: Duration::ZERO,
            per_iteration: Vec::new(),
            rounds: 0,
            won: false,
            cancelled: true,
            frozen_jobs: None,
            reorders: 0,
            reorder_nodes: (0, 0),
            events: Vec::new(),
        });
        // Merge the lane's stream into the driver's trace, tagged with
        // its lane index, then synthesize the race-level events: one
        // `winner`, and one `cancel` per lane the race stopped (or
        // skipped) rather than its own budget.
        if let Some(trace) = &opts.trace {
            let mut t = trace.borrow_mut();
            t.ingest(i as u64, std::mem::take(&mut msg.events));
            if msg.cancelled {
                t.cancel(lane_label(msg.engine, msg.repr));
            }
            if winner == Some(i) {
                t.winner(lane_label(msg.engine, msg.repr));
            }
        }
        reports.push(LaneReport {
            engine: msg.engine,
            repr: msg.repr,
            order: msg.order,
            over_approx: msg.repr.over_approximates(),
            outcome: msg.outcome,
            iterations: msg.iterations,
            reached_states: msg.reached_states,
            representation_nodes: msg.representation_nodes,
            peak_nodes: msg.peak_nodes,
            elapsed: msg.elapsed,
            rounds: msg.rounds,
            cancelled: msg.cancelled,
            frozen_jobs: msg.frozen_jobs,
            reorders: msg.reorders,
        });
        if winner == Some(i) {
            result = Some(ReachResult {
                engine: msg.engine,
                repr: msg.repr,
                over_approx: msg.repr.over_approximates(),
                outcome: msg.outcome.unwrap_or(Outcome::Error),
                iterations: msg.iterations,
                reached_states: msg.reached_states,
                reached_chi: None,
                representation_nodes: msg.representation_nodes,
                peak_nodes: msg.peak_nodes,
                elapsed: msg.elapsed,
                conversion_time: msg.conversion_time,
                frozen_jobs: msg.frozen_jobs,
                reorders: msg.reorders,
                reorder_nodes: msg.reorder_nodes,
                per_iteration: msg.per_iteration,
                checkpoint: None,
            });
        }
    }
    RaceReport {
        result,
        winner,
        lanes: reports,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use bfvr_netlist::generators;
    use bfvr_sim::{EncodedFsm, OrderHeuristic};

    #[test]
    fn escalation_recovers_from_a_tight_node_budget() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let baseline = run(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &ReachOptions::default(),
        );
        assert_eq!(baseline.outcome, Outcome::FixedPoint);
        // Sweep the baseline run's garbage first: adaptive per-iteration
        // collection defers on small graphs and leaves it in the arena,
        // and a budget measured on top of reclaimable garbage would not
        // actually be tight.
        m.collect_garbage(&[]);
        let opts = ReachOptions {
            node_limit: Some(m.allocated() + 50),
            ..Default::default()
        };
        let report = run_escalating(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &opts,
            &EscalationPolicy::default(),
        );
        assert!(report.completed(), "rounds: {:?}", report.rounds);
        assert!(report.rounds.len() > 1, "first run should have mem-out");
        assert_eq!(report.result.reached_states, baseline.reached_states);
    }

    #[test]
    fn error_outcomes_are_not_retried() {
        // A capacity fault is an internal failure: the driver must not
        // burn rounds on it.
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        m.set_fault_plan(bfvr_bdd::FaultPlan::capacity_at(5));
        let opts = ReachOptions {
            node_limit: Some(1_000_000),
            ..Default::default()
        };
        let report = run_escalating(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &opts,
            &EscalationPolicy::default(),
        );
        m.clear_fault_plan();
        assert_eq!(report.result.outcome, Outcome::Error);
        assert_eq!(report.rounds.len(), 1);
    }

    #[test]
    fn budget_ceiling_stops_escalation() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let base = m.allocated() + 40;
        let opts = ReachOptions {
            node_limit: Some(base),
            ..Default::default()
        };
        let policy = EscalationPolicy {
            max_node_budget: Some(base + 10),
            ..Default::default()
        };
        let report = run_escalating(EngineKind::Bfv, &mut m, &fsm, &opts, &policy);
        assert!(!report.completed());
        // Round 0 plus exactly one capped retry.
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.rounds[1].node_limit, Some(base + 10));
    }
}
