//! Budget-escalation driver: retry resource-limited runs from their
//! checkpoint with geometrically raised budgets.
//!
//! A run that ends in `T.O.`/`M.O.` (the paper's Table 2 failure cells)
//! has still computed a prefix of the reachable set. Instead of
//! restarting from scratch with a bigger machine, [`run_escalating`]
//! resumes the traversal from the [`Checkpoint`] it returned, multiplying
//! the node/time budgets by a fixed factor each round until the fixed
//! point is reached, a budget ceiling is hit, or the round cap runs out.
//! Internal errors ([`Outcome::Error`]) are never retried — a bug does
//! not go away with a bigger budget.

use std::time::Duration;

use bfvr_bdd::BddManager;
use bfvr_sim::EncodedFsm;

use crate::{resume, run, EngineKind, Outcome, ReachOptions, ReachResult};

/// How to raise budgets between escalation rounds.
#[derive(Clone, Debug)]
pub struct EscalationPolicy {
    /// Multiplier applied to the node and time budgets on every retry
    /// (must be > 1 to make progress; values ≤ 1 are treated as 2).
    pub factor: f64,
    /// Maximum number of retries after the initial run.
    pub max_rounds: usize,
    /// Hard ceiling on the node budget: escalation stops raising past
    /// it, and gives up once a capped run still exhausts.
    pub max_node_budget: Option<usize>,
    /// Hard ceiling on the time budget.
    pub max_time_budget: Option<Duration>,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy {
            factor: 2.0,
            max_rounds: 8,
            max_node_budget: None,
            max_time_budget: None,
        }
    }
}

/// One row of the escalation log.
#[derive(Clone, Debug)]
pub struct EscalationRound {
    /// Outcome of this round's (partial) run.
    pub outcome: Outcome,
    /// Cumulative image iterations after this round.
    pub iterations: usize,
    /// Node budget this round ran under.
    pub node_limit: Option<usize>,
    /// Time budget this round ran under.
    pub time_limit: Option<Duration>,
    /// Whether this round continued from a checkpoint (as opposed to
    /// starting from scratch).
    pub resumed: bool,
}

/// The escalation driver's verdict: the final result plus the per-round
/// log (round 0 is the initial run).
#[derive(Clone, Debug)]
pub struct EscalationReport {
    /// Result of the last round — final if its outcome is not a
    /// resource exhaustion, best-effort partial otherwise.
    pub result: ReachResult,
    /// One entry per round, in order.
    pub rounds: Vec<EscalationRound>,
}

impl EscalationReport {
    /// Whether the traversal eventually completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.result.outcome == Outcome::FixedPoint
    }
}

/// Raises the budgets in `opts` by the policy factor, respecting the
/// ceilings. Returns `false` when no budget could be raised any further
/// (both already at their ceilings, or no budget is set at all) — the
/// signal to stop escalating.
fn raise_budgets(opts: &mut ReachOptions, policy: &EscalationPolicy) -> bool {
    let factor = if policy.factor > 1.0 {
        policy.factor
    } else {
        2.0
    };
    let mut raised = false;
    if let Some(n) = opts.node_limit {
        let mut next = ((n as f64) * factor).ceil() as usize;
        next = next.max(n + 1);
        if let Some(cap) = policy.max_node_budget {
            next = next.min(cap);
        }
        if next > n {
            opts.node_limit = Some(next);
            raised = true;
        }
    }
    if let Some(t) = opts.time_limit {
        let mut next = t.mul_f64(factor);
        if let Some(cap) = policy.max_time_budget {
            next = next.min(cap);
        }
        if next > t {
            opts.time_limit = Some(next);
            raised = true;
        }
    }
    raised
}

/// Runs `kind` under `opts`, then — while the outcome is a resource
/// exhaustion and budgets can still be raised — resumes from the
/// returned checkpoint with the budgets multiplied by
/// [`EscalationPolicy::factor`].
///
/// A round that exhausts without leaving a checkpoint (it failed before
/// completing a single iteration) is restarted from scratch under the
/// raised budgets instead.
pub fn run_escalating(
    kind: EngineKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    policy: &EscalationPolicy,
) -> EscalationReport {
    let mut opts = opts.clone();
    let mut result = run(kind, m, fsm, &opts);
    let mut rounds = vec![EscalationRound {
        outcome: result.outcome,
        iterations: result.iterations,
        node_limit: opts.node_limit,
        time_limit: opts.time_limit,
        resumed: false,
    }];
    for _ in 0..policy.max_rounds {
        if !result.outcome.is_resource_exhaustion() {
            break;
        }
        if !raise_budgets(&mut opts, policy) {
            break;
        }
        let checkpoint = result.checkpoint.take();
        let resumed = checkpoint.is_some();
        result = match checkpoint {
            Some(c) => resume(m, fsm, &opts, c),
            None => run(kind, m, fsm, &opts),
        };
        rounds.push(EscalationRound {
            outcome: result.outcome,
            iterations: result.iterations,
            node_limit: opts.node_limit,
            time_limit: opts.time_limit,
            resumed,
        });
    }
    EscalationReport { result, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;
    use bfvr_sim::{EncodedFsm, OrderHeuristic};

    #[test]
    fn escalation_recovers_from_a_tight_node_budget() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let baseline = run(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &ReachOptions::default(),
        );
        assert_eq!(baseline.outcome, Outcome::FixedPoint);
        let opts = ReachOptions {
            node_limit: Some(m.allocated() + 50),
            ..Default::default()
        };
        let report = run_escalating(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &opts,
            &EscalationPolicy::default(),
        );
        assert!(report.completed(), "rounds: {:?}", report.rounds);
        assert!(report.rounds.len() > 1, "first run should have mem-out");
        assert_eq!(report.result.reached_states, baseline.reached_states);
    }

    #[test]
    fn error_outcomes_are_not_retried() {
        // A capacity fault is an internal failure: the driver must not
        // burn rounds on it.
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        m.set_fault_plan(bfvr_bdd::FaultPlan::capacity_at(5));
        let opts = ReachOptions {
            node_limit: Some(1_000_000),
            ..Default::default()
        };
        let report = run_escalating(
            EngineKind::Monolithic,
            &mut m,
            &fsm,
            &opts,
            &EscalationPolicy::default(),
        );
        m.clear_fault_plan();
        assert_eq!(report.result.outcome, Outcome::Error);
        assert_eq!(report.rounds.len(), 1);
    }

    #[test]
    fn budget_ceiling_stops_escalation() {
        let net = generators::queue_controller(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let base = m.allocated() + 40;
        let opts = ReachOptions {
            node_limit: Some(base),
            ..Default::default()
        };
        let policy = EscalationPolicy {
            max_node_budget: Some(base + 10),
            ..Default::default()
        };
        let report = run_escalating(EngineKind::Bfv, &mut m, &fsm, &opts, &policy);
        assert!(!report.completed());
        // Round 0 plus exactly one capped retry.
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.rounds[1].node_limit, Some(base + 10));
    }
}
