//! The Coudert–Berthet–Madre flow (paper Figure 1): characteristic
//! functions for set manipulation, functional vectors for the image.
//!
//! Image computation follows [7]: the next-state functions are
//! *constrained* (generalized cofactor) by the from-set's characteristic
//! function — whose range then equals the image — and the range is
//! computed by recursive domain splitting, producing a characteristic
//! function over the next-state variables. The constrain step and the
//! range-splitting conversion are the CF↔BFV bridges that the paper's
//! Figure 2 flow eliminates; their time is reported separately in
//! [`ReachResult::conversion_time`].

use bfvr_bdd::hash::FxHashMap;
use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_sim::EncodedFsm;

use crate::backends::ChiBackend;
use crate::common::{ReachOptions, ReachResult};
use crate::driver::run_fixed_point;
use crate::EngineKind;

/// Computes the characteristic function (over `out_vars`) of the range of
/// a vector of functions, by recursive splitting on the topmost live
/// variable [6,7].
pub(crate) fn range_by_splitting(
    m: &mut BddManager,
    comps: &[Bdd],
    out_vars: &[Var],
) -> Result<Bdd, bfvr_bdd::BddError> {
    let mut memo: FxHashMap<Vec<u32>, Bdd> = FxHashMap::default();
    range_rec(m, comps, out_vars, &mut memo)
}

fn range_rec(
    m: &mut BddManager,
    comps: &[Bdd],
    out_vars: &[Var],
    memo: &mut FxHashMap<Vec<u32>, Bdd>,
) -> Result<Bdd, bfvr_bdd::BddError> {
    // Splitting variable: the topmost decision variable among components.
    let top = comps
        .iter()
        .filter(|c| !c.is_const())
        .map(|&c| m.top_var(c).0)
        .min();
    let Some(top) = top else {
        // All constant: the range is the single point they denote.
        let mut cube = Bdd::TRUE;
        for (i, &c) in comps.iter().enumerate() {
            let lit = if c.is_true() {
                m.var(out_vars[i])
            } else {
                m.nvar(out_vars[i])
            };
            cube = m.and(cube, lit)?;
        }
        return Ok(cube);
    };
    let key: Vec<u32> = comps.iter().map(|c| c.index()).collect();
    if let Some(&r) = memo.get(&key) {
        return Ok(r);
    }
    let v = Var(top);
    let mut lo = Vec::with_capacity(comps.len());
    let mut hi = Vec::with_capacity(comps.len());
    for &c in comps {
        lo.push(m.cofactor(c, v, false)?);
        hi.push(m.cofactor(c, v, true)?);
    }
    let r0 = range_rec(m, &lo, out_vars, memo)?;
    let r = if r0.is_true() {
        r0
    } else {
        let r1 = range_rec(m, &hi, out_vars, memo)?;
        m.or(r0, r1)?
    };
    memo.insert(key, r);
    Ok(r)
}

/// Runs reachability with the Figure 1 flow.
pub fn reach_cbm(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    let mut backend = ChiBackend::cbm(fsm);
    run_fixed_point(EngineKind::Cbm, &mut backend, m, fsm, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Outcome;
    use crate::{reach_bfv, reach_monolithic};
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;
    use std::time::Duration;

    #[test]
    fn range_of_constant_vector_is_a_point() {
        let mut m = BddManager::new(4);
        let r = range_by_splitting(&mut m, &[Bdd::TRUE, Bdd::FALSE], &[Var(0), Var(1)]).unwrap();
        assert_eq!(m.sat_count(r, 2), 1.0);
        let v0 = m.var(Var(0));
        let nv1 = m.nvar(Var(1));
        let expect = m.and(v0, nv1).unwrap();
        assert_eq!(r, expect);
    }

    #[test]
    fn range_matches_quantified_relation() {
        // Range of (x⊕y, x∧y) over outputs (u0, u1).
        let mut m = BddManager::new(4);
        let x = m.var(Var(0));
        let y = m.var(Var(1));
        let f0 = m.xor(x, y).unwrap();
        let f1 = m.and(x, y).unwrap();
        let got = range_by_splitting(&mut m, &[f0, f1], &[Var(2), Var(3)]).unwrap();
        // Oracle: ∃x,y. (u0 ↔ f0) ∧ (u1 ↔ f1).
        let u0 = m.var(Var(2));
        let u1 = m.var(Var(3));
        let e0 = m.xnor(u0, f0).unwrap();
        let e1 = m.xnor(u1, f1).unwrap();
        let rel = m.and(e0, e1).unwrap();
        let cube = m.cube_from_vars(&[Var(0), Var(1)]).unwrap();
        let expect = m.exists(rel, cube).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn cbm_agrees_with_other_engines() {
        for net in [
            generators::counter(5),
            generators::johnson(6),
            generators::rotator(5),
            bfvr_netlist::circuits::s27(),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_cbm(&mut m, &fsm, &ReachOptions::default());
            let b = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            let c = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(a.reached_chi, b.reached_chi, "{} cbm vs mono", net.name());
            assert_eq!(a.reached_chi, c.reached_chi, "{} cbm vs bfv", net.name());
            assert!(
                a.conversion_time > Duration::ZERO,
                "{} conversions untimed",
                net.name()
            );
        }
    }
}
