//! The shared fixed-point driver: the one copy of the reachability loop,
//! written against [`SetRepr`] and instantiated per backend.
//!
//! Every engine × representation lane runs this exact sequence —
//! prepare (or restore), initial set, then
//! `reached ← reached ∪ image(from)` until the union stops growing —
//! with the backend supplying the representation-specific steps and the
//! driver owning everything lane-independent: resource-limit arming,
//! iteration caps and deadlines, the frontier heuristic, GC root
//! assembly, per-iteration telemetry, checkpointing, and the final
//! canonicalization into χ for cross-engine comparison.

use std::time::{Duration, Instant};

use bfvr_bdd::{BddManager, SiftConfig, SIFT_SIZE_FLOOR};
use bfvr_setrepr::{ReprCheckpoint, SetRepr};
use bfvr_sim::EncodedFsm;

use crate::common::{
    arm_limits, disarm_limits, failed_result, lane_label, notify_iteration, outcome_of_bfv_error,
    Checkpoint, EngineKind, IterMetrics, IterationView, Outcome, ReachOptions, ReachResult,
};

/// Runs the shared traversal loop on `backend`, optionally resuming from
/// a prior checkpoint's representation state and iteration count.
pub(crate) fn run_fixed_point<B: SetRepr>(
    engine: EngineKind,
    backend: &mut B,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    seed: Option<(&ReprCheckpoint, usize)>,
) -> ReachResult {
    let start = Instant::now();
    arm_limits(m, opts);
    let repr = backend.kind();
    let mut per_iteration = Vec::new();
    let mut conversion_time = Duration::ZERO;
    // Dynamic reordering: on only when asked for *and* the backend's
    // representation survives a permuted order (see
    // `SetRepr::supports_reorder` — the BFV/CDEC/ZDD/zonotope lanes
    // decline). The baseline is the live count right after the last
    // reorder; growth past `sift_trigger` × baseline re-triggers.
    let sift_enabled = opts.sift && backend.supports_reorder();
    let mut sift_baseline = m.allocated().max(1);
    let mut reorders = 0usize;
    let mut reorder_before = 0usize;
    let mut reorder_after = 0usize;

    if let Err(e) = backend.prepare(m) {
        return failed_result(m, engine, repr, outcome_of_bfv_error(&e), start.elapsed());
    }

    let (mut reached, mut from, mut iterations) = match seed {
        Some((cp, iters)) => match backend.restore(m, cp) {
            Ok(Some((r, f))) => (r, f, iters),
            // A checkpoint from a different representation is a caller
            // bug, not a resource limit: report it as such.
            Ok(None) => return failed_result(m, engine, repr, Outcome::Error, start.elapsed()),
            Err(e) => {
                return failed_result(m, engine, repr, outcome_of_bfv_error(&e), start.elapsed())
            }
        },
        None => match backend.initial(m) {
            Ok(init) => (init.clone(), init, 0),
            Err(e) => {
                return failed_result(m, engine, repr, outcome_of_bfv_error(&e), start.elapsed())
            }
        },
    };
    // Account conversions made during setup (restore / initial import).
    conversion_time += backend.take_conversion();

    // Pin the loop state against mid-operation reclaim passes; rebound
    // each iteration as reached/from move.
    let mut _state_guards = (backend.pin(m, &reached), backend.pin(m, &from));

    let mut outcome_opt = None;
    let run = (|| -> Result<(), bfvr_bfv::BfvError> {
        loop {
            if opts.max_iterations.is_some_and(|cap| iterations >= cap) {
                outcome_opt = Some(Outcome::IterationLimit);
                break;
            }
            let iter_start = Instant::now();
            m.check_deadline()?;
            let op_start = Instant::now();
            let img = backend.image(m, &from)?;
            let image_time = op_start.elapsed();
            let _img_guard = backend.pin(m, &img);
            let op_start = Instant::now();
            let new_reached = backend.union(m, &reached, &img)?;
            let union_time = op_start.elapsed();
            iterations += 1;
            if backend.set_eq(m, &new_reached, &reached) {
                break;
            }
            reached = new_reached;
            from = if opts.use_frontier && backend.size(m, &img) <= backend.size(m, &reached) {
                img
            } else {
                reached.clone()
            };
            _state_guards = (backend.pin(m, &reached), backend.pin(m, &from));
            let mut roots = Vec::new();
            backend.append_roots(&reached, &mut roots);
            backend.append_roots(&from, &mut roots);
            backend.persistent_roots(&mut roots);
            let gc = m.maybe_collect_garbage(&roots);
            // Dynamic reorder trigger: once the live graph grows past
            // the configured multiple of the post-reorder baseline (and
            // past the absolute floor below which sifting costs more
            // than it saves), run a sift pass over this iteration's
            // roots. Resource limits are suspended around the pass —
            // like the checkpoint hook, the machinery that *shrinks* the
            // graph must never trip the budget it exists to relieve.
            if sift_enabled
                && gc.live >= SIFT_SIZE_FLOOR
                && gc.live as f64 >= sift_baseline as f64 * opts.sift_trigger.max(1.0)
            {
                let saved_limit = m.node_limit();
                let saved_deadline = m.deadline();
                m.clear_node_limit();
                m.set_deadline(None);
                let sift_start = Instant::now();
                let stats = m.sift(
                    &roots,
                    &SiftConfig {
                        max_growth: opts.sift_max_growth,
                        converge: false,
                    },
                );
                let sift_dur = sift_start.elapsed();
                if let Some(n) = saved_limit {
                    m.set_node_limit(n);
                }
                m.set_deadline(saved_deadline);
                reorders += 1;
                reorder_before += stats.before;
                reorder_after += stats.after;
                sift_baseline = stats.after.max(1);
                if let Some(trace) = &opts.trace {
                    trace.borrow_mut().reorder(
                        lane_label(engine, repr),
                        iterations as u64,
                        stats.before as u64,
                        stats.after as u64,
                        sift_dur.as_micros() as u64,
                    );
                }
            }
            let conv = backend.take_conversion();
            conversion_time += conv;
            // Op-class timers in loop order; the conversion slice of the
            // image/union timers is also broken out under its own label
            // when the backend reported any, as are the frozen image
            // path's freeze/compose/intern phases.
            let mut ops: Vec<(&'static str, Duration)> = Vec::with_capacity(6);
            ops.push(("image", image_time));
            ops.extend(backend.take_image_phases());
            if conv > Duration::ZERO {
                ops.push(("convert", conv));
            }
            ops.push(("union", union_time));
            notify_iteration(
                m,
                fsm,
                opts,
                &IterationView {
                    engine,
                    repr,
                    iteration: iterations,
                    roots: &roots,
                    set: backend.view(&reached, &from),
                },
                &IterMetrics {
                    gc,
                    elapsed: iter_start.elapsed(),
                    conversion: conv,
                    ops: &ops,
                },
                &mut per_iteration,
            );
            // Periodic durable checkpoint, with resource limits
            // suspended: persisting the loop state must never trip the
            // very budget it exists to survive, and a failure to *build*
            // the checkpoint (injected faults, a mid-GC race) skips this
            // period rather than aborting the traversal.
            if let (Some(every), Some(hook)) = (opts.checkpoint_every, &opts.checkpoint_hook) {
                if every > 0 && iterations % every == 0 {
                    let saved_limit = m.node_limit();
                    let saved_deadline = m.deadline();
                    m.clear_node_limit();
                    m.set_deadline(None);
                    if let Ok(state) = backend.checkpoint(m, &reached, &from) {
                        let cp = Checkpoint {
                            engine,
                            repr,
                            iterations,
                            state,
                        };
                        hook(m, &cp);
                    }
                    if let Some(n) = saved_limit {
                        m.set_node_limit(n);
                    }
                    m.set_deadline(saved_deadline);
                }
            }
            backend.end_of_iteration(&reached, &from);
        }
        Ok(())
    })();
    let outcome = match (&run, outcome_opt) {
        (_, Some(o)) => o,
        (Ok(()), None) => Outcome::FixedPoint,
        (Err(e), None) => outcome_of_bfv_error(e),
    };
    conversion_time += backend.take_conversion();
    let elapsed = start.elapsed();
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);

    // Resumable state for interrupted-but-recoverable runs only: a fixed
    // point needs no resume, and an internal error must not be retried.
    let checkpoint = if outcome == Outcome::FixedPoint || outcome == Outcome::Error {
        None
    } else {
        backend
            .checkpoint(m, &reached, &from)
            .ok()
            .map(|state| Checkpoint {
                engine,
                repr,
                iterations,
                state,
            })
    };

    // Final canonicalization — untimed by design: the paper's tables
    // account the traversal, and the χ here exists purely for result
    // reporting and cross-engine validation.
    let chi = backend.to_chi(m, &reached).ok();
    let reached_states = backend
        .count_states(m, &reached)
        .or_else(|| chi.map(|c| crate::cf::count_states(m, fsm, c)));
    ReachResult {
        engine,
        repr,
        over_approx: backend.over_approximates(),
        outcome,
        iterations,
        reached_states,
        reached_chi: chi.map(|c| m.func(c)),
        representation_nodes: Some(backend.repr_nodes(m, &reached)),
        peak_nodes,
        elapsed,
        conversion_time,
        frozen_jobs: backend.effective_jobs(),
        reorders,
        reorder_nodes: (reorder_before, reorder_after),
        per_iteration,
        checkpoint,
    }
}
