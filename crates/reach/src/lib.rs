//! # bfvr-reach — symbolic reachability engines
//!
//! The evaluation substrate of the `bfvr` reproduction: five reachability
//! engines over the same [`bfvr_sim::EncodedFsm`] encoding, producing
//! directly comparable [`ReachResult`]s (iterations, reached-state count,
//! peak live BDD nodes, wall time, and a resource-limit outcome mirroring
//! the `T.O.`/`M.O.` cells of the paper's Table 2):
//!
//! * [`reach_bfv`] — **the paper's Figure 2 flow**: symbolic simulation,
//!   re-parameterization and Boolean-functional-vector set union; no
//!   characteristic function is ever built.
//! * [`reach_cbm`] — the Coudert–Berthet–Madre Figure 1 flow: set
//!   manipulation on characteristic functions, image computation by
//!   constrained range computation with recursive splitting; the
//!   representation conversions the paper eliminates are timed separately.
//! * [`reach_monolithic`] — a single conjoined transition relation with
//!   one relational product per step (the textbook baseline).
//! * [`reach_iwls95`] — partitioned transition relation with clustering
//!   and early quantification \[IWLS95\], the configuration of the "VIS"
//!   column in Table 2.
//! * [`reach_cdec`] — the same Figure 2 flow storing sets as McMillan's
//!   conjunctive decomposition (§2.7 correspondence).
//!
//! [`check_invariant`] layers a simple safety checker on the BFV engine —
//! the "symbolic simulation based model checker" the paper names as the
//! goal of this line of work — and [`reach_backward`] adds the dual
//! pre-image traversal (χ-based; functional vectors are forward-only) for
//! cross-validation and backward invariant checks. [`find_trace`]
//! extracts a concrete minimal-depth input trace to any target set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod backward;
mod bfv_engine;
mod cbm;
mod cdec_engine;
mod cf;
mod check;
mod common;
mod iwls95;
pub mod portfolio;
#[cfg(feature = "audit")]
mod selfcheck;
pub mod telemetry;
mod trace;

pub use backward::{check_invariant_backward, reach_backward};
pub use bfv_engine::reach_bfv;
pub use cbm::reach_cbm;
pub use cdec_engine::reach_cdec;
pub use cf::reach_monolithic;
pub use check::{check_invariant, CheckResult};
pub use common::{
    Checkpoint, EngineKind, IterationObserver, IterationStats, IterationView, Outcome,
    ReachOptions, ReachResult, SetView,
};
pub use iwls95::reach_iwls95;
pub use telemetry::TraceHandle;
pub use trace::{find_trace, Trace};

use bfvr_bdd::{BddManager, Func};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::Bfv;
use bfvr_sim::EncodedFsm;

use common::CheckpointState;

/// Runs the engine selected by `kind` (convenience dispatcher for the
/// benchmark harness).
///
/// When [`ReachOptions::trace`] is set, the dispatcher brackets the
/// traversal in an `engine` span and records the end-of-traversal
/// summary (and any tripped resource limit) — callers invoking the
/// `reach_*` functions directly still get per-iteration events, but
/// only the dispatchers emit the engine-level framing.
pub fn run(
    kind: EngineKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
) -> ReachResult {
    let span = telemetry::engine_span_open(opts, m, kind);
    let r = match kind {
        EngineKind::Bfv => reach_bfv(m, fsm, opts),
        EngineKind::Cbm => reach_cbm(m, fsm, opts),
        EngineKind::Monolithic => reach_monolithic(m, fsm, opts),
        EngineKind::Iwls95 => reach_iwls95(m, fsm, opts),
        EngineKind::Cdec => reach_cdec(m, fsm, opts),
    };
    telemetry::engine_span_close(opts, m, span, &r);
    r
}

/// Continues an interrupted traversal from its [`Checkpoint`], typically
/// with raised limits in `opts`. The checkpoint must come from a run on
/// the same manager/FSM pair. The continuation reaches the same fixed
/// point the uninterrupted run would have reached: the reached set only
/// ever grows toward the unique least fixed point, and the seeded
/// iteration restarts from a `from ⊆ reached` start set.
///
/// Reported `iterations` are cumulative across the original run and all
/// resumptions.
pub fn resume(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    checkpoint: Checkpoint,
) -> ReachResult {
    let start = std::time::Instant::now();
    let Checkpoint {
        engine,
        iterations,
        state,
    } = checkpoint;
    let span = telemetry::engine_span_open(opts, m, engine);
    // Each arm keeps the checkpoint's `Func` handles alive until the
    // seeded engine has re-pinned the state, then drops them.
    let r = match (engine, state) {
        (EngineKind::Monolithic, CheckpointState::Chi { reached, from }) => {
            let seed = (reached.bdd(), from.bdd(), iterations);
            let r = cf::reach_monolithic_seeded(m, fsm, opts, Some(seed));
            drop((reached, from));
            r
        }
        (EngineKind::Cbm, CheckpointState::Chi { reached, from }) => {
            let seed = (reached.bdd(), from.bdd(), iterations);
            let r = cbm::reach_cbm_seeded(m, fsm, opts, Some(seed));
            drop((reached, from));
            r
        }
        (EngineKind::Iwls95, CheckpointState::Chi { reached, from }) => {
            let seed = (reached.bdd(), from.bdd(), iterations);
            let r = iwls95::reach_iwls95_seeded(m, fsm, opts, Some(seed));
            drop((reached, from));
            r
        }
        (EngineKind::Bfv, CheckpointState::Vector { reached, from }) => {
            let space = fsm.space();
            let rv = Bfv::from_components(&space, reached.iter().map(Func::bdd).collect());
            let fv = Bfv::from_components(&space, from.iter().map(Func::bdd).collect());
            match (rv, fv) {
                (Ok(rv), Ok(fv)) => {
                    let r = bfv_engine::reach_bfv_seeded(m, fsm, opts, Some((rv, fv, iterations)));
                    drop((reached, from));
                    r
                }
                // A malformed vector cannot come from this crate's engines.
                _ => common::failed_result(m, engine, Outcome::Error, start.elapsed()),
            }
        }
        (EngineKind::Cdec, CheckpointState::Cdec { constraints, from }) => {
            let space = fsm.space();
            let dec = CDec::from_constraints(constraints.iter().map(Func::bdd).collect());
            match Bfv::from_components(&space, from.iter().map(Func::bdd).collect()) {
                Ok(fv) => {
                    let r =
                        cdec_engine::reach_cdec_seeded(m, fsm, opts, Some((dec, fv, iterations)));
                    drop((constraints, from));
                    r
                }
                Err(_) => common::failed_result(m, engine, Outcome::Error, start.elapsed()),
            }
        }
        // Engine/state mismatch: no engine of this crate produces one.
        (engine, _) => common::failed_result(m, engine, Outcome::Error, start.elapsed()),
    };
    telemetry::engine_span_close(opts, m, span, &r);
    r
}
