//! # bfvr-reach — symbolic reachability engines
//!
//! The evaluation substrate of the `bfvr` reproduction: five reachability
//! engines over the same [`bfvr_sim::EncodedFsm`] encoding, producing
//! directly comparable [`ReachResult`]s (iterations, reached-state count,
//! peak live BDD nodes, wall time, and a resource-limit outcome mirroring
//! the `T.O.`/`M.O.` cells of the paper's Table 2):
//!
//! * [`reach_bfv`] — **the paper's Figure 2 flow**: symbolic simulation,
//!   re-parameterization and Boolean-functional-vector set union; no
//!   characteristic function is ever built.
//! * [`reach_cbm`] — the Coudert–Berthet–Madre Figure 1 flow: set
//!   manipulation on characteristic functions, image computation by
//!   constrained range computation with recursive splitting; the
//!   representation conversions the paper eliminates are timed separately.
//! * [`reach_monolithic`] — a single conjoined transition relation with
//!   one relational product per step (the textbook baseline).
//! * [`reach_iwls95`] — partitioned transition relation with clustering
//!   and early quantification \[IWLS95\], the configuration of the "VIS"
//!   column in Table 2.
//! * [`reach_cdec`] — the same Figure 2 flow storing sets as McMillan's
//!   conjunctive decomposition (§2.7 correspondence).
//!
//! All five run through one shared fixed-point driver written against the
//! [`SetRepr`] trait, so an engine's image computation can also drive a
//! non-native set representation: [`run_repr`] pairs the χ engines with a
//! zero-suppressed (ZDD) lane and the BFV engine with an
//! over-approximating logical-zonotope lane (see [`backends`] and
//! [`EngineKind::supported_reprs`]).
//!
//! [`check_invariant`] layers a simple safety checker on the BFV engine —
//! the "symbolic simulation based model checker" the paper names as the
//! goal of this line of work — and [`reach_backward`] adds the dual
//! pre-image traversal (χ-based; functional vectors are forward-only) for
//! cross-validation and backward invariant checks. [`find_trace`]
//! extracts a concrete minimal-depth input trace to any target set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod backends;
mod backward;
mod bfv_engine;
mod cbm;
mod cdec_engine;
mod cf;
mod check;
mod common;
mod driver;
mod iwls95;
pub mod portfolio;
#[cfg(feature = "audit")]
mod selfcheck;
pub mod telemetry;
mod trace;

pub use backward::{check_invariant_backward, reach_backward};
pub use bfv_engine::reach_bfv;
pub use bfvr_setrepr::{ReprCheckpoint, ReprKind, SetRepr, SetView};
pub use cbm::reach_cbm;
pub use cdec_engine::reach_cdec;
pub use cf::reach_monolithic;
pub use check::{check_invariant, CheckResult};
pub use common::{
    lane_label, Checkpoint, CheckpointHook, EngineKind, IterationObserver, IterationStats,
    IterationView, Outcome, ReachOptions, ReachResult,
};
pub use iwls95::reach_iwls95;
pub use telemetry::TraceHandle;
pub use trace::{find_trace, Trace};

use bfvr_bdd::BddManager;
use bfvr_sim::EncodedFsm;

/// Internal: build the backend for an engine × representation pair and
/// run the shared driver on it (fresh or seeded). The single place the
/// lane matrix is enumerated.
fn dispatch(
    engine: EngineKind,
    repr: ReprKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    seed: Option<(&ReprCheckpoint, usize)>,
) -> ReachResult {
    use driver::run_fixed_point;
    match (engine, repr) {
        (EngineKind::Monolithic, ReprKind::Chi) => {
            let mut b = backends::ChiBackend::monolithic(fsm);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Cbm, ReprKind::Chi) => {
            let mut b = backends::ChiBackend::cbm(fsm);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Iwls95, ReprKind::Chi) => {
            let mut b = backends::ChiBackend::iwls95(fsm, opts.cluster_threshold);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Monolithic, ReprKind::Zdd) => {
            let mut b = backends::ZddBackend::monolithic(fsm);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Cbm, ReprKind::Zdd) => {
            let mut b = backends::ZddBackend::cbm(fsm);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Iwls95, ReprKind::Zdd) => {
            let mut b = backends::ZddBackend::iwls95(fsm, opts.cluster_threshold);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Bfv, ReprKind::Bfv) => {
            let mut b =
                backends::BfvBackend::new(fsm, opts.schedule).with_parallel(opts.frozen, opts.jobs);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Bfv, ReprKind::Zonotope) => {
            let mut b = backends::ZonotopeBackend::new(fsm);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        (EngineKind::Cdec, ReprKind::Cdec) => {
            let mut b = backends::CdecBackend::new(fsm, opts.schedule)
                .with_parallel(opts.frozen, opts.jobs);
            run_fixed_point(engine, &mut b, m, fsm, opts, seed)
        }
        // Unsupported pair: a caller bug, not a resource limit.
        _ => {
            let start = std::time::Instant::now();
            common::failed_result(m, engine, repr, Outcome::Error, start.elapsed())
        }
    }
}

/// Runs the engine selected by `kind` on its native set representation
/// (convenience dispatcher for the benchmark harness).
///
/// When [`ReachOptions::trace`] is set, the dispatcher brackets the
/// traversal in an `engine` span and records the end-of-traversal
/// summary (and any tripped resource limit) — callers invoking the
/// `reach_*` functions directly still get per-iteration events, but
/// only the dispatchers emit the engine-level framing.
pub fn run(
    kind: EngineKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
) -> ReachResult {
    run_repr(kind, kind.native_repr(), m, fsm, opts)
}

/// Runs one engine × representation lane: `kind`'s image computation
/// iterating on the `repr` set representation. Supported pairs are
/// [`EngineKind::supported_reprs`]; an unsupported pair reports
/// [`Outcome::Error`]. Results from over-approximating lanes carry
/// [`ReachResult::over_approx`]` == true`.
pub fn run_repr(
    kind: EngineKind,
    repr: ReprKind,
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
) -> ReachResult {
    let span = telemetry::engine_span_open(opts, m, kind);
    let r = dispatch(kind, repr, m, fsm, opts, None);
    telemetry::engine_span_close(opts, m, span, &r);
    r
}

/// Continues an interrupted traversal from its [`Checkpoint`], typically
/// with raised limits in `opts`. The checkpoint must come from a run on
/// the same manager/FSM pair. The continuation reaches the same fixed
/// point the uninterrupted run would have reached: the reached set only
/// ever grows toward the unique least fixed point, and the seeded
/// iteration restarts from a `from ⊆ reached` start set.
///
/// Reported `iterations` are cumulative across the original run and all
/// resumptions. Resume re-enters the same engine × representation lane
/// the checkpoint came from.
pub fn resume(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    checkpoint: Checkpoint,
) -> ReachResult {
    let Checkpoint {
        engine,
        repr,
        iterations,
        state,
    } = checkpoint;
    let span = telemetry::engine_span_open(opts, m, engine);
    // `state` stays alive across the dispatch, keeping its `Func`
    // handles pinned until the seeded driver has re-pinned the sets.
    let r = dispatch(engine, repr, m, fsm, opts, Some((&state, iterations)));
    drop(state);
    telemetry::engine_span_close(opts, m, span, &r);
    r
}
