//! A small safety (invariant) checker on the BFV engine — the "symbolic
//! simulation based model checker" the paper's conclusion aims at.
//!
//! Forward reachability with intersection tests against a bad-state set
//! each iteration (the §2.4 intersection algorithm doing real work), with
//! counterexample extraction on violation.

use bfvr_bdd::BddManager;
use bfvr_bfv::{BfvError, StateSet};
use bfvr_sim::{simulate_image_with, EncodedFsm};

use crate::common::ReachOptions;

/// The verdict of an invariant check.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckResult {
    /// No reachable state intersects the bad set; the full reachable set
    /// was explored in the given number of iterations.
    Holds {
        /// Image iterations to the fixed point.
        iterations: usize,
    },
    /// A bad state is reachable; `witness` is one such state (component
    /// order) and `depth` the number of image steps at which it appeared
    /// (0 = the initial state itself).
    Violated {
        /// Steps from the initial state.
        depth: usize,
        /// A reachable bad state.
        witness: Vec<bool>,
    },
}

/// Checks that no state of `bad` is reachable from the initial state.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion (per `opts`).
pub fn check_invariant(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    bad: &StateSet,
    opts: &ReachOptions,
) -> Result<CheckResult, BfvError> {
    let space = fsm.space();
    let init = StateSet::singleton(m, &space, &fsm.initial_state())?;
    let mut reached = init;
    // Depth 0: the initial state itself may be bad.
    let mut depth = 0usize;
    let mut hit = reached.intersect(m, &space, bad)?;
    let mut from = reached.clone();
    while hit.is_empty() {
        if opts.max_iterations.is_some_and(|cap| depth >= cap) {
            return Ok(CheckResult::Holds { iterations: depth });
        }
        // The from-set grows from a non-empty singleton and images of
        // non-empty sets are non-empty; an empty one means exploration
        // is already complete.
        let Some(from_bfv) = from.as_bfv() else {
            return Ok(CheckResult::Holds { iterations: depth });
        };
        let img = simulate_image_with(m, fsm, from_bfv, opts.schedule)?;
        let img_set = StateSet::NonEmpty(img);
        let new_reached = reached.union(m, &space, &img_set)?;
        depth += 1;
        if new_reached == reached {
            return Ok(CheckResult::Holds { iterations: depth });
        }
        // Only new states can newly violate; checking the image set keeps
        // the witness depth-minimal for the frontier strategy.
        hit = img_set.intersect(m, &space, bad)?;
        reached = new_reached;
        from = if opts.use_frontier {
            img_set
        } else {
            reached.clone()
        };
    }
    // The loop only exits on a non-empty intersection, which has a member.
    match hit.members(m, &space)?.into_iter().next() {
        Some(witness) => Ok(CheckResult::Violated { depth, witness }),
        None => Ok(CheckResult::Holds { iterations: depth }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn one_hot_invariant_holds_on_rotator() {
        let net = generators::rotator(5);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Bad: all-zero state (token lost).
        let bad = StateSet::singleton(&mut m, &space, &[false; 5]).unwrap();
        let r = check_invariant(&mut m, &fsm, &bad, &ReachOptions::default()).unwrap();
        assert!(matches!(r, CheckResult::Holds { .. }));
    }

    #[test]
    fn johnson_cannot_reach_alternating_pattern() {
        let net = generators::johnson(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // 1010 is not a Johnson code word.
        let comp_state: Vec<bool> = (0..4)
            .map(|c| {
                let l = fsm.latch_of_component(c);
                [true, false, true, false][l]
            })
            .collect();
        let bad = StateSet::singleton(&mut m, &space, &comp_state).unwrap();
        let r = check_invariant(&mut m, &fsm, &bad, &ReachOptions::default()).unwrap();
        assert!(matches!(r, CheckResult::Holds { .. }));
    }

    #[test]
    fn counter_reaches_its_max_with_correct_depth() {
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Bad: value 15 (all ones), reachable in exactly 15 steps.
        let comp_state: Vec<bool> = (0..4).map(|_| true).collect();
        let bad = StateSet::singleton(&mut m, &space, &comp_state).unwrap();
        match check_invariant(&mut m, &fsm, &bad, &ReachOptions::default()).unwrap() {
            CheckResult::Violated { depth, witness } => {
                assert_eq!(depth, 15);
                assert_eq!(witness, comp_state);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn initial_state_violation_found_at_depth_zero() {
        let net = generators::counter(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let bad = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        match check_invariant(&mut m, &fsm, &bad, &ReachOptions::default()).unwrap() {
            CheckResult::Violated { depth, .. } => assert_eq!(depth, 0),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn queue_never_overflows() {
        let net = generators::queue_controller(2);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Bad: count > capacity, i.e. count bit k set AND another bit set.
        // Find the component positions of count bits q2 (msb) and q0.
        let mut pattern = vec![None; space.len()];
        #[allow(clippy::needless_range_loop)] // pattern[c] written by latch position
        for c in 0..space.len() {
            let l = fsm.latch_of_component(c);
            // Latch order: h0,h1,q0,q1,q2,t0,t1 (declaration order of the
            // generator). count msb = q2 = latch index 4; q0 = index 2.
            if l == 4 {
                pattern[c] = Some(true);
            }
            if l == 2 {
                pattern[c] = Some(true);
            }
        }
        let bad = StateSet::from_cube(&m, &space, &pattern).unwrap();
        let r = check_invariant(&mut m, &fsm, &bad, &ReachOptions::default()).unwrap();
        assert!(
            matches!(r, CheckResult::Holds { .. }),
            "count exceeded capacity: {r:?}"
        );
    }
}
