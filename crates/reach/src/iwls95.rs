//! Partitioned transition relation with IWLS95-style clustering and early
//! quantification — the configuration of the paper's "VIS-IWLS" baseline.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_sim::EncodedFsm;

use crate::backends::ChiBackend;
use crate::common::{ReachOptions, ReachResult};
use crate::driver::run_fixed_point;
use crate::EngineKind;

/// A processed cluster: its relation and the quantifiable variables whose
/// last occurrence is this cluster.
pub(crate) struct Cluster {
    /// The cluster's conjoined per-latch relations.
    pub(crate) relation: Bdd,
    /// Cube of the quantifiable variables retired at this step.
    pub(crate) retire_cube: Bdd,
}

/// Builds clusters of per-latch relations, greedily conjoined until the
/// BDD size threshold is exceeded [IWLS95].
pub(crate) fn build_clusters(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    threshold: usize,
) -> Result<Vec<Bdd>, bfvr_bdd::BddError> {
    let mut clusters = Vec::new();
    let mut acc = Bdd::TRUE;
    for c in 0..fsm.num_latches() {
        let l = fsm.latch_of_component(c);
        let (_, u) = fsm.state_vars(l);
        let uu = m.var(u);
        let r = m.xnor(uu, fsm.next_fn(l))?;
        let joined = m.and(acc, r)?;
        if !acc.is_true() && m.size(joined) > threshold {
            clusters.push(acc);
            acc = r;
        } else {
            acc = joined;
        }
    }
    if !acc.is_true() || clusters.is_empty() {
        clusters.push(acc);
    }
    Ok(clusters)
}

/// Orders clusters and computes each step's retire cube: the greedy
/// IWLS95-flavored schedule — at every step pick the cluster that retires
/// the most quantifiable variables (variables absent from all remaining
/// clusters), breaking ties toward smaller support.
pub(crate) fn schedule(
    m: &mut BddManager,
    clusters: Vec<Bdd>,
    quantifiable: &[Var],
) -> Result<Vec<Cluster>, bfvr_bdd::BddError> {
    let mut remaining: Vec<Bdd> = clusters;
    let mut ordered = Vec::with_capacity(remaining.len());
    let is_q = |v: Var| quantifiable.contains(&v);
    while !remaining.is_empty() {
        let supports: Vec<Vec<Var>> = remaining
            .iter()
            .map(|&c| {
                m.support(c)
                    .vars()
                    .into_iter()
                    .filter(|&v| is_q(v))
                    .collect()
            })
            .collect();
        let mut best = 0usize;
        let mut best_score = (usize::MIN, usize::MAX);
        for i in 0..remaining.len() {
            let retired = supports[i]
                .iter()
                .filter(|v| {
                    supports
                        .iter()
                        .enumerate()
                        .all(|(j, s)| j == i || !s.contains(v))
                })
                .count();
            let score = (retired, usize::MAX - supports[i].len());
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        let chosen = remaining.swap_remove(best);
        let chosen_support: Vec<Var> = m
            .support(chosen)
            .vars()
            .into_iter()
            .filter(|&v| is_q(v))
            .collect();
        // Retire the chosen cluster's quantifiable vars that no remaining
        // cluster mentions.
        let remaining_supports: Vec<Vec<Var>> = remaining
            .iter()
            .map(|&c| {
                m.support(c)
                    .vars()
                    .into_iter()
                    .filter(|&v| is_q(v))
                    .collect()
            })
            .collect();
        let retire: Vec<Var> = chosen_support
            .into_iter()
            .filter(|v| remaining_supports.iter().all(|s| !s.contains(v)))
            .collect();
        let retire_cube = m.cube_from_vars(&retire)?;
        ordered.push(Cluster {
            relation: chosen,
            retire_cube,
        });
    }
    Ok(ordered)
}

/// Runs reachability with the partitioned transition relation.
pub fn reach_iwls95(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    let mut backend = ChiBackend::iwls95(fsm, opts.cluster_threshold);
    run_fixed_point(EngineKind::Iwls95, &mut backend, m, fsm, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Outcome;
    use crate::{reach_bfv, reach_monolithic};
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn iwls_agrees_with_monolithic_and_bfv() {
        for net in [
            generators::counter(6),
            generators::johnson(6),
            generators::queue_controller(2),
            bfvr_netlist::circuits::s27(),
            generators::paired_registers(4),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_iwls95(&mut m, &fsm, &ReachOptions::default());
            let b = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
            let c = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(a.reached_chi, b.reached_chi, "{} iwls vs mono", net.name());
            assert_eq!(a.reached_chi, c.reached_chi, "{} iwls vs bfv", net.name());
        }
    }

    #[test]
    fn small_threshold_makes_many_clusters() {
        let net = generators::counter(8);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let tiny = build_clusters(&mut m, &fsm, 1).unwrap();
        let big = build_clusters(&mut m, &fsm, 100_000).unwrap();
        assert!(tiny.len() > big.len());
        assert_eq!(big.len(), 1);
        // Both cluster sets conjoin to the same relation.
        let t1 = m.and_all(&tiny).unwrap();
        let t2 = m.and_all(&big).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn threshold_does_not_change_result() {
        let net = generators::traffic_chain(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let r1 = reach_iwls95(
            &mut m,
            &fsm,
            &ReachOptions {
                cluster_threshold: 5,
                ..Default::default()
            },
        );
        let r2 = reach_iwls95(
            &mut m,
            &fsm,
            &ReachOptions {
                cluster_threshold: 10_000,
                ..Default::default()
            },
        );
        assert_eq!(r1.reached_chi, r2.reached_chi);
    }
}
