//! Figure 2 flow storing sets as McMillan's conjunctive decomposition.
//!
//! Identical traversal to [`crate::reach_bfv`], but the reached set lives
//! in the §2.7 constraint view ([`bfvr_bfv::cdec::CDec`]). The per-step
//! translations between the two views (two BDD operations per component)
//! are reported as conversion time, quantifying the §2.7 observation that
//! the representations carry the same information.

use std::time::{Duration, Instant};

use bfvr_bdd::{BddManager, Func};
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::{Bfv, StateSet};
use bfvr_sim::{simulate_image_with, EncodedFsm};

use crate::common::{
    arm_limits, disarm_limits, failed_result, notify_iteration, outcome_of_bfv_error, Checkpoint,
    CheckpointState, IterMetrics, IterationView, Outcome, ReachOptions, ReachResult, SetView,
};
use crate::EngineKind;

/// Internal: the CDEC-engine resume seed — the reached set's
/// decomposition, the from vector and the iterations already completed.
pub(crate) type CdecSeed = (CDec, Bfv, usize);

/// Internal: pin a decomposition + vector pair against garbage collection.
fn pin_state(m: &BddManager, dec: &CDec, from: &Bfv) -> (Vec<Func>, Vec<Func>) {
    let dec_pins = dec.constraints().iter().map(|&c| m.func(c)).collect();
    (dec_pins, from.pin(m))
}

/// Runs reachability with the conjunctive-decomposition set representation.
pub fn reach_cdec(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    reach_cdec_seeded(m, fsm, opts, None)
}

/// The conjunctive-decomposition traversal, optionally resumed from a
/// checkpoint seed.
pub(crate) fn reach_cdec_seeded(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    opts: &ReachOptions,
    seed: Option<CdecSeed>,
) -> ReachResult {
    let start = Instant::now();
    arm_limits(m, opts);
    let space = fsm.space();
    let mut per_iteration = Vec::new();
    let mut conversion_time = Duration::ZERO;
    let (mut reached_dec, mut from_bfv, mut iterations) = match seed {
        Some((d, f, i)) => (d, f, i),
        None => {
            let init = match StateSet::singleton(m, &space, &fsm.initial_state()) {
                Ok(s) => s,
                Err(e) => {
                    let o = outcome_of_bfv_error(&e);
                    return failed_result(m, EngineKind::Cdec, o, start.elapsed());
                }
            };
            let Some(init_bfv) = init.as_bfv().cloned() else {
                // A singleton set is never empty; treat it as internal.
                return failed_result(m, EngineKind::Cdec, Outcome::Error, start.elapsed());
            };
            let dec = match CDec::from_bfv(m, &space, &init_bfv) {
                Ok(d) => d,
                Err(e) => {
                    let o = outcome_of_bfv_error(&e);
                    return failed_result(m, EngineKind::Cdec, o, start.elapsed());
                }
            };
            (dec, init_bfv, 0usize)
        }
    };
    // Pin the loop state against mid-operation reclaim passes.
    let mut _state_guards = pin_state(m, &reached_dec, &from_bfv);
    let outcome = loop {
        if opts.max_iterations.is_some_and(|cap| iterations >= cap) {
            break Outcome::IterationLimit;
        }
        let iter_start = Instant::now();
        if m.check_deadline().is_err() {
            break Outcome::TimeOut;
        }
        let op_start = Instant::now();
        let img = match simulate_image_with(m, fsm, &from_bfv, opts.schedule) {
            Ok(img) => img,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let image_time = op_start.elapsed();
        // Set algebra in the constraint view.
        let conv = Instant::now();
        let img_dec = match CDec::from_bfv(m, &space, &img) {
            Ok(d) => d,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let mut iter_conversion = conv.elapsed();
        conversion_time += iter_conversion;
        let op_start = Instant::now();
        let new_dec = match reached_dec.union(m, &space, &img_dec) {
            Ok(u) => u,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let union_time = op_start.elapsed();
        iterations += 1;
        if new_dec.constraints() == reached_dec.constraints() {
            break Outcome::FixedPoint;
        }
        reached_dec = new_dec;
        // Back to the vector view for the next simulation step.
        let conv = Instant::now();
        let reached_bfv = match reached_dec.to_bfv(m, &space) {
            Ok(f) => f,
            Err(e) => break outcome_of_bfv_error(&e),
        };
        let back_conv = conv.elapsed();
        iter_conversion += back_conv;
        conversion_time += back_conv;
        from_bfv = if opts.use_frontier && img.shared_size(m) <= reached_bfv.shared_size(m) {
            img
        } else {
            reached_bfv
        };
        _state_guards = pin_state(m, &reached_dec, &from_bfv);
        let mut roots: Vec<bfvr_bdd::Bdd> = reached_dec.constraints().to_vec();
        roots.extend_from_slice(from_bfv.components());
        let gc = m.maybe_collect_garbage(&roots);
        notify_iteration(
            m,
            fsm,
            opts,
            &IterationView {
                engine: EngineKind::Cdec,
                iteration: iterations,
                roots: &roots,
                set: SetView::Cdec {
                    reached: &reached_dec,
                    from: &from_bfv,
                },
            },
            &IterMetrics {
                gc,
                elapsed: iter_start.elapsed(),
                conversion: iter_conversion,
                ops: &[
                    ("image", image_time),
                    ("convert", iter_conversion),
                    ("union", union_time),
                ],
            },
            &mut per_iteration,
        );
    };
    let elapsed = start.elapsed();
    let peak_nodes = m.peak_nodes();
    disarm_limits(m);
    let checkpoint = if outcome == Outcome::FixedPoint || outcome == Outcome::Error {
        None
    } else {
        let (constraints, from) = pin_state(m, &reached_dec, &from_bfv);
        Some(Checkpoint {
            engine: EngineKind::Cdec,
            iterations,
            state: CheckpointState::Cdec { constraints, from },
        })
    };
    let chi = reached_dec.conjoin_all(m).ok();
    let reached_states = chi.map(|chi| crate::cf::count_states(m, fsm, chi));
    ReachResult {
        engine: EngineKind::Cdec,
        outcome,
        iterations,
        reached_states,
        reached_chi: chi.map(|c| m.func(c)),
        representation_nodes: Some(reached_dec.shared_size(m)),
        peak_nodes,
        elapsed,
        conversion_time,
        per_iteration,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach_bfv;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;

    #[test]
    fn cdec_agrees_with_bfv_engine() {
        for net in [
            generators::counter(5),
            generators::johnson(5),
            generators::paired_registers(4),
            bfvr_netlist::circuits::s27(),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_cdec(&mut m, &fsm, &ReachOptions::default());
            let b = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(a.reached_chi, b.reached_chi, "{}", net.name());
            assert_eq!(a.iterations, b.iterations, "{}", net.name());
            assert!(a.conversion_time > Duration::ZERO);
        }
    }
}
