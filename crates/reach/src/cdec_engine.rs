//! Figure 2 flow storing sets as McMillan's conjunctive decomposition.
//!
//! Identical traversal to [`crate::reach_bfv`], but the reached set lives
//! in the §2.7 constraint view ([`bfvr_bfv::cdec::CDec`]). The per-step
//! translations between the two views (two BDD operations per component)
//! are reported as conversion time, quantifying the §2.7 observation that
//! the representations carry the same information.

use bfvr_bdd::BddManager;
use bfvr_sim::EncodedFsm;

use crate::backends::CdecBackend;
use crate::common::{ReachOptions, ReachResult};
use crate::driver::run_fixed_point;
use crate::EngineKind;

/// Runs reachability with the conjunctive-decomposition set representation.
pub fn reach_cdec(m: &mut BddManager, fsm: &EncodedFsm, opts: &ReachOptions) -> ReachResult {
    let mut backend = CdecBackend::new(fsm, opts.schedule);
    run_fixed_point(EngineKind::Cdec, &mut backend, m, fsm, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Outcome;
    use crate::reach_bfv;
    use bfvr_netlist::generators;
    use bfvr_sim::OrderHeuristic;
    use std::time::Duration;

    #[test]
    fn cdec_agrees_with_bfv_engine() {
        for net in [
            generators::counter(5),
            generators::johnson(5),
            generators::paired_registers(4),
            bfvr_netlist::circuits::s27(),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let a = reach_cdec(&mut m, &fsm, &ReachOptions::default());
            let b = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(a.outcome, Outcome::FixedPoint, "{}", net.name());
            assert_eq!(a.reached_chi, b.reached_chi, "{}", net.name());
            assert_eq!(a.iterations, b.iterations, "{}", net.name());
            assert!(a.conversion_time > Duration::ZERO);
        }
    }
}
