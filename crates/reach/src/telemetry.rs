//! Bridges the engines into the `bfvr-obs` telemetry layer.
//!
//! The contract of everything in this module is **non-perturbation**:
//! only `&self` accessors of [`BddManager`] (and the set
//! representations) are read, so recording a trace never allocates BDD
//! nodes, never runs a garbage collection, and never touches a computed
//! cache. A traced run and an untraced run execute the exact same BDD
//! operations — unlike the `audit` observer path, which deliberately
//! forces a full collection per iteration (see `docs/observability.md`).

use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

use bfvr_bdd::BddManager;
use bfvr_obs::{Counters, IterRecord, LimitKind, SpanId, SpanKind, Tracer};
use bfvr_sim::EncodedFsm;

use crate::common::{lane_label, IterMetrics, IterationView, Outcome, ReachOptions, ReachResult};
use crate::EngineKind;
use bfvr_setrepr::SetView;

/// A shared handle to a [`Tracer`], as carried by
/// [`ReachOptions::trace`](crate::ReachOptions::trace).
///
/// The tracer is single-threaded by design (like [`BddManager`] itself);
/// the `Rc<RefCell<…>>` lets the caller keep a handle for writing
/// meta/run-span events while the engines record iterations through the
/// same stream. Racing lanes do **not** share this handle — each lane
/// runs a private collector tracer and the race driver merges the lane
/// streams afterwards (see [`crate::portfolio::run_racing`]).
pub type TraceHandle = Rc<RefCell<Tracer>>;

/// Wraps a tracer into the handle form [`crate::ReachOptions`] carries.
#[must_use]
pub fn trace_handle(tracer: Tracer) -> TraceHandle {
    Rc::new(RefCell::new(tracer))
}

/// Snapshots the manager's cumulative counters: [`bfvr_bdd::ManagerStats`],
/// unique-table occupancy ([`bfvr_bdd::UniqueTableStats`]) and the
/// per-operation computed caches. Read-only.
#[must_use]
pub fn counters_of(m: &BddManager) -> Counters {
    let s = m.stats();
    let u = m.unique_stats();
    let mut c = Counters::new()
        .with("allocated_nodes", s.allocated_nodes as f64)
        .with("peak_nodes", s.peak_nodes as f64)
        .with("mk_calls", s.mk_calls as f64)
        .with("cache_lookups", s.cache_lookups as f64)
        .with("cache_hits", s.cache_hits as f64)
        .with("gc_runs", s.gc_runs as f64)
        .with("gc_reclaimed", s.gc_reclaimed as f64)
        .with("reclaim_attempts", s.reclaim_attempts as f64)
        .with("reclaimed_nodes", s.reclaimed_nodes as f64)
        .with("cache_bytes", s.cache_bytes as f64)
        .with("unique_bytes", s.unique_bytes as f64)
        .with("unique_entries", u.entries as f64)
        .with("unique_slots", u.slots as f64)
        .with("unique_levels", u.levels as f64)
        .with("unique_occupied_levels", u.occupied_levels as f64);
    for cs in m.cache_stats() {
        // Interned names for the stock caches keep this allocation-free
        // on the per-iteration hot path; an unknown cache (a future
        // addition) falls back to formatting.
        match cache_counter_names(cs.name) {
            Some((lookups, hits, entries)) => {
                c.set(lookups, cs.lookups as f64);
                c.set(hits, cs.hits as f64);
                c.set(entries, cs.entries as f64);
            }
            None => {
                c.set(format!("cache.{}.lookups", cs.name), cs.lookups as f64);
                c.set(format!("cache.{}.hits", cs.name), cs.hits as f64);
                c.set(format!("cache.{}.entries", cs.name), cs.entries as f64);
            }
        }
    }
    c
}

/// `cache.<name>.{lookups,hits,entries}` as `&'static str` triples for
/// the caches [`BddManager`] is known to own.
fn cache_counter_names(name: &str) -> Option<(&'static str, &'static str, &'static str)> {
    Some(match name {
        "ite" => ("cache.ite.lookups", "cache.ite.hits", "cache.ite.entries"),
        "exists" => (
            "cache.exists.lookups",
            "cache.exists.hits",
            "cache.exists.entries",
        ),
        "and_exists" => (
            "cache.and_exists.lookups",
            "cache.and_exists.hits",
            "cache.and_exists.entries",
        ),
        "constrain" => (
            "cache.constrain.lookups",
            "cache.constrain.hits",
            "cache.constrain.entries",
        ),
        "restrict" => (
            "cache.restrict.lookups",
            "cache.restrict.hits",
            "cache.restrict.entries",
        ),
        "subst" => (
            "cache.subst.lookups",
            "cache.subst.hits",
            "cache.subst.entries",
        ),
        _ => return None,
    })
}

/// Shared BDD sizes of `(reached, from)` for whatever representation the
/// engine iterates on. Pure graph walks — no allocation.
pub(crate) fn view_sizes(m: &BddManager, set: &SetView<'_>) -> (usize, usize) {
    match set {
        SetView::Chi { reached, from } => (m.size(*reached), m.size(*from)),
        SetView::Vector { reached, from } => (reached.shared_size(m), from.shared_size(m)),
        SetView::Cdec { reached, from } => (reached.shared_size(m), from.shared_size(m)),
        // ZDD sets live in the lane-private store; report its node
        // counts so traces still show representation growth.
        SetView::Zdd {
            store,
            reached,
            from,
        } => (store.size(*reached), store.size(*from)),
        // Zonotopes have no node graph: generator rows + center.
        SetView::Zonotope { reached, from } => (reached.rank() + 1, from.rank() + 1),
    }
}

/// Reached-state count when the representation makes it free to read:
/// χ-based engines only ([`BddManager::sat_count`] is `&self`). The
/// vector/decomposition engines would have to *build* a χ to count —
/// an allocation the engine itself never performs, so telemetry must not
/// either; their traces carry `None` and the count appears once in the
/// final `engine_end` event (computed by the engine's own untimed
/// post-run accounting).
pub(crate) fn view_states(m: &BddManager, fsm: &EncodedFsm, set: &SetView<'_>) -> Option<f64> {
    match set {
        SetView::Chi { reached, .. } => Some(crate::cf::count_states(m, fsm, *reached)),
        SetView::Vector { .. } | SetView::Cdec { .. } => None,
        // Counting a ZDD family or a zonotope is a read-only walk of
        // lane-private (non-manager) state: free to report.
        SetView::Zdd { store, reached, .. } => Some(store.count(*reached)),
        SetView::Zonotope { reached, .. } => Some(reached.count()),
    }
}

/// Builds one iteration's trace record from the engine's measurements
/// plus read-only manager state.
pub(crate) fn iter_record(
    m: &BddManager,
    fsm: &EncodedFsm,
    view: &IterationView<'_>,
    metrics: &IterMetrics<'_>,
) -> IterRecord {
    let (reached_nodes, frontier_nodes) = view_sizes(m, &view.set);
    IterRecord {
        engine: Cow::Borrowed(lane_label(view.engine, view.repr)),
        iteration: view.iteration as u64,
        dur_us: metrics.elapsed.as_micros() as u64,
        frontier_nodes: frontier_nodes as u64,
        reached_nodes: reached_nodes as u64,
        live_nodes: metrics.gc.live as u64,
        allocated_nodes: m.allocated() as u64,
        peak_nodes: m.peak_nodes() as u64,
        gc_collected: metrics.gc.collected as u64,
        states: view_states(m, fsm, &view.set),
        snapshot: counters_of(m),
        ops: metrics
            .ops
            .iter()
            .map(|&(name, dur)| (Cow::Borrowed(name), dur.as_micros() as f64))
            .collect(),
    }
}

/// Opens the engine span for a dispatched run (no-op without a trace).
pub(crate) fn engine_span_open(
    opts: &ReachOptions,
    m: &BddManager,
    kind: EngineKind,
) -> Option<SpanId> {
    opts.trace.as_ref().map(|t| {
        t.borrow_mut()
            .open_span(SpanKind::Engine, kind.label(), counters_of(m))
    })
}

/// Closes the engine span and records the end-of-traversal summary plus
/// a `limit` event when the run tripped a resource ceiling. A
/// fault-injected `NodeLimit`/`Deadline` takes the same error path as a
/// real exhaustion, so it produces the same `limit` event — by design.
pub(crate) fn engine_span_close(
    opts: &ReachOptions,
    m: &BddManager,
    span: Option<SpanId>,
    r: &ReachResult,
) {
    let Some(trace) = &opts.trace else {
        return;
    };
    let mut t = trace.borrow_mut();
    if let Some(id) = span {
        t.close_span(id, &counters_of(m));
    }
    let lane = lane_label(r.engine, r.repr);
    t.engine_end(
        lane,
        r.outcome.label(),
        r.iterations as u64,
        r.reached_states,
        r.peak_nodes as u64,
        r.elapsed.as_micros() as u64,
    );
    match r.outcome {
        Outcome::MemOut => t.limit(lane, LimitKind::NodeLimit, r.iterations as u64),
        Outcome::TimeOut => t.limit(lane, LimitKind::Deadline, r.iterations as u64),
        _ => {}
    }
}
