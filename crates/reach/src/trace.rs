//! Counterexample trace extraction: a concrete run from the initial
//! state to a target state, with the input vector driving every step.
//!
//! Forward reachability remembers its frontier "onion rings"; a target
//! found in ring `d` is then walked backwards — for each step, a
//! predecessor in the previous ring and a concrete input are extracted
//! from the BDD `⋀_l (δ_l(v,w) ↔ s_{i}[l]) ∧ χ_{ring_{i-1}}(v)` with a
//! single `pick_minterm`. The result is checked against the netlist-level
//! semantics by the tests (and can be replayed on any simulator).

use bfvr_bdd::BddManager;
use bfvr_bfv::{BfvError, StateSet};
use bfvr_sim::{simulate_image_with, EncodedFsm};

use crate::common::ReachOptions;

/// A concrete run of the machine: `states[0]` is the initial state,
/// `inputs[i]` drives the step from `states[i]` to `states[i+1]`.
///
/// All bit-vectors are in *component order* (see
/// [`bfvr_sim::EncodedFsm::latch_of_component`] to map back to latches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Visited states, component order, length `k+1` for a depth-`k` trace.
    pub states: Vec<Vec<bool>>,
    /// Inputs applied at each step (netlist input order), length `k`.
    pub inputs: Vec<Vec<bool>>,
}

impl Trace {
    /// Number of steps.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inputs.len()
    }
}

/// Finds a minimal-depth concrete trace from the initial state into
/// `target`, or `None` if `target` is unreachable.
///
/// ```
/// use bfvr_bfv::StateSet;
/// use bfvr_netlist::generators;
/// use bfvr_reach::{find_trace, ReachOptions};
/// use bfvr_sim::{EncodedFsm, OrderHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::shift_register(4);
/// let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
/// let space = fsm.space();
/// // All-ones takes exactly 4 shifts of d=1 to reach.
/// let target = StateSet::singleton(&mut m, &space, &vec![true; 4])?;
/// let trace = find_trace(&mut m, &fsm, &target, &ReachOptions::default())?.unwrap();
/// assert_eq!(trace.depth(), 4);
/// assert!(trace.inputs.iter().all(|i| i[0]));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion (per `opts`).
pub fn find_trace(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    target: &StateSet,
    opts: &ReachOptions,
) -> Result<Option<Trace>, BfvError> {
    let space = fsm.space();
    let init = StateSet::singleton(m, &space, &fsm.initial_state())?;
    // Forward pass, remembering each frontier ring.
    let mut rings: Vec<StateSet> = vec![init.clone()];
    let mut reached = init;
    let mut hit_depth: Option<usize> = None;
    if !reached.intersect(m, &space, target)?.is_empty() {
        hit_depth = Some(0);
    }
    while hit_depth.is_none() {
        if opts.max_iterations.is_some_and(|cap| rings.len() > cap) {
            return Ok(None);
        }
        // Rings grow from the non-empty initial singleton and images of
        // non-empty sets are non-empty; a missing ring or vector means
        // there is nothing left to explore.
        let Some(from_bfv) = rings.last().and_then(StateSet::as_bfv) else {
            return Ok(None);
        };
        let img = simulate_image_with(m, fsm, from_bfv, opts.schedule)?;
        let img_set = StateSet::NonEmpty(img);
        let new_reached = reached.union(m, &space, &img_set)?;
        if new_reached == reached {
            return Ok(None); // fix point, target unreachable
        }
        if !img_set.intersect(m, &space, target)?.is_empty() {
            hit_depth = Some(rings.len());
        }
        rings.push(img_set);
        reached = new_reached;
    }
    // The loop only exits with a hit at a recorded depth.
    let Some(depth) = hit_depth else {
        return Ok(None);
    };
    // Pick the endpoint.
    let hit = rings[depth].intersect(m, &space, target)?;
    let Some(mut cur) = hit.members(m, &space)?.into_iter().next() else {
        return Ok(None);
    };
    // Backward pass: predecessor + input per step.
    let mut states = vec![cur.clone()];
    let mut inputs_rev: Vec<Vec<bool>> = Vec::new();
    for i in (1..=depth).rev() {
        let Some((prev, inp)) = step_back(m, fsm, &rings[i - 1], &cur)? else {
            return Ok(None);
        };
        states.push(prev.clone());
        inputs_rev.push(inp);
        cur = prev;
    }
    states.reverse();
    inputs_rev.reverse();
    Ok(Some(Trace {
        states,
        inputs: inputs_rev,
    }))
}

/// A concrete `(state, input)` pair in component/input order.
type StepBack = (Vec<bool>, Vec<bool>);

/// Finds some `(state ∈ ring, input)` with `δ(state, input) = next`.
/// Returns `None` when no predecessor exists (cannot happen for states
/// taken from the successor ring).
fn step_back(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    ring: &StateSet,
    next: &[bool],
) -> Result<Option<StepBack>, BfvError> {
    let space = fsm.space();
    // cond(v, w) = ⋀_c (δ_c(v,w) ↔ next[c]) ∧ χ_ring(v)
    let mut cond = ring.to_characteristic(m, &space)?;
    for (c, next_fn) in fsm.next_fns_in_component_order().into_iter().enumerate() {
        let lit = if next[c] { next_fn } else { m.not(next_fn) };
        cond = m.and(cond, lit)?;
        if cond.is_false() {
            break;
        }
    }
    let Some(asg) = m.pick_minterm(cond, m.num_vars()) else {
        return Ok(None);
    };
    let state: Vec<bool> = space.vars().iter().map(|v| asg[v.0 as usize]).collect();
    let inputs: Vec<bool> = (0..fsm.input_vars().len())
        .map(|i| asg[fsm.input_var(i).0 as usize])
        .collect();
    Ok(Some((state, inputs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::{generators, Netlist};
    use bfvr_sim::OrderHeuristic;

    /// Replays a trace on the netlist interpreter and checks every step.
    fn validate(net: &Netlist, fsm: &EncodedFsm, trace: &Trace) {
        let order = bfvr_netlist::topo::order(net).unwrap();
        // Convert component-order state to latch order.
        let to_latch = |comp_state: &[bool]| -> Vec<bool> {
            let mut latch = vec![false; comp_state.len()];
            for (c, &b) in comp_state.iter().enumerate() {
                latch[fsm.latch_of_component(c)] = b;
            }
            latch
        };
        assert_eq!(
            to_latch(&trace.states[0]),
            net.initial_state(),
            "trace must start at reset"
        );
        for (i, inp) in trace.inputs.iter().enumerate() {
            let state = to_latch(&trace.states[i]);
            let mut vals = vec![false; net.num_signals()];
            for (k, &s) in net.inputs().iter().enumerate() {
                vals[s.index()] = inp[k];
            }
            for (k, l) in net.latches().iter().enumerate() {
                vals[l.output.index()] = state[k];
            }
            for &g in &order {
                let gate = &net.gates()[g];
                let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&ins);
            }
            let got: Vec<bool> = net
                .latches()
                .iter()
                .map(|l| vals[l.input.index()])
                .collect();
            assert_eq!(
                got,
                to_latch(&trace.states[i + 1]),
                "replay diverged at step {i}"
            );
        }
    }

    #[test]
    fn counter_trace_to_seven() {
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Target: counter value 7 (latch bits 1110 lsb-first).
        let comp: Vec<bool> = (0..4)
            .map(|c| [true, true, true, false][fsm.latch_of_component(c)])
            .collect();
        let target = StateSet::singleton(&mut m, &space, &comp).unwrap();
        let trace = find_trace(&mut m, &fsm, &target, &ReachOptions::default())
            .unwrap()
            .expect("7 is reachable");
        assert_eq!(trace.depth(), 7, "minimal depth to value 7");
        validate(&net, &fsm, &trace);
        // Every step of a counter trace must have en = 1.
        assert!(
            trace.inputs.iter().all(|i| i[0]),
            "counter must be enabled every step"
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        let net = generators::johnson(5);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // 10101 is not a Johnson code word.
        let comp: Vec<bool> = (0..5)
            .map(|c| [true, false, true, false, true][fsm.latch_of_component(c)])
            .collect();
        let target = StateSet::singleton(&mut m, &space, &comp).unwrap();
        assert!(find_trace(&mut m, &fsm, &target, &ReachOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn depth_zero_trace_for_initial_state() {
        let net = generators::rotator(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let space = fsm.space();
        let target = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        let trace = find_trace(&mut m, &fsm, &target, &ReachOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(trace.depth(), 0);
        assert_eq!(trace.states, vec![fsm.initial_state()]);
    }

    #[test]
    fn queue_trace_reaches_full() {
        let net = generators::queue_controller(2);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Target cube: the capacity bit of count (latch index 4 = q2) set.
        let mut pattern = vec![None; space.len()];
        #[allow(clippy::needless_range_loop)]
        for c in 0..space.len() {
            if fsm.latch_of_component(c) == 4 {
                pattern[c] = Some(true);
            }
        }
        let target = StateSet::from_cube(&m, &space, &pattern).unwrap();
        let trace = find_trace(&mut m, &fsm, &target, &ReachOptions::default())
            .unwrap()
            .unwrap();
        // Filling a 4-slot FIFO takes exactly 4 pushes.
        assert_eq!(trace.depth(), 4);
        validate(&net, &fsm, &trace);
    }

    #[test]
    fn trace_on_multi_state_target_picks_minimal_depth() {
        let net = generators::shift_register(5);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        // Target: any state with stage 0 set — reachable in one step.
        let mut pattern = vec![None; space.len()];
        #[allow(clippy::needless_range_loop)]
        for c in 0..space.len() {
            if fsm.latch_of_component(c) == 0 {
                pattern[c] = Some(true);
            }
        }
        let target = StateSet::from_cube(&m, &space, &pattern).unwrap();
        let trace = find_trace(&mut m, &fsm, &target, &ReachOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(trace.depth(), 1);
        validate(&net, &fsm, &trace);
        assert!(trace.inputs[0][0], "d must be 1 to set stage 0");
    }
}
