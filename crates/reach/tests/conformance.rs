//! Shared [`SetRepr`] trait-conformance suite, run against every backend.
//!
//! These are the laws the trait contract documents (see
//! `bfvr-setrepr::SetRepr`): empty/universe import laws, union
//! idempotence and commutativity, image-of-empty, the `to_chi ∘
//! from_chi` round-trip (identity for exact backends, containment for
//! over-approximating ones), and checkpoint → restore equivalence. One
//! generic checker, instantiated per backend, so a new representation
//! inherits the whole battery by construction.

use bfvr_bdd::{Bdd, BddManager};
use bfvr_netlist::{circuits, generators, Netlist};
use bfvr_reach::backends::{BfvBackend, CdecBackend, ChiBackend, ZddBackend, ZonotopeBackend};
use bfvr_reach::{ReprCheckpoint, ReprKind, SetRepr};
use bfvr_setrepr::Zonotope;
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const ORDER: OrderHeuristic = OrderHeuristic::DfsFanin;

fn circuits_under_test() -> Vec<Netlist> {
    vec![circuits::s27(), generators::counter(4), generators::lfsr(5)]
}

/// Runs every law against one backend over one encoded FSM.
fn check_laws<B: SetRepr>(mut backend: B, m: &mut BddManager, fsm: &EncodedFsm, name: &str) {
    backend
        .prepare(m)
        .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));

    // --- initial set and union idempotence -------------------------------
    let init = backend.initial(m).unwrap();
    let uu = backend.union(m, &init, &init).unwrap();
    assert!(
        backend.set_eq(m, &uu, &init),
        "{name}: union(s, s) != s (idempotence)"
    );

    // --- union commutativity (up to set_eq) ------------------------------
    let img = backend.image(m, &init).unwrap();
    let ab = backend.union(m, &init, &img).unwrap();
    let ba = backend.union(m, &img, &init).unwrap();
    assert!(
        backend.set_eq(m, &ab, &ba),
        "{name}: union(a, b) != union(b, a)"
    );

    // --- universe law ----------------------------------------------------
    // ⊤ is representable in every backend (the universe is an affine
    // subspace, so even the zonotope hull is exact on it).
    let top = backend
        .from_chi(m, Bdd::TRUE)
        .unwrap()
        .unwrap_or_else(|| panic!("{name}: from_chi(⊤) must be representable"));
    let top_chi = backend.to_chi(m, &top).unwrap();
    assert!(top_chi.is_true(), "{name}: to_chi(from_chi(⊤)) != ⊤");
    if let Some(states) = backend.count_states(m, &top) {
        let n = fsm.num_latches() as f64;
        assert_eq!(states, 2f64.powf(n), "{name}: |⊤| != 2^n");
    }

    // --- empty law and image-of-empty ------------------------------------
    // ⊥ has no functional vector, decomposition or affine hull; backends
    // either refuse it (None) or must round-trip it exactly and map it
    // to an empty image.
    match backend.from_chi(m, Bdd::FALSE).unwrap() {
        None => {} // unrepresentable: the documented escape
        Some(empty) => {
            let empty_chi = backend.to_chi(m, &empty).unwrap();
            assert!(empty_chi.is_false(), "{name}: to_chi(from_chi(⊥)) != ⊥");
            if let Some(states) = backend.count_states(m, &empty) {
                assert_eq!(states, 0.0, "{name}: |⊥| != 0");
            }
            let img_empty = backend.image(m, &empty).unwrap();
            let img_chi = backend.to_chi(m, &img_empty).unwrap();
            assert!(img_chi.is_false(), "{name}: image(∅) != ∅");
        }
    }

    // --- to_chi ∘ from_chi round-trip on a reachable set ------------------
    let reached = backend.union(m, &init, &img).unwrap();
    let chi = backend.to_chi(m, &reached).unwrap();
    let back = backend
        .from_chi(m, chi)
        .unwrap()
        .unwrap_or_else(|| panic!("{name}: from_chi of a non-empty set returned None"));
    let chi2 = backend.to_chi(m, &back).unwrap();
    if backend.over_approximates() {
        // Containment: nothing of χ escapes its own re-import.
        let not_chi2 = m.not(chi2);
        let escapes = m.and(chi, not_chi2).unwrap();
        assert!(
            escapes.is_false(),
            "{name}: from_chi does not contain its χ"
        );
    } else {
        assert!(chi2 == chi, "{name}: to_chi ∘ from_chi != id");
    }

    // --- checkpoint → restore equivalence --------------------------------
    let cp = backend.checkpoint(m, &reached, &img).unwrap();
    let (r2, f2) = backend
        .restore(m, &cp)
        .unwrap()
        .unwrap_or_else(|| panic!("{name}: restore rejected its own checkpoint"));
    assert!(
        backend.set_eq(m, &r2, &reached),
        "{name}: restored reached set differs"
    );
    assert!(
        backend.set_eq(m, &f2, &img),
        "{name}: restored from set differs"
    );

    // A checkpoint from a different representation shape must be
    // rejected with Ok(None), not misinterpreted.
    if backend.kind() != ReprKind::Zonotope {
        let zeros = vec![false; fsm.num_latches()];
        let foreign = ReprCheckpoint::Zonotope {
            reached: Zonotope::point(&zeros),
            from: Zonotope::point(&zeros),
        };
        assert!(
            backend.restore(m, &foreign).unwrap().is_none(),
            "{name}: restore accepted a foreign checkpoint shape"
        );
    }
}

/// Instantiates the battery for every backend over every test circuit.
#[test]
fn every_backend_satisfies_the_setrepr_laws() {
    for net in circuits_under_test() {
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ChiBackend::monolithic(&fsm), &mut m, &fsm, "chi/mono");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ChiBackend::cbm(&fsm), &mut m, &fsm, "chi/cbm");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ChiBackend::iwls95(&fsm, 100), &mut m, &fsm, "chi/iwls95");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ZddBackend::monolithic(&fsm), &mut m, &fsm, "zdd/mono");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ZddBackend::cbm(&fsm), &mut m, &fsm, "zdd/cbm");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ZddBackend::iwls95(&fsm, 100), &mut m, &fsm, "zdd/iwls95");
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(
                BfvBackend::new(&fsm, Default::default()),
                &mut m,
                &fsm,
                "bfv",
            );
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(
                CdecBackend::new(&fsm, Default::default()),
                &mut m,
                &fsm,
                "cdec",
            );
        }
        {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            check_laws(ZonotopeBackend::new(&fsm), &mut m, &fsm, "zono");
        }
    }
}
