//! Sift-under-traversal parity: `--sift` is a *graph-shape* change,
//! never a semantic one. Every exact engine × representation lane must
//! report bit-identical results (reached states, iterations, outcome)
//! with dynamic reordering armed or off — and the lanes whose
//! representation is structurally tied to its variable order
//! (BFV/CDEC/ZDD/zonotope) must decline the request entirely, running
//! zero reorder passes. The test-suite twin of the CI `reorder-smoke`
//! job.

use bfvr_netlist::{generators, Netlist};
use bfvr_reach::portfolio::Lane;
use bfvr_reach::{run_repr, Outcome, ReachOptions, ReachResult};
use bfvr_setrepr::ReprKind;
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// Circuits big enough (under a deliberately bad static order) to cross
/// the sifting floor and actually fire the trigger, yet small enough to
/// keep the full lane × order sweep in test budget. Debug builds run the
/// two cheapest families only (the unoptimized BFV/CDEC lanes on the
/// wider circuits dominate the sweep's wall clock by minutes); the CI
/// `reorder-smoke` job runs the full matrix in release.
fn sift_circuits() -> Vec<(&'static str, Netlist, f64)> {
    let mut v = vec![
        ("pair6", generators::paired_registers(6), 64.0),
        ("queue4", generators::queue_controller(4), 272.0),
    ];
    if cfg!(not(debug_assertions)) {
        v.push(("mask10", generators::masked_accumulator(10), 1024.0));
        v.push(("load12", generators::loadable_register(12), 1587.0));
    }
    v
}

/// Deliberately bad static orders: reversed declaration order splits
/// every current/next pair across the whole order, and raw declaration
/// order interleaves unrelated register halves. Debug builds take the
/// reversed order only (see [`sift_circuits`] on the budget).
fn bad_orders() -> Vec<OrderHeuristic> {
    let mut v = vec![OrderHeuristic::Reversed];
    if cfg!(not(debug_assertions)) {
        v.push(OrderHeuristic::Declaration);
    }
    v
}

fn run_lane(net: &Netlist, lane: Lane, order: OrderHeuristic, sift: bool) -> ReachResult {
    let (mut m, fsm) = EncodedFsm::encode(net, order).unwrap();
    let opts = ReachOptions {
        sift,
        // Fire eagerly so the sweep's small circuits still reorder.
        sift_trigger: 1.2,
        ..ReachOptions::default()
    };
    run_repr(lane.engine, lane.repr, &mut m, &fsm, &opts)
}

#[test]
fn sift_matches_static_for_every_exact_lane() {
    let mut fired_total = 0usize;
    for (name, net, expected) in sift_circuits() {
        for order in bad_orders() {
            for lane in Lane::all_lanes() {
                if lane.repr.over_approximates() {
                    // Zonotope lanes have no exact count to compare.
                    continue;
                }
                let stat = run_lane(&net, lane, order, false);
                assert_eq!(stat.outcome, Outcome::FixedPoint, "{name}/{lane:?} static");
                assert_eq!(
                    stat.reached_states,
                    Some(expected),
                    "{name}/{lane:?} static count"
                );
                assert_eq!(stat.reorders, 0, "{name}/{lane:?}: static run reordered");
                let sift = run_lane(&net, lane, order, true);
                assert_eq!(
                    sift.outcome, stat.outcome,
                    "{name}/{lane:?} {order:?}: outcome diverged under --sift"
                );
                assert_eq!(
                    sift.reached_states, stat.reached_states,
                    "{name}/{lane:?} {order:?}: counts diverged under --sift"
                );
                assert_eq!(
                    sift.iterations, stat.iterations,
                    "{name}/{lane:?} {order:?}: iteration counts diverged under --sift"
                );
                if lane.repr.supports_reorder() {
                    fired_total += sift.reorders;
                } else {
                    assert_eq!(
                        sift.reorders, 0,
                        "{name}/{lane:?}: order-tied representation ran a reorder pass"
                    );
                }
            }
        }
    }
    // The sweep must actually exercise the reorder path somewhere —
    // a parity claim over zero firings would be vacuous.
    assert!(
        fired_total > 0,
        "no χ lane fired a single reorder pass across the whole sweep"
    );
}

#[test]
fn sift_fires_and_shrinks_the_live_graph() {
    // paired_registers under the reversed order is the classic
    // interleaving pathology: current/next halves end up maximally far
    // apart, the monolithic relation blows up, and one sift pass
    // collapses it by orders of magnitude.
    let net = generators::paired_registers(6);
    let lane = Lane::new(bfvr_reach::EngineKind::Monolithic, ReprKind::Chi);
    let r = run_lane(&net, lane, OrderHeuristic::Reversed, true);
    assert_eq!(r.outcome, Outcome::FixedPoint);
    assert_eq!(r.reached_states, Some(64.0));
    assert!(r.reorders >= 1, "trigger never fired");
    let (before, after) = r.reorder_nodes;
    assert!(
        after < before,
        "sifting grew the live graph: {before} -> {after}"
    );
    // The acceptance bar for the pathological families is a ≥20% cut;
    // this one routinely manages >90%.
    assert!(
        (after as f64) <= (before as f64) * 0.8,
        "sifting cut less than 20%: {before} -> {after}"
    );
}

#[test]
fn sift_declines_off_by_default_and_on_order_tied_lanes() {
    // Default options: no sifting anywhere, even on χ lanes.
    let net = generators::paired_registers(6);
    let lane = Lane::new(bfvr_reach::EngineKind::Monolithic, ReprKind::Chi);
    let r = run_lane(&net, lane, OrderHeuristic::Reversed, false);
    assert_eq!(r.reorders, 0);
    assert_eq!(r.reorder_nodes, (0, 0));
    // Kind-level capability matches the backend opt-in.
    assert!(ReprKind::Chi.supports_reorder());
    for repr in [
        ReprKind::Bfv,
        ReprKind::Cdec,
        ReprKind::Zdd,
        ReprKind::Zonotope,
    ] {
        assert!(!repr.supports_reorder(), "{repr:?} must decline reorder");
    }
}
