//! Frozen-image parity: `--frozen` is an execution-plan change, never a
//! semantic one. Every exact engine must report bit-identical results
//! (reached states, iterations, outcome) with the frozen parallel image
//! path on or off, at every worker count — the test-suite twin of the
//! CI `parallel-smoke` job.

use bfvr_netlist::{circuits, generators, Netlist};
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const ORDER: OrderHeuristic = OrderHeuristic::DfsFanin;

fn smoke_circuits() -> Vec<(&'static str, Netlist, f64)> {
    vec![
        ("s27", circuits::s27(), 6.0),
        ("queue3", generators::queue_controller(3), 72.0),
        ("lfsr6", generators::lfsr(6), 63.0),
    ]
}

fn run_with(
    net: &Netlist,
    engine: EngineKind,
    frozen: bool,
    jobs: usize,
) -> bfvr_reach::ReachResult {
    let (mut m, fsm) = EncodedFsm::encode(net, ORDER).unwrap();
    let opts = ReachOptions {
        frozen,
        jobs,
        ..ReachOptions::default()
    };
    run(engine, &mut m, &fsm, &opts)
}

#[test]
fn frozen_matches_sequential_for_every_exact_engine() {
    for (name, net, expected) in smoke_circuits() {
        for engine in EngineKind::all() {
            let seq = run_with(&net, engine, false, 0);
            assert_eq!(seq.outcome, Outcome::FixedPoint, "{name}/{engine:?} seq");
            assert_eq!(seq.reached_states, Some(expected), "{name}/{engine:?} seq");
            assert!(
                seq.frozen_jobs.is_none(),
                "{name}/{engine:?}: sequential run reported a pool"
            );
            for jobs in [1usize, 2, 4] {
                let froz = run_with(&net, engine, true, jobs);
                assert_eq!(
                    froz.outcome, seq.outcome,
                    "{name}/{engine:?} jobs={jobs}: outcome diverged"
                );
                assert_eq!(
                    froz.reached_states, seq.reached_states,
                    "{name}/{engine:?} jobs={jobs}: counts diverged"
                );
                assert_eq!(
                    froz.iterations, seq.iterations,
                    "{name}/{engine:?} jobs={jobs}: iteration counts diverged"
                );
                if engine.frozen_capable() {
                    let eff = froz
                        .frozen_jobs
                        .unwrap_or_else(|| panic!("{name}/{engine:?}: no effective-jobs report"));
                    assert!(
                        eff >= 1 && eff <= jobs,
                        "{name}/{engine:?}: effective jobs {eff} out of range"
                    );
                } else {
                    // χ engines have no per-component compose to freeze;
                    // the flag is accepted and ignored.
                    assert!(
                        froz.frozen_jobs.is_none(),
                        "{name}/{engine:?}: unexpected pool"
                    );
                }
            }
        }
    }
}

#[test]
fn frozen_capability_matches_engine_family() {
    assert!(EngineKind::Bfv.frozen_capable());
    assert!(EngineKind::Cdec.frozen_capable());
    assert!(!EngineKind::Monolithic.frozen_capable());
    assert!(!EngineKind::Cbm.frozen_capable());
    assert!(!EngineKind::Iwls95.frozen_capable());
}
