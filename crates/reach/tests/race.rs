//! Race-determinism regression: `run_racing` must return bit-identical
//! reached-state counts to sequential runs of the same lane set, and a
//! losing lane's cancellation must never surface as [`Outcome::Error`].

use std::time::Duration;

use bfvr_netlist::{circuits, generators, Netlist};
use bfvr_reach::portfolio::{run_racing, EscalationPolicy, Lane, RaceConfig};
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions, ReprKind};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const ORDER: OrderHeuristic = OrderHeuristic::DfsFanin;

fn bundled_circuits() -> Vec<(&'static str, Netlist)> {
    vec![
        ("s27", circuits::s27()),
        ("queue4", generators::queue_controller(4)),
        ("lfsr10", generators::lfsr(10)),
    ]
}

fn sequential_count(net: &Netlist, engine: EngineKind, opts: &ReachOptions) -> f64 {
    let (mut m, fsm) = EncodedFsm::encode(net, ORDER).unwrap();
    let r = run(engine, &mut m, &fsm, opts);
    assert_eq!(r.outcome, Outcome::FixedPoint);
    r.reached_states.unwrap()
}

#[test]
fn racing_matches_sequential_counts_on_three_circuits() {
    let lanes = [
        Lane::native(EngineKind::Iwls95),
        Lane::native(EngineKind::Bfv),
    ];
    let opts = ReachOptions::default();
    for (name, net) in bundled_circuits() {
        // Every engine, run alone, converges to the same unique least
        // fixed point...
        let counts: Vec<f64> = lanes
            .iter()
            .map(|&l| sequential_count(&net, l.engine, &opts))
            .collect();
        assert!(
            counts.iter().all(|c| c.to_bits() == counts[0].to_bits()),
            "{name}: engines disagree sequentially: {counts:?}"
        );
        // ...so whichever lane wins the race, the count is bit-identical.
        let report = run_racing(&lanes, &net, &opts, &RaceConfig::default());
        let result = report.result.expect("non-empty race has a result");
        assert_eq!(result.outcome, Outcome::FixedPoint, "{name}");
        assert_eq!(
            result.reached_states.unwrap().to_bits(),
            counts[0].to_bits(),
            "{name}: race count diverges from sequential"
        );
        assert_eq!(report.lanes.len(), lanes.len());
        let winner = report.winner.expect("completed race names a winner");
        assert_eq!(report.lanes[winner].engine, result.engine);
        assert_eq!(report.lanes[winner].outcome, Some(Outcome::FixedPoint));
        assert!(!report.lanes[winner].cancelled);
    }
}

#[test]
fn losing_lanes_are_cancelled_not_errored() {
    // All five native lanes on one circuit: exactly one lane wins, and
    // every other lane either also completed (finished before the cancel
    // poll caught it) or was cancelled — reported as `T.O.`, never `ERR`.
    let net = generators::queue_controller(4);
    let opts = ReachOptions::default();
    for _ in 0..3 {
        let report = run_racing(&Lane::native_lanes(), &net, &opts, &RaceConfig::default());
        let result = report.result.expect("race result");
        assert_eq!(result.outcome, Outcome::FixedPoint);
        for lane in &report.lanes {
            assert_ne!(
                lane.outcome,
                Some(Outcome::Error),
                "cancellation must ride the deadline path: {lane:?}"
            );
            if let Some(outcome) = lane.outcome {
                assert!(
                    matches!(outcome, Outcome::FixedPoint | Outcome::TimeOut),
                    "unexpected lane outcome {outcome:?}: {lane:?}"
                );
            } else {
                // Skipped before starting only happens once a winner is
                // already known.
                assert!(lane.cancelled);
            }
        }
        let winners = report
            .lanes
            .iter()
            .filter(|l| l.outcome == Some(Outcome::FixedPoint) && !l.cancelled)
            .count();
        assert!(winners >= 1);
    }
}

#[test]
fn full_lane_matrix_races_new_representations() {
    // The widened portfolio: engine × representation, including the ZDD
    // and zonotope lanes. The winner must be an exact lane with the exact
    // count; zonotope lanes report a flagged upper bound.
    let net = circuits::s27();
    let opts = ReachOptions::default();
    let lanes = Lane::all_lanes();
    assert!(
        lanes.iter().filter(|l| l.repr == ReprKind::Zdd).count() >= 3,
        "expected ZDD lanes in the matrix"
    );
    assert!(
        lanes.iter().any(|l| l.repr == ReprKind::Zonotope),
        "expected a zonotope lane in the matrix"
    );
    let exact = sequential_count(&net, EngineKind::Bfv, &opts);
    let report = run_racing(&lanes, &net, &opts, &RaceConfig::default());
    let result = report.result.expect("race result");
    assert_eq!(result.outcome, Outcome::FixedPoint);
    assert!(
        !result.over_approx,
        "an over-approximating lane must not win"
    );
    assert_eq!(result.reached_states.unwrap().to_bits(), exact.to_bits());
    for lane in &report.lanes {
        assert_eq!(lane.over_approx, lane.repr.over_approximates());
        if lane.outcome == Some(Outcome::FixedPoint) {
            if let Some(states) = lane.reached_states {
                if lane.over_approx {
                    // Upper bound: never undercounts the exact answer.
                    assert!(states >= exact, "{lane:?} undercounts");
                } else {
                    assert_eq!(states.to_bits(), exact.to_bits(), "{lane:?}");
                }
            }
        }
    }
}

#[test]
fn jobs_cap_serializes_the_race_deterministically() {
    // With one worker thread the lanes run strictly in order, so the
    // first lane wins and the remaining lanes are skipped outright.
    let net = circuits::s27();
    let opts = ReachOptions::default();
    let config = RaceConfig {
        jobs: 1,
        escalation: None,
    };
    let lanes = [
        Lane::native(EngineKind::Bfv),
        Lane::native(EngineKind::Monolithic),
        Lane::native(EngineKind::Cbm),
    ];
    let report = run_racing(&lanes, &net, &opts, &config);
    assert_eq!(report.winner, Some(0));
    let result = report.result.unwrap();
    assert_eq!(result.engine, EngineKind::Bfv);
    assert_eq!(result.outcome, Outcome::FixedPoint);
    assert_eq!(
        result.reached_states.unwrap(),
        sequential_count(&net, EngineKind::Bfv, &opts)
    );
    for lane in &report.lanes[1..] {
        assert_eq!(lane.outcome, None, "queued lane must be skipped");
        assert!(lane.cancelled);
    }
}

#[test]
fn race_composes_with_escalation() {
    // Tight node budgets: no lane completes in round 0, but every lane
    // escalates privately and the race still converges on the right
    // count.
    let net = generators::counter(6);
    let baseline = sequential_count(&net, EngineKind::Monolithic, &ReachOptions::default());
    let opts = ReachOptions {
        node_limit: Some(120),
        ..Default::default()
    };
    let config = RaceConfig {
        jobs: 0,
        escalation: Some(EscalationPolicy::default()),
    };
    let lanes = [
        Lane::native(EngineKind::Monolithic),
        Lane::native(EngineKind::Bfv),
    ];
    let report = run_racing(&lanes, &net, &opts, &config);
    let result = report.result.expect("race result");
    assert_eq!(
        result.outcome,
        Outcome::FixedPoint,
        "lanes: {:?}",
        report.lanes
    );
    assert_eq!(result.reached_states.unwrap().to_bits(), baseline.to_bits());
    let winner = report.winner.unwrap();
    assert!(
        report.lanes[winner].rounds >= 1,
        "escalated lane reports its rounds"
    );
}

#[test]
fn empty_lane_list_yields_empty_report() {
    let net = circuits::s27();
    let report = run_racing(&[], &net, &ReachOptions::default(), &RaceConfig::default());
    assert!(report.result.is_none());
    assert!(report.winner.is_none());
    assert!(report.lanes.is_empty());
}

#[test]
fn ordering_lanes_agree_on_reached_state_counts() {
    // The third portfolio axis: the same engine raced under different
    // static variable orders must converge to the same fixed point —
    // ordering changes cost, never the answer.
    for (name, net) in bundled_circuits() {
        let exact = sequential_count(&net, EngineKind::Monolithic, &ReachOptions::default());
        let lanes = [
            Lane::native(EngineKind::Monolithic),
            Lane::native(EngineKind::Monolithic).with_order(OrderHeuristic::Coi),
            Lane::native(EngineKind::Monolithic).with_order(OrderHeuristic::Force),
            Lane::native(EngineKind::Bfv).with_order(OrderHeuristic::Coi),
        ];
        assert_eq!(lanes[1].display(), "MONO@COI");
        assert_eq!(lanes[3].display(), "BFV@COI");
        let report = run_racing(
            &lanes,
            &net,
            &ReachOptions::default(),
            &RaceConfig::default(),
        );
        let result = report.result.expect("race result");
        assert_eq!(result.outcome, Outcome::FixedPoint, "{name}");
        assert_eq!(
            result.reached_states.unwrap().to_bits(),
            exact.to_bits(),
            "{name}"
        );
        for lane in &report.lanes {
            if lane.outcome == Some(Outcome::FixedPoint) {
                if let Some(states) = lane.reached_states {
                    assert_eq!(states.to_bits(), exact.to_bits(), "{name}: {lane:?}");
                }
            }
        }
        // Reports carry the resolved order per lane.
        assert_eq!(report.lanes[0].order, OrderHeuristic::DfsFanin);
        assert_eq!(report.lanes[1].order, OrderHeuristic::Coi);
        assert_eq!(report.lanes[2].order, OrderHeuristic::Force);
    }
}

#[test]
fn cancelled_lane_under_a_real_deadline_still_reports_timeout() {
    // A lane with a genuinely expired budget and a race cancellation are
    // indistinguishable by design — both must classify as `T.O.`.
    let net = generators::queue_controller(4);
    let opts = ReachOptions {
        time_limit: Some(Duration::from_millis(1)),
        ..Default::default()
    };
    let report = run_racing(
        &[
            Lane::native(EngineKind::Cbm),
            Lane::native(EngineKind::Monolithic),
        ],
        &net,
        &opts,
        &RaceConfig::default(),
    );
    for lane in &report.lanes {
        assert_ne!(lane.outcome, Some(Outcome::Error), "{lane:?}");
    }
}
