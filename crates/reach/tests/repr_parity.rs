//! Representation parity: every engine × representation lane must agree
//! on the reached-state count — exactly for the exact backends (χ, BFV,
//! CDec, ZDD), by containment for the over-approximating zonotope lane.
//!
//! This is the test-suite twin of the CI smoke job: the same circuits,
//! the same lane matrix, the same exact/containment split.

use bfvr_netlist::{circuits, generators, Netlist};
use bfvr_reach::portfolio::Lane;
use bfvr_reach::{run_repr, EngineKind, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const ORDER: OrderHeuristic = OrderHeuristic::DfsFanin;

fn parity_circuits() -> Vec<(&'static str, Netlist, f64)> {
    // Known reached-state counts (also asserted by the engine tests).
    vec![
        ("s27", circuits::s27(), 6.0),
        ("counter5", generators::counter(5), 32.0),
        ("johnson5", generators::johnson(5), 10.0),
    ]
}

#[test]
fn all_lanes_agree_on_reached_state_counts() {
    let opts = ReachOptions::default();
    for (name, net, expected) in parity_circuits() {
        for lane in Lane::all_lanes() {
            let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
            let r = run_repr(lane.engine, lane.repr, &mut m, &fsm, &opts);
            assert_eq!(
                r.outcome,
                Outcome::FixedPoint,
                "{name}/{}: did not converge",
                lane.label()
            );
            let states = r
                .reached_states
                .unwrap_or_else(|| panic!("{name}/{}: no reached-state count", lane.label()));
            assert_eq!(
                r.over_approx,
                lane.repr.over_approximates(),
                "{name}/{}: over_approx flag does not match the representation",
                lane.label()
            );
            if r.over_approx {
                assert!(
                    states >= expected,
                    "{name}/{}: over-approximation lost states ({states} < {expected})",
                    lane.label()
                );
            } else {
                assert_eq!(
                    states,
                    expected,
                    "{name}/{}: exact lane disagrees",
                    lane.label()
                );
            }
        }
    }
}

/// The BFV engine's two lanes (canonical vector, zonotope hull) must
/// keep the exact-vs-hull relationship on a circuit where the hull is
/// strict: the Johnson counter's 2n reachable ring sits inside a larger
/// affine hull.
#[test]
fn zonotope_hull_is_strict_where_expected() {
    let net = generators::johnson(5);
    let opts = ReachOptions::default();

    let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
    let exact = run_repr(
        EngineKind::Bfv,
        bfvr_reach::ReprKind::Bfv,
        &mut m,
        &fsm,
        &opts,
    );
    assert_eq!(exact.outcome, Outcome::FixedPoint);

    let (mut m2, fsm2) = EncodedFsm::encode(&net, ORDER).unwrap();
    let hull = run_repr(
        EngineKind::Bfv,
        bfvr_reach::ReprKind::Zonotope,
        &mut m2,
        &fsm2,
        &opts,
    );
    assert_eq!(hull.outcome, Outcome::FixedPoint);
    assert!(hull.over_approx);
    assert!(hull.reached_states.unwrap() >= exact.reached_states.unwrap());
}
