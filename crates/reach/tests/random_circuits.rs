//! Property test: on random small sequential circuits, every symbolic
//! engine's reached set equals an explicit-state BFS ground truth.

use std::collections::{HashSet, VecDeque};

use bfvr_netlist::{GateKind, Netlist, NetlistBuilder};
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Spec {
    num_inputs: u8,
    num_latches: u8,
    gates: Vec<(u8, Vec<u8>)>,
    latch_sources: Vec<u8>,
    inits: Vec<bool>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1u8..3, 2u8..6).prop_flat_map(|(num_inputs, num_latches)| {
        let gates = prop::collection::vec(
            (0u8..8, prop::collection::vec(any::<u8>(), 1..4)),
            2..10,
        );
        (
            Just(num_inputs),
            Just(num_latches),
            gates,
            prop::collection::vec(any::<u8>(), num_latches as usize),
            prop::collection::vec(any::<bool>(), num_latches as usize),
        )
            .prop_map(|(num_inputs, num_latches, gates, latch_sources, inits)| Spec {
                num_inputs,
                num_latches,
                gates,
                latch_sources,
                inits,
            })
    })
}

fn build(spec: &Spec) -> Netlist {
    let mut b = NetlistBuilder::new("rand");
    let mut readable: Vec<String> = Vec::new();
    for i in 0..spec.num_inputs {
        let n = format!("in{i}");
        b.input(&n).unwrap();
        readable.push(n);
    }
    for l in 0..spec.num_latches {
        let n = format!("q{l}");
        b.latch(&n, format!("d{l}"), spec.inits[l as usize]).unwrap();
        readable.push(n);
    }
    for (gi, (kind, fanins)) in spec.gates.iter().enumerate() {
        let kind = match kind % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Not,
            5 => GateKind::Buf,
            6 => GateKind::Xor,
            _ => GateKind::Xnor,
        };
        let arity =
            if matches!(kind, GateKind::Not | GateKind::Buf) { 1 } else { fanins.len() };
        let ins: Vec<String> = (0..arity)
            .map(|k| readable[fanins[k % fanins.len()] as usize % readable.len()].clone())
            .collect();
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        let n = format!("g{gi}");
        b.gate(&n, kind, &refs).unwrap();
        readable.push(n);
    }
    for l in 0..spec.num_latches {
        let pick = spec.latch_sources[l as usize] as usize % readable.len();
        b.gate(format!("d{l}"), GateKind::Buf, &[readable[pick].as_str()]).unwrap();
    }
    b.output(readable.last().unwrap());
    b.finish().unwrap()
}

fn explicit_reachable(net: &Netlist) -> usize {
    let order = bfvr_netlist::topo::order(net).unwrap();
    let ni = net.inputs().len();
    let step = |state: &Vec<bool>, inputs: u32| -> Vec<bool> {
        let mut vals = vec![false; net.num_signals()];
        for (i, &s) in net.inputs().iter().enumerate() {
            vals[s.index()] = inputs >> i & 1 == 1;
        }
        for (i, l) in net.latches().iter().enumerate() {
            vals[l.output.index()] = state[i];
        }
        for &g in &order {
            let gate = &net.gates()[g];
            let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
            vals[gate.output.index()] = gate.kind.eval(&ins);
        }
        net.latches().iter().map(|l| vals[l.input.index()]).collect()
    };
    let mut seen: HashSet<Vec<bool>> = HashSet::new();
    let mut q = VecDeque::new();
    let init = net.initial_state();
    seen.insert(init.clone());
    q.push_back(init);
    while let Some(st) = q.pop_front() {
        for inputs in 0..(1u32 << ni) {
            let nxt = step(&st, inputs);
            if seen.insert(nxt.clone()) {
                q.push_back(nxt);
            }
        }
    }
    seen.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_engine_matches_explicit_bfs(spec in spec_strategy(), order_seed: u64) {
        let net = build(&spec);
        let truth = explicit_reachable(&net) as f64;
        let order = OrderHeuristic::Random(order_seed);
        for kind in EngineKind::all() {
            let (mut m, fsm) = EncodedFsm::encode(&net, order).unwrap();
            let r = run(kind, &mut m, &fsm, &ReachOptions::default());
            prop_assert_eq!(r.outcome, Outcome::FixedPoint, "{:?}", kind);
            prop_assert_eq!(r.reached_states, Some(truth), "{:?} vs explicit BFS", kind);
        }
    }

    #[test]
    fn frontier_choice_never_changes_the_answer(spec in spec_strategy()) {
        let net = build(&spec);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let with = bfvr_reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let without = bfvr_reach::reach_bfv(
            &mut m,
            &fsm,
            &ReachOptions { use_frontier: false, ..Default::default() },
        );
        prop_assert_eq!(with.reached_chi, without.reached_chi);
    }
}
