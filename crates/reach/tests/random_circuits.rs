//! Property test: on random small sequential circuits, every symbolic
//! engine's reached set equals an explicit-state BFS ground truth.
//!
//! Deterministic xorshift generation keeps the suite dependency-free; a
//! failing case is reproducible from the printed case number.

use std::collections::{HashSet, VecDeque};

use bfvr_netlist::{GateKind, Netlist, NetlistBuilder};
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const CASES: u64 = 48;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn for_cases(seed: u64, mut check: impl FnMut(u64, &mut Rng)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

#[derive(Clone, Debug)]
struct Spec {
    num_inputs: u8,
    num_latches: u8,
    gates: Vec<(u8, Vec<u8>)>,
    latch_sources: Vec<u8>,
    inits: Vec<bool>,
}

impl Spec {
    fn random(rng: &mut Rng) -> Spec {
        let num_inputs = 1 + rng.below(2) as u8;
        let num_latches = 2 + rng.below(4) as u8;
        let gates = (0..2 + rng.below(8))
            .map(|_| {
                (
                    rng.next() as u8,
                    (0..1 + rng.below(3)).map(|_| rng.next() as u8).collect(),
                )
            })
            .collect();
        let latch_sources = (0..num_latches).map(|_| rng.next() as u8).collect();
        let inits = (0..num_latches).map(|_| rng.flip()).collect();
        Spec {
            num_inputs,
            num_latches,
            gates,
            latch_sources,
            inits,
        }
    }
}

fn build(spec: &Spec) -> Netlist {
    let mut b = NetlistBuilder::new("rand");
    let mut readable: Vec<String> = Vec::new();
    for i in 0..spec.num_inputs {
        let n = format!("in{i}");
        b.input(&n).unwrap();
        readable.push(n);
    }
    for l in 0..spec.num_latches {
        let n = format!("q{l}");
        b.latch(&n, format!("d{l}"), spec.inits[l as usize])
            .unwrap();
        readable.push(n);
    }
    for (gi, (kind, fanins)) in spec.gates.iter().enumerate() {
        let kind = match kind % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Not,
            5 => GateKind::Buf,
            6 => GateKind::Xor,
            _ => GateKind::Xnor,
        };
        let arity = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            fanins.len()
        };
        let ins: Vec<String> = (0..arity)
            .map(|k| readable[fanins[k % fanins.len()] as usize % readable.len()].clone())
            .collect();
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        let n = format!("g{gi}");
        b.gate(&n, kind, &refs).unwrap();
        readable.push(n);
    }
    for l in 0..spec.num_latches {
        let pick = spec.latch_sources[l as usize] as usize % readable.len();
        b.gate(format!("d{l}"), GateKind::Buf, &[readable[pick].as_str()])
            .unwrap();
    }
    b.output(readable.last().unwrap());
    b.finish().unwrap()
}

fn explicit_reachable(net: &Netlist) -> usize {
    let order = bfvr_netlist::topo::order(net).unwrap();
    let ni = net.inputs().len();
    let step = |state: &Vec<bool>, inputs: u32| -> Vec<bool> {
        let mut vals = vec![false; net.num_signals()];
        for (i, &s) in net.inputs().iter().enumerate() {
            vals[s.index()] = inputs >> i & 1 == 1;
        }
        for (i, l) in net.latches().iter().enumerate() {
            vals[l.output.index()] = state[i];
        }
        for &g in &order {
            let gate = &net.gates()[g];
            let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
            vals[gate.output.index()] = gate.kind.eval(&ins);
        }
        net.latches()
            .iter()
            .map(|l| vals[l.input.index()])
            .collect()
    };
    let mut seen: HashSet<Vec<bool>> = HashSet::new();
    let mut q = VecDeque::new();
    let init = net.initial_state();
    seen.insert(init.clone());
    q.push_back(init);
    while let Some(st) = q.pop_front() {
        for inputs in 0..(1u32 << ni) {
            let nxt = step(&st, inputs);
            if seen.insert(nxt.clone()) {
                q.push_back(nxt);
            }
        }
    }
    seen.len()
}

#[test]
fn every_engine_matches_explicit_bfs() {
    for_cases(0x5EA1, |case, rng| {
        let spec = Spec::random(rng);
        let order_seed = rng.next();
        let net = build(&spec);
        let truth = explicit_reachable(&net) as f64;
        let order = OrderHeuristic::Random(order_seed);
        for kind in EngineKind::all() {
            let (mut m, fsm) = EncodedFsm::encode(&net, order).unwrap();
            let r = run(kind, &mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "case {case}: {kind:?}");
            assert_eq!(
                r.reached_states,
                Some(truth),
                "case {case}: {kind:?} vs explicit BFS"
            );
        }
    });
}

#[test]
fn frontier_choice_never_changes_the_answer() {
    for_cases(0x5EA2, |case, rng| {
        let spec = Spec::random(rng);
        let net = build(&spec);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let with = bfvr_reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let without = bfvr_reach::reach_bfv(
            &mut m,
            &fsm,
            &ReachOptions {
                use_frontier: false,
                ..Default::default()
            },
        );
        assert_eq!(with.reached_chi, without.reached_chi, "case {case}");
    });
}
