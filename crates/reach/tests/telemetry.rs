//! Integration tests for the `bfvr-obs` wiring: the non-perturbation
//! contract, sampling, counter deltas, span nesting, JSONL round-trips,
//! and the race/escalation/fault-injection event semantics documented
//! in `docs/observability.md`.

use std::cell::RefCell;
use std::rc::Rc;

use bfvr_bdd::FaultPlan;
use bfvr_netlist::generators;
use bfvr_obs::{Event, EventKind, JsonlSink, LimitKind, SpanKind, Tracer};
use bfvr_reach::portfolio::{run_escalating, run_racing, EscalationPolicy, Lane, RaceConfig};
use bfvr_reach::telemetry::trace_handle;
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions, ReachResult};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

const ORDER: OrderHeuristic = OrderHeuristic::DfsFanin;

/// Runs one engine on a fresh manager with a collector trace attached,
/// returning the result and the drained event stream.
fn traced_run(
    net: &bfvr_netlist::Netlist,
    engine: EngineKind,
    base: &ReachOptions,
    stride: u64,
) -> (ReachResult, Vec<Event>) {
    let (mut m, fsm) = EncodedFsm::encode(net, ORDER).unwrap();
    let trace = trace_handle(Tracer::collector(stride));
    let mut opts = base.clone();
    opts.trace = Some(trace.clone());
    let r = run(engine, &mut m, &fsm, &opts);
    let events = trace.borrow_mut().drain();
    (r, events)
}

fn iter_events(events: &[Event]) -> Vec<&bfvr_obs::IterRecord> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Iter(r) => Some(r),
            _ => None,
        })
        .collect()
}

/// Satellite 5's regression: attaching a trace must not change what the
/// engine computes — identical outcome, iteration count, reached-state
/// bits and per-iteration statistics, for every engine. (The audit
/// observer path deliberately perturbs; tracing must never.)
#[test]
fn tracing_does_not_perturb_the_run() {
    let net = generators::counter(6);
    let base = ReachOptions {
        record_iterations: true,
        ..ReachOptions::default()
    };
    for engine in EngineKind::all() {
        let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
        let plain = run(engine, &mut m, &fsm, &base);
        let (traced, events) = traced_run(&net, engine, &base, 1);

        assert_eq!(plain.outcome, traced.outcome, "{engine:?}");
        assert_eq!(plain.iterations, traced.iterations, "{engine:?}");
        assert_eq!(
            plain.reached_states.map(f64::to_bits),
            traced.reached_states.map(f64::to_bits),
            "{engine:?}: tracing changed the reached-state count"
        );
        assert_eq!(plain.peak_nodes, traced.peak_nodes, "{engine:?}: peak");
        assert_eq!(
            plain.per_iteration.len(),
            traced.per_iteration.len(),
            "{engine:?}"
        );
        for (i, (a, b)) in plain
            .per_iteration
            .iter()
            .zip(&traced.per_iteration)
            .enumerate()
        {
            // Wall-clock fields differ between any two runs; every
            // deterministic statistic must not.
            assert_eq!(
                a.reached_states.to_bits(),
                b.reached_states.to_bits(),
                "{engine:?} iter {i}"
            );
            assert_eq!(a.reached_nodes, b.reached_nodes, "{engine:?} iter {i}");
            assert_eq!(a.frontier_nodes, b.frontier_nodes, "{engine:?} iter {i}");
            assert_eq!(a.live_nodes, b.live_nodes, "{engine:?} iter {i}");
        }
        // And the trace agrees with the untraced run's statistics too.
        // (One record per iteration *boundary*: the final iteration that
        // discovers the fixed point adds no state and posts no record.)
        let iters = iter_events(&events);
        assert_eq!(
            iters.len(),
            plain.per_iteration.len(),
            "{engine:?}: one iter event per recorded iteration"
        );
        for (rec, stats) in iters.iter().zip(&plain.per_iteration) {
            assert_eq!(rec.reached_nodes as usize, stats.reached_nodes);
            assert_eq!(rec.frontier_nodes as usize, stats.frontier_nodes);
        }
    }
}

/// `--trace-sample N` records iteration 1 and every N-th iteration;
/// stride 1 records each iteration exactly once.
#[test]
fn sampling_stride_records_first_and_every_nth() {
    let net = generators::counter(6);
    let base = ReachOptions::default();
    // Stride 1 establishes the full set of recorded boundaries...
    let (r1, events1) = traced_run(&net, EngineKind::Bfv, &base, 1);
    let got1: Vec<u64> = iter_events(&events1).iter().map(|r| r.iteration).collect();
    let n = got1.len() as u64;
    assert!(n >= 16, "circuit too small to exercise the stride");
    assert_eq!(got1, (1..=n).collect::<Vec<_>>());
    assert_eq!(r1.outcome, Outcome::FixedPoint);

    // ...and stride 4 records exactly the first plus every fourth.
    let (_, events4) = traced_run(&net, EngineKind::Bfv, &base, 4);
    let got4: Vec<u64> = iter_events(&events4).iter().map(|r| r.iteration).collect();
    let want4: Vec<u64> = (1..=n).filter(|&i| i == 1 || i % 4 == 0).collect();
    assert_eq!(got4, want4);
}

/// Counter snapshots are cumulative and survive garbage collections:
/// monotone counters keep rising across a forced-GC run, the per-span
/// delta reflects the whole traversal, and the GC the observer forces
/// is visible in the `gc_runs` counter.
#[test]
fn counter_deltas_stay_coherent_under_gc() {
    let net = generators::counter(6);
    // An observer (even a no-op) makes notify_iteration force a full
    // collection per iteration — the perturbing path tracing must ride
    // along with, not trigger.
    let base = ReachOptions {
        observer: Some(Rc::new(|_m, _fsm, _view| {})),
        ..ReachOptions::default()
    };
    let (r, events) = traced_run(&net, EngineKind::Iwls95, &base, 1);
    assert_eq!(r.outcome, Outcome::FixedPoint);

    let iters = iter_events(&events);
    assert!(iters.len() >= 16);
    let mut prev_mk = -1.0;
    for rec in &iters {
        let mk = rec.snapshot.get("mk_calls").expect("mk_calls snapshotted");
        assert!(
            mk >= prev_mk,
            "cumulative mk_calls regressed at iter {}",
            rec.iteration
        );
        prev_mk = mk;
        assert!(rec.snapshot.get("cache.ite.lookups").is_some());
    }
    // The forced collections of earlier iterations show up in later
    // cumulative snapshots.
    let last = iters.last().unwrap();
    assert!(
        last.snapshot.get("gc_runs").unwrap() >= (iters.len() - 2) as f64,
        "observer-forced GCs missing from the counter registry"
    );
    // The engine span's delta covers the whole traversal.
    let delta = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanClose {
                kind: SpanKind::Engine,
                delta,
                ..
            } => Some(delta),
            _ => None,
        })
        .expect("engine span closes");
    // The delta is relative to the span open (which already includes the
    // encode-phase mk_calls), so only its sign and the GC count are
    // deterministic claims.
    assert!(delta.get("mk_calls").unwrap() > 0.0);
    assert!(delta.get("gc_runs").unwrap() >= (iters.len() - 1) as f64);
}

/// Engine spans nest under a caller-opened run span, and the stream
/// closes inside-out.
#[test]
fn spans_nest_run_over_engine() {
    let net = generators::counter(4);
    let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
    let trace = trace_handle(Tracer::collector(1));
    let run_id = trace
        .borrow_mut()
        .open_span(SpanKind::Run, "counter4", bfvr_obs::Counters::new());
    let opts = ReachOptions {
        trace: Some(trace.clone()),
        ..ReachOptions::default()
    };
    let _ = run(EngineKind::Bfv, &mut m, &fsm, &opts);
    trace
        .borrow_mut()
        .close_span(run_id, &bfvr_obs::Counters::new());
    assert_eq!(trace.borrow().open_spans(), 0);

    let events = trace.borrow_mut().drain();
    let run_span = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanOpen {
                id,
                kind: SpanKind::Run,
                ..
            } => Some(*id),
            _ => None,
        })
        .expect("run span opened");
    let (engine_id, parent) = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanOpen {
                id,
                parent,
                kind: SpanKind::Engine,
                ..
            } => Some((*id, *parent)),
            _ => None,
        })
        .expect("engine span opened");
    assert_eq!(parent, Some(run_span), "engine nests under run");
    let close_order: Vec<u64> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanClose { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(close_order, vec![engine_id, run_span]);
}

/// A shared in-memory buffer standing in for the trace file.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A real traced run serialized through `JsonlSink` parses back with
/// `parse_jsonl` and re-encodes byte-identically.
#[test]
fn jsonl_stream_from_a_real_run_round_trips() {
    let net = generators::counter(5);
    let buf = SharedBuf::default();
    let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
    let mut t = Tracer::with_sampling(Box::new(JsonlSink::new(buf.clone())), 1);
    t.meta("telemetry round-trip test");
    let trace = trace_handle(t);
    let opts = ReachOptions {
        trace: Some(trace.clone()),
        ..ReachOptions::default()
    };
    let r = run(EngineKind::Cbm, &mut m, &fsm, &opts);
    assert_eq!(r.outcome, Outcome::FixedPoint);
    trace.borrow_mut().finish();

    let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
    let events = bfvr_obs::parse_jsonl(&text).expect("stream validates");
    assert!(matches!(events[0].kind, EventKind::Meta { .. }));
    assert!(events.iter().any(|e| matches!(e.kind, EventKind::Iter(_))));
    let reencoded: String = events.iter().map(|e| e.encode() + "\n").collect();
    assert_eq!(reencoded, text, "encode → parse → encode is the identity");
}

/// A completed race emits exactly one `winner` and one `cancel` per
/// losing lane, with lane events tagged and driver verdicts untagged.
/// `jobs = 1` makes the outcome deterministic: the first lane finishes,
/// every queued lane is skipped (= cancelled).
#[test]
fn raced_trace_has_one_winner_and_cancels_the_rest() {
    let net = generators::queue_controller(4);
    let lanes = Lane::native_lanes();
    let trace = trace_handle(Tracer::collector(8));
    let opts = ReachOptions {
        trace: Some(trace.clone()),
        ..ReachOptions::default()
    };
    let config = RaceConfig {
        jobs: 1,
        ..RaceConfig::default()
    };
    let report = run_racing(&lanes, &net, &opts, &config);
    assert!(report.result.is_some());

    let events = trace.borrow_mut().drain();
    let winners: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Winner { .. }))
        .collect();
    let cancels: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Cancel { .. }))
        .collect();
    assert_eq!(winners.len(), 1, "exactly one winner");
    assert_eq!(cancels.len(), lanes.len() - 1, "N-1 cancels");
    // Driver verdicts ride the main stream; engine activity is lane-tagged.
    assert!(winners[0].lane.is_none() && cancels.iter().all(|e| e.lane.is_none()));
    assert!(events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Iter(_) | EventKind::EngineEnd { .. }))
        .all(|e| e.lane.is_some()));
    // The merged stream is re-stamped dense.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

/// Budget escalation logs one `round` event per attempt: the exhausted
/// first round, then the retries up to the fixed point.
#[test]
fn escalation_rounds_land_in_the_trace() {
    let net = generators::counter(6);
    let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
    let trace = trace_handle(Tracer::collector(64));
    let opts = ReachOptions {
        node_limit: Some(m.allocated() + 40),
        trace: Some(trace.clone()),
        ..ReachOptions::default()
    };
    let policy = EscalationPolicy::default();
    let report = run_escalating(EngineKind::Monolithic, &mut m, &fsm, &opts, &policy);
    assert_eq!(report.result.outcome, Outcome::FixedPoint);
    assert!(report.rounds.len() >= 2, "first budget must exhaust");

    let events = trace.borrow_mut().drain();
    let rounds: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Round {
                round,
                outcome,
                node_limit,
                ..
            } => Some((*round, outcome.clone(), *node_limit)),
            _ => None,
        })
        .collect();
    assert_eq!(rounds.len(), report.rounds.len());
    assert_eq!(rounds[0].0, 0);
    assert_eq!(rounds[0].1, "M.O.");
    assert_eq!(rounds.last().unwrap().1, "ok");
    // Budgets escalate monotonically.
    assert!(rounds.windows(2).all(|w| w[0].2 <= w[1].2));
    // Every exhausted round also produced a `limit` event.
    let limits = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Limit { .. }))
        .count();
    assert_eq!(limits, report.rounds.len() - 1);
}

/// An injected fault takes the real exhaustion path, so the trace shows
/// the same `limit` event a genuine `M.O.`/`T.O.` would — there is no
/// "injected" marker, by design.
#[test]
fn fault_injected_limits_surface_as_limit_events() {
    let net = generators::counter(5);
    for (plan, want_kind, want_outcome) in [
        (
            FaultPlan::node_limit_at(150),
            LimitKind::NodeLimit,
            Outcome::MemOut,
        ),
        (
            FaultPlan::deadline_at(3),
            LimitKind::Deadline,
            Outcome::TimeOut,
        ),
    ] {
        let (mut m, fsm) = EncodedFsm::encode(&net, ORDER).unwrap();
        m.set_fault_plan(plan);
        let trace = trace_handle(Tracer::collector(1));
        let opts = ReachOptions {
            trace: Some(trace.clone()),
            ..ReachOptions::default()
        };
        let r = run(EngineKind::Bfv, &mut m, &fsm, &opts);
        assert_eq!(r.outcome, want_outcome);

        let events = trace.borrow_mut().drain();
        let (kind, iterations) = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Limit {
                    kind, iterations, ..
                } => Some((*kind, *iterations)),
                _ => None,
            })
            .expect("fault surfaces as a limit event");
        assert_eq!(kind, want_kind);
        assert_eq!(iterations, r.iterations as u64);
        // The engine_end mirror carries the matching outcome label.
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::EngineEnd { outcome, .. } if outcome == r.outcome.label()
        )));
    }
}
