//! Logical zonotopes: GF(2) affine subspaces as an over-approximating
//! set representation (Alanwar et al., *Logical Zonotopes*).
//!
//! A [`Zonotope`] is the affine subspace `{ c ⊕ Σ εⱼ·gⱼ : εⱼ ∈ {0,1} }`
//! of the state space GF(2)ⁿ: a center point `c` plus a generator set
//! `G`. Kept in reduced row-echelon form with the center reduced by the
//! pivots, the pair is *canonical* — structural equality is set
//! equality, so the fixed-point test is allocation-free.
//!
//! The algebra is closed and polynomial:
//!
//! * **XOR** of two zonotopes is exact (Minkowski sum of affine sets);
//! * **union** is the affine [`Zonotope::join`] — the smallest affine
//!   subspace containing both operands, an over-approximation;
//! * **AND** has no closed form, so the [`AffineEvaluator`] introduces a
//!   fresh noise generator per distinct product — sound because for any
//!   valuation of the existing generators the fresh one can be chosen to
//!   match the true product value, hence the result set contains every
//!   exact image point;
//! * the rank bounds everything: a chain of joins strictly grows the
//!   rank or reaches a fixpoint, so reachability converges in at most
//!   `n + 1` iterations.

use bfvr_bdd::hash::FxHashMap;
use bfvr_bdd::{Bdd, BddError, BddManager, Var};

fn words(n: usize) -> usize {
    n.div_ceil(64)
}

fn get_bit(row: &[u64], i: usize) -> bool {
    (row[i / 64] >> (i % 64)) & 1 == 1
}

fn set_bit(row: &mut [u64], i: usize) {
    row[i / 64] |= 1u64 << (i % 64);
}

fn xor_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

fn is_zero(row: &[u64]) -> bool {
    row.iter().all(|&w| w == 0)
}

fn leading_bit(row: &[u64]) -> Option<usize> {
    row.iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
}

fn parity_and(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .zip(b.iter())
        .fold(0u32, |acc, (&x, &y)| acc ^ (x & y).count_ones())
        & 1
        == 1
}

/// A GF(2) affine subspace `c ⊕ span(G)` over `n` state bits, kept
/// canonical (generators in reduced row-echelon form, center reduced by
/// the pivots) so `==` is set equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Zonotope {
    n: usize,
    center: Vec<u64>,
    gens: Vec<Vec<u64>>,
}

impl Zonotope {
    /// The singleton {point}.
    #[must_use]
    pub fn point(bits: &[bool]) -> Zonotope {
        let n = bits.len();
        let mut center = vec![0u64; words(n)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                set_bit(&mut center, i);
            }
        }
        Zonotope {
            n,
            center,
            gens: Vec::new(),
        }
    }

    /// The full space GF(2)ⁿ.
    #[must_use]
    pub fn universe(n: usize) -> Zonotope {
        let gens = (0..n)
            .map(|i| {
                let mut g = vec![0u64; words(n)];
                set_bit(&mut g, i);
                g
            })
            .collect();
        Zonotope {
            n,
            center: vec![0u64; words(n)],
            gens,
        }
    }

    /// Builds from raw center/generator rows and canonicalizes.
    fn from_raw(n: usize, center: Vec<u64>, gens: Vec<Vec<u64>>) -> Zonotope {
        let mut z = Zonotope { n, center, gens };
        z.canonicalize();
        z
    }

    /// Number of state bits.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.n
    }

    /// Dimension of the subspace (number of independent generators).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.gens.len()
    }

    /// Exact member count: `2^rank`.
    #[must_use]
    pub fn count(&self) -> f64 {
        (self.rank() as f64).exp2()
    }

    /// Borrowed center row: `dims().div_ceil(64)` little-endian 64-bit
    /// words, bit `i` of the row = coordinate `i` of the center point.
    /// Together with [`Zonotope::generator_rows`] this is the full
    /// serializable state; [`Zonotope::from_rows`] inverts it.
    #[must_use]
    pub fn center_words(&self) -> &[u64] {
        &self.center
    }

    /// Borrowed generator rows in canonical (reduced row-echelon) order,
    /// each the same width as [`Zonotope::center_words`].
    #[must_use]
    pub fn generator_rows(&self) -> &[Vec<u64>] {
        &self.gens
    }

    /// Rebuilds a zonotope from serialized rows, validating shape:
    /// every row must be exactly `n.div_ceil(64)` words and carry no set
    /// bits at positions `>= n` (stray high bits would fabricate phantom
    /// dimensions). Returns `None` on any violation — deserializers turn
    /// that into a structured corrupt-file error. The result is
    /// re-canonicalized, so untrusted row order cannot break the
    /// `==`-is-set-equality invariant.
    #[must_use]
    pub fn from_rows(n: usize, center: Vec<u64>, gens: Vec<Vec<u64>>) -> Option<Zonotope> {
        let w = words(n);
        let tail_ok = |row: &[u64]| -> bool {
            if n.is_multiple_of(64) || w == 0 {
                return true;
            }
            row[w - 1] >> (n % 64) == 0
        };
        if center.len() != w || !tail_ok(&center) {
            return None;
        }
        if gens.iter().any(|g| g.len() != w || !tail_ok(g)) {
            return None;
        }
        Some(Zonotope::from_raw(n, center, gens))
    }

    /// Gaussian elimination to RREF plus center reduction; establishes
    /// the canonical-form invariant `==` relies on.
    fn canonicalize(&mut self) {
        self.gens.retain(|g| !is_zero(g));
        let mut r = 0usize;
        for c in 0..self.n {
            let Some(i) = (r..self.gens.len()).find(|&i| get_bit(&self.gens[i], c)) else {
                continue;
            };
            self.gens.swap(r, i);
            let row = self.gens[r].clone();
            for (j, g) in self.gens.iter_mut().enumerate() {
                if j != r && get_bit(g, c) {
                    xor_into(g, &row);
                }
            }
            r += 1;
        }
        self.gens.truncate(r);
        for g in &self.gens {
            if let Some(c) = leading_bit(g) {
                if get_bit(&self.center, c) {
                    let g = g.clone();
                    xor_into(&mut self.center, &g);
                }
            }
        }
    }

    /// Reduces `v` by the (RREF) generators; the remainder is zero iff
    /// `v` lies in the span.
    fn reduce(&self, mut v: Vec<u64>) -> Vec<u64> {
        for g in &self.gens {
            if let Some(c) = leading_bit(g) {
                if get_bit(&v, c) {
                    xor_into(&mut v, g);
                }
            }
        }
        v
    }

    /// Membership test for a concrete state.
    #[must_use]
    pub fn contains_point(&self, bits: &[bool]) -> bool {
        debug_assert_eq!(bits.len(), self.n);
        let mut diff = vec![0u64; words(self.n)];
        for (i, &b) in bits.iter().enumerate() {
            if b != get_bit(&self.center, i) {
                set_bit(&mut diff, i);
            }
        }
        is_zero(&self.reduce(diff))
    }

    /// Subset test: every generator of `self` in `other`'s span and the
    /// center difference in `other`'s span.
    #[must_use]
    pub fn is_subset(&self, other: &Zonotope) -> bool {
        debug_assert_eq!(self.n, other.n);
        let mut diff = self.center.clone();
        xor_into(&mut diff, &other.center);
        if !is_zero(&other.reduce(diff)) {
            return false;
        }
        self.gens.iter().all(|g| is_zero(&other.reduce(g.clone())))
    }

    /// The affine join: the smallest affine subspace containing both
    /// operands (the backend's over-approximating union).
    #[must_use]
    pub fn join(&self, other: &Zonotope) -> Zonotope {
        debug_assert_eq!(self.n, other.n);
        let mut gens = self.gens.clone();
        gens.extend(other.gens.iter().cloned());
        let mut diff = self.center.clone();
        xor_into(&mut diff, &other.center);
        gens.push(diff);
        Zonotope::from_raw(self.n, self.center.clone(), gens)
    }

    /// The affine form of state bit `i` over this zonotope's generators
    /// (for seeding an [`AffineEvaluator`]).
    #[must_use]
    pub fn bit_form(&self, i: usize) -> AffineForm {
        let mut f = AffineForm::constant(get_bit(&self.center, i));
        for (j, g) in self.gens.iter().enumerate() {
            if get_bit(g, i) {
                f.flip_gen(j);
            }
        }
        f
    }

    /// Assembles the image zonotope from one evaluated affine form per
    /// state bit, over `gen_count` generators (the evaluator's total,
    /// including noise generators minted for AND nodes).
    #[must_use]
    pub fn from_forms(forms: &[AffineForm], gen_count: usize) -> Zonotope {
        let n = forms.len();
        let mut center = vec![0u64; words(n)];
        let mut gens = vec![vec![0u64; words(n)]; gen_count];
        for (i, f) in forms.iter().enumerate() {
            if f.constant_term() {
                set_bit(&mut center, i);
            }
            for (j, g) in gens.iter_mut().enumerate() {
                if f.gen_coeff(j) {
                    set_bit(g, i);
                }
            }
        }
        Zonotope::from_raw(n, center, gens)
    }

    /// Canonicalizes into a characteristic function over `vars` (state
    /// bit `i` ↔ `vars[i]`): the conjunction of the parity constraints
    /// cutting out the affine subspace.
    ///
    /// # Errors
    ///
    /// Resource limits tripped while building the constraint BDDs.
    pub fn to_chi(&self, m: &mut BddManager, vars: &[Var]) -> Result<Bdd, BddError> {
        debug_assert_eq!(vars.len(), self.n);
        // Orthogonal-complement basis: one parity check per non-pivot
        // column q, with support {q} ∪ {pivot pᵢ : genᵢ has bit q}.
        let pivots: Vec<usize> = self.gens.iter().filter_map(|g| leading_bit(g)).collect();
        let mut is_pivot = vec![false; self.n];
        for &p in &pivots {
            is_pivot[p] = true;
        }
        let mut chi = Bdd::TRUE;
        for (q, _) in is_pivot.iter().enumerate().filter(|&(_, &piv)| !piv) {
            let mut h = vec![0u64; words(self.n)];
            set_bit(&mut h, q);
            for (i, g) in self.gens.iter().enumerate() {
                if get_bit(g, q) {
                    set_bit(&mut h, pivots[i]);
                }
            }
            let mut chain = Bdd::FALSE;
            for (k, &v) in vars.iter().enumerate() {
                if get_bit(&h, k) {
                    let lit = m.var(v);
                    chain = m.xor(chain, lit)?;
                }
            }
            if !parity_and(&h, &self.center) {
                chain = m.not(chain);
            }
            chi = m.and(chi, chain)?;
        }
        Ok(chi)
    }

    /// The affine hull of a characteristic function: joins the hull of
    /// each satisfying path cube (fixed bits → center, don't-cares →
    /// unit generators). Sound for any χ; falls back to the universe
    /// hull after `cube_cap` cubes to bound the enumeration. Returns
    /// `None` for χ = ⊥ (the empty set has no affine hull).
    #[must_use]
    pub fn hull_of_chi(
        m: &BddManager,
        chi: Bdd,
        vars: &[Var],
        cube_cap: usize,
    ) -> Option<Zonotope> {
        if chi.is_false() {
            return None;
        }
        let n = vars.len();
        let mut hull: Option<Zonotope> = None;
        for (seen, cube) in m.cubes(chi, m.num_vars()).enumerate() {
            if seen >= cube_cap {
                return Some(Zonotope::universe(n));
            }
            let mut center = vec![0u64; words(n)];
            let mut gens = Vec::new();
            for (i, &v) in vars.iter().enumerate() {
                match cube[v.0 as usize] {
                    Some(true) => set_bit(&mut center, i),
                    Some(false) => {}
                    None => {
                        let mut g = vec![0u64; words(n)];
                        set_bit(&mut g, i);
                        gens.push(g);
                    }
                }
            }
            let z = Zonotope::from_raw(n, center, gens);
            hull = Some(match hull {
                Some(h) => h.join(&z),
                None => z,
            });
        }
        hull
    }
}

/// A GF(2) affine form `b₀ ⊕ Σ bⱼ₊₁·εⱼ`: bit 0 is the constant term,
/// bit `j + 1` the coefficient of generator `εⱼ`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineForm {
    bits: Vec<u64>,
}

impl AffineForm {
    fn constant(b: bool) -> AffineForm {
        AffineForm {
            bits: vec![u64::from(b)],
        }
    }

    fn generator(j: usize) -> AffineForm {
        let mut f = AffineForm::constant(false);
        f.flip_gen(j);
        f
    }

    /// The constant term `b₀`.
    #[must_use]
    pub fn constant_term(&self) -> bool {
        self.bits.first().is_some_and(|&w| w & 1 == 1)
    }

    /// Coefficient of generator `εⱼ`.
    #[must_use]
    pub fn gen_coeff(&self, j: usize) -> bool {
        let bit = j + 1;
        bit / 64 < self.bits.len() && get_bit(&self.bits, bit)
    }

    fn flip_gen(&mut self, j: usize) {
        let bit = j + 1;
        if bit / 64 >= self.bits.len() {
            self.bits.resize(bit / 64 + 1, 0);
        }
        self.bits[bit / 64] ^= 1u64 << (bit % 64);
    }

    fn xor(&self, other: &AffineForm) -> AffineForm {
        let mut bits = self.bits.clone();
        if other.bits.len() > bits.len() {
            bits.resize(other.bits.len(), 0);
        }
        xor_into(&mut bits, &other.bits);
        while bits.len() > 1 && bits.last() == Some(&0) {
            bits.pop();
        }
        AffineForm { bits }
    }

    fn complement(&self) -> AffineForm {
        let mut f = self.clone();
        f.bits[0] ^= 1;
        f
    }

    fn is_const(&self, b: bool) -> bool {
        self.bits[0] == u64::from(b) && self.bits[1..].iter().all(|&w| w == 0)
    }
}

/// Evaluates BDDs over affine forms: the logical-zonotope image step.
///
/// Bind each current-state variable to its [`Zonotope::bit_form`];
/// unbound variables (primary inputs) are minted a fresh generator on
/// first use — an input is free, which is exactly a new noise symbol.
/// XOR-dominated logic evaluates exactly; each irreducible AND mints a
/// fresh generator (memoized per operand pair, so the same product
/// reuses the same symbol). The result over-approximates the true image
/// pointwise.
pub struct AffineEvaluator {
    gen_count: usize,
    bindings: FxHashMap<u32, AffineForm>,
    node_memo: FxHashMap<u32, AffineForm>,
    and_memo: FxHashMap<(AffineForm, AffineForm), AffineForm>,
}

impl AffineEvaluator {
    /// An evaluator whose first `state_gens` generators are reserved for
    /// the seeding zonotope's own generators.
    #[must_use]
    pub fn new(state_gens: usize) -> AffineEvaluator {
        AffineEvaluator {
            gen_count: state_gens,
            bindings: FxHashMap::default(),
            node_memo: FxHashMap::default(),
            and_memo: FxHashMap::default(),
        }
    }

    /// Total generators minted so far (state + input + noise).
    #[must_use]
    pub fn gen_count(&self) -> usize {
        self.gen_count
    }

    /// Binds variable `v` to a form (typically [`Zonotope::bit_form`]).
    pub fn bind(&mut self, v: Var, form: AffineForm) {
        self.bindings.insert(v.0, form);
        self.node_memo.clear();
    }

    fn fresh(&mut self) -> AffineForm {
        let f = AffineForm::generator(self.gen_count);
        self.gen_count += 1;
        f
    }

    fn var_form(&mut self, v: u32) -> AffineForm {
        if let Some(f) = self.bindings.get(&v) {
            return f.clone();
        }
        let f = self.fresh();
        self.bindings.insert(v, f.clone());
        f
    }

    fn and(&mut self, a: &AffineForm, b: &AffineForm) -> AffineForm {
        if a.is_const(false) || b.is_const(false) {
            return AffineForm::constant(false);
        }
        if a.is_const(true) {
            return b.clone();
        }
        if b.is_const(true) {
            return a.clone();
        }
        if a == b {
            return a.clone();
        }
        if *a == b.complement() {
            return AffineForm::constant(false);
        }
        let key = if a.bits <= b.bits {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if let Some(f) = self.and_memo.get(&key) {
            return f.clone();
        }
        let f = self.fresh();
        self.and_memo.insert(key, f.clone());
        f
    }

    /// Evaluates `f` to an affine form over the current bindings.
    pub fn eval(&mut self, m: &BddManager, f: Bdd) -> AffineForm {
        if f.is_true() {
            return AffineForm::constant(true);
        }
        if f.is_false() {
            return AffineForm::constant(false);
        }
        if let Some(r) = self.node_memo.get(&f.index()) {
            return r.clone();
        }
        let v = m.top_var(f).0;
        let av = self.var_form(v);
        let h = self.eval(m, m.high(f));
        let l = self.eval(m, m.low(f));
        // ite(av, h, l) = (av ∧ h) ⊕ (av ∧ l) ⊕ l over GF(2).
        let ah = self.and(&av, &h);
        let al = self.and(&av, &l);
        let r = ah.xor(&al).xor(&l);
        self.node_memo.insert(f.index(), r.clone());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[u8]) -> Vec<bool> {
        v.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn point_and_universe_counts() {
        let p = Zonotope::point(&bits(&[1, 0, 1]));
        assert_eq!(p.count(), 1.0);
        assert!(p.contains_point(&bits(&[1, 0, 1])));
        assert!(!p.contains_point(&bits(&[1, 1, 1])));
        let u = Zonotope::universe(3);
        assert_eq!(u.count(), 8.0);
        assert!(p.is_subset(&u));
        assert!(!u.is_subset(&p));
    }

    #[test]
    fn join_is_the_affine_hull() {
        let a = Zonotope::point(&bits(&[0, 0, 0]));
        let b = Zonotope::point(&bits(&[1, 1, 0]));
        let j = a.join(&b);
        assert_eq!(j.count(), 2.0);
        // Joining a third independent point doubles the hull.
        let c = Zonotope::point(&bits(&[0, 0, 1]));
        let j2 = j.join(&c);
        assert_eq!(j2.count(), 4.0);
        assert!(j2.contains_point(&bits(&[1, 1, 1]))); // closure point
        assert!(j.is_subset(&j2));
        // Join is idempotent and commutative (canonical equality).
        assert_eq!(j.join(&j), j);
        assert_eq!(b.join(&a), j);
    }

    #[test]
    fn canonical_form_is_construction_order_independent() {
        let pts = [
            bits(&[0, 1, 1, 0]),
            bits(&[1, 0, 1, 1]),
            bits(&[1, 1, 0, 1]),
        ];
        let fwd = pts
            .iter()
            .map(|p| Zonotope::point(p))
            .reduce(|a, b| a.join(&b))
            .unwrap();
        let rev = pts
            .iter()
            .rev()
            .map(|p| Zonotope::point(p))
            .reduce(|a, b| a.join(&b))
            .unwrap();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn chi_roundtrip_is_exact_for_affine_sets() {
        let mut m = BddManager::new(4);
        let vars: Vec<Var> = (0..4).map(Var).collect();
        let z = Zonotope::point(&bits(&[1, 0, 1, 0])).join(&Zonotope::point(&bits(&[0, 1, 1, 0])));
        let chi = z.to_chi(&mut m, &vars).unwrap();
        assert_eq!(m.sat_count(chi, 4), z.count());
        for asg in m.all_sat(chi, 4) {
            assert!(z.contains_point(&asg));
        }
        let back = Zonotope::hull_of_chi(&m, chi, &vars, 64).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn hull_of_chi_over_approximates_non_affine_sets() {
        let mut m = BddManager::new(3);
        let vars: Vec<Var> = (0..3).map(Var).collect();
        // {000, 001, 010}: not affine (closure adds 011).
        let pts = [bits(&[0, 0, 0]), bits(&[0, 0, 1]), bits(&[0, 1, 0])];
        let mut chi = Bdd::FALSE;
        for p in &pts {
            let mut cube = Bdd::TRUE;
            for (i, &b) in p.iter().enumerate() {
                let lit = if b {
                    m.var(Var(i as u32))
                } else {
                    m.nvar(Var(i as u32))
                };
                cube = m.and(cube, lit).unwrap();
            }
            chi = m.or(chi, cube).unwrap();
        }
        let hull = Zonotope::hull_of_chi(&m, chi, &vars, 64).unwrap();
        assert_eq!(hull.count(), 4.0);
        for p in &pts {
            assert!(hull.contains_point(p));
        }
        assert!(hull.contains_point(&bits(&[0, 1, 1])));
        // The cap degrades soundly to the universe.
        let capped = Zonotope::hull_of_chi(&m, chi, &vars, 1).unwrap();
        assert_eq!(capped, Zonotope::universe(3));
        // ⊥ has no hull.
        assert!(Zonotope::hull_of_chi(&m, Bdd::FALSE, &vars, 64).is_none());
    }

    #[test]
    fn evaluator_is_exact_on_xor_logic() {
        // y0 = x0 ⊕ x1, y1 = ¬x1: an affine map, so the image is exact.
        let mut m = BddManager::new(2);
        let (x0, x1) = (m.var(Var(0)), m.var(Var(1)));
        let f0 = m.xor(x0, x1).unwrap();
        let f1 = m.not(x1);
        let z = Zonotope::point(&bits(&[0, 0])).join(&Zonotope::point(&bits(&[1, 0])));
        let mut ev = AffineEvaluator::new(z.rank());
        ev.bind(Var(0), z.bit_form(0));
        ev.bind(Var(1), z.bit_form(1));
        let forms = [ev.eval(&m, f0), ev.eval(&m, f1)];
        let img = Zonotope::from_forms(&forms, ev.gen_count());
        // {00, 10} maps to {0⊕0=0,¬0=1} and {1⊕0=1,¬0=1} = {01, 11}.
        assert_eq!(img.count(), 2.0);
        assert!(img.contains_point(&bits(&[0, 1])));
        assert!(img.contains_point(&bits(&[1, 1])));
    }

    #[test]
    fn evaluator_and_over_approximates_soundly() {
        // y0 = x0 ∧ x1 over the universe: exact image is {0, 1} per bit
        // but correlated; the approximation must contain every exact point.
        let mut m = BddManager::new(2);
        let (x0, x1) = (m.var(Var(0)), m.var(Var(1)));
        let f0 = m.and(x0, x1).unwrap();
        let f1 = m.or(x0, x1).unwrap();
        let z = Zonotope::universe(2);
        let mut ev = AffineEvaluator::new(z.rank());
        ev.bind(Var(0), z.bit_form(0));
        ev.bind(Var(1), z.bit_form(1));
        let forms = [ev.eval(&m, f0), ev.eval(&m, f1)];
        let img = Zonotope::from_forms(&forms, ev.gen_count());
        // Exact image of (AND, OR) over all four inputs: {00, 01, 11}.
        for p in [[0, 0], [0, 1], [1, 1]] {
            assert!(img.contains_point(&bits(&p)), "missing {p:?}");
        }
        // Identical products share one noise symbol: AND(a,b) ⊕ AND(a,b)
        // must cancel to the zero form.
        let g = ev.eval(&m, f0);
        let g2 = ev.eval(&m, f0);
        assert!(g.xor(&g2).is_const(false));
    }

    #[test]
    fn unbound_inputs_get_fresh_generators() {
        // y = x ⊕ i with i unbound: from point x=0 the image is {0, 1}.
        let mut m = BddManager::new(2);
        let (x, i) = (m.var(Var(0)), m.var(Var(1)));
        let f = m.xor(x, i).unwrap();
        let z = Zonotope::point(&bits(&[0]));
        let mut ev = AffineEvaluator::new(z.rank());
        ev.bind(Var(0), z.bit_form(0));
        let forms = [ev.eval(&m, f)];
        let img = Zonotope::from_forms(&forms, ev.gen_count());
        assert_eq!(img.count(), 2.0);
    }

    #[test]
    fn rank_bounds_join_chains() {
        // Any chain of joins in GF(2)^4 stabilizes within 5 steps.
        let mut z = Zonotope::point(&bits(&[0, 0, 0, 0]));
        let pts = [
            bits(&[1, 0, 0, 0]),
            bits(&[0, 1, 0, 0]),
            bits(&[1, 1, 0, 0]),
            bits(&[0, 0, 1, 0]),
            bits(&[0, 0, 0, 1]),
            bits(&[1, 1, 1, 1]),
        ];
        let mut changes = 0;
        for p in &pts {
            let next = z.join(&Zonotope::point(p));
            if next != z {
                changes += 1;
            }
            z = next;
        }
        assert!(changes <= 5);
        assert_eq!(z, Zonotope::universe(4));
    }
}
