//! # bfvr-setrepr — representation as a first-class axis of reachability
//!
//! The source paper's whole argument is that the *representation* of a
//! state set — characteristic function χ, canonical Boolean functional
//! vector, or conjunctive decomposition — determines which circuits a
//! reachability engine can finish. This crate makes that choice
//! pluggable instead of hard-coded into each engine's fixed-point loop:
//!
//! * [`SetRepr`] is the trait a backend implements — exactly the
//!   operations the engines need (image step, union, fixpoint test,
//!   state count, GC roots, checkpoint/restore) plus an into-χ
//!   canonicalization escape hatch for cross-representation auditing;
//! * [`ReprKind`] names the backends, so the racing portfolio can label
//!   engine × representation lanes and the CLI can select them;
//! * [`SetView`] is the borrowed per-iteration view observers see,
//!   generalized from the original three engine-owned shapes to all
//!   five representations;
//! * [`ReprCheckpoint`] is the representation half of a resumable
//!   checkpoint (the engine half lives in `bfvr-reach`);
//! * [`zonotope`] implements the logical-zonotope backend's algebra:
//!   GF(2) affine subspaces with closed-form XOR and a sound
//!   over-approximating AND (Alanwar et al., *Logical Zonotopes*).
//!
//! The crate deliberately depends only on `bfvr-bdd` and `bfvr-bfv`;
//! backends that need a transition relation capture it at construction
//! time (in `bfvr-reach`), which keeps this crate — and therefore the
//! audit crate's cross-representation pass — free of any dependency on
//! the simulation layer.
//!
//! ```
//! use bfvr_setrepr::zonotope::Zonotope;
//!
//! // {011} ∪ {101} joins to the affine line through the two points.
//! let a = Zonotope::point(&[false, true, true]);
//! let b = Zonotope::point(&[true, false, true]);
//! let j = a.join(&b);
//! assert_eq!(j.count(), 2.0);
//! assert!(j.contains_point(&[false, true, true]));
//! assert!(j.contains_point(&[true, false, true]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod kind;
mod repr;
mod view;
pub mod zonotope;

pub use kind::ReprKind;
pub use repr::{ReprCheckpoint, Restored, SetRepr};
pub use view::SetView;
pub use zonotope::{AffineEvaluator, AffineForm, Zonotope};
