//! The [`SetRepr`] trait: what a fixed-point loop needs from a set.

use crate::kind::ReprKind;
use crate::view::SetView;
use crate::zonotope::Zonotope;
use bfvr_bdd::{Bdd, BddManager, Func};
use bfvr_bfv::BfvError;
use std::time::Duration;

/// The representation half of a resumable checkpoint: the reached and
/// from sets re-expressed in manager-stable handles (RAII [`Func`] pins
/// for BDD-resident data, plain values for manager-free data).
///
/// The engine half (which engine, how many iterations) lives with the
/// reachability driver; a backend only needs to reconstruct its own
/// loop state. ZDD backends checkpoint through χ — ZDD node indexes are
/// private to a lane's store, so the canonical escape hatch is the
/// stable form — and therefore share the [`ReprCheckpoint::Chi`]
/// variant with the χ backends.
#[derive(Clone, Debug)]
pub enum ReprCheckpoint {
    /// χ-shaped state (χ backends and the ZDD backend).
    Chi {
        /// States reached so far.
        reached: Func,
        /// Start set of the next iteration.
        from: Func,
    },
    /// Canonical-vector state (the BFV backend).
    Vector {
        /// Components of the reached-set vector.
        reached: Vec<Func>,
        /// Components of the from-set vector.
        from: Vec<Func>,
    },
    /// Conjunctive-decomposition state (the CDEC backend).
    Cdec {
        /// Constraints of the reached-set decomposition.
        constraints: Vec<Func>,
        /// Components of the from-set vector.
        from: Vec<Func>,
    },
    /// Zonotope state: plain generator data, no manager handles at all.
    Zonotope {
        /// Hull of the states reached so far.
        reached: Zonotope,
        /// Hull of the start set of the next iteration.
        from: Zonotope,
    },
}

/// A restored reached/from pair, or `None` on a representation
/// mismatch (see [`SetRepr::restore`]).
pub type Restored<S> = Option<(S, S)>;

/// A pluggable set representation: exactly the operations the
/// reachability engines' shared fixed-point loop needs, so the loop is
/// written once against this trait instead of once per representation.
///
/// A backend owns everything representation-specific — the transition
/// relation or next-state functions it captured at construction, any
/// lane-private stores (ZDD arenas), conversion memos — and hands the
/// loop opaque `Set` values. All manager-allocating operations take
/// `&mut BddManager` and return `Result`, because the manager enforces
/// node-count and deadline limits (the paper's `M.O.`/`T.O.` outcomes).
///
/// ## Contract
///
/// * [`union`](SetRepr::union)`(s, s)` must equal `s` under
///   [`set_eq`](SetRepr::set_eq) (idempotence), and `union` must be
///   commutative up to `set_eq`;
/// * the loop reaches a fixpoint when
///   `set_eq(union(reached, image(reached)), reached)`;
/// * [`to_chi`](SetRepr::to_chi) is the canonicalization escape hatch:
///   exact backends must round-trip `to_chi ∘ from_chi = id` on their
///   representable sets, over-approximating backends
///   ([`over_approximates`](SetRepr::over_approximates)` == true`) must
///   guarantee `from_chi(χ)` represents a superset of χ;
/// * [`checkpoint`](SetRepr::checkpoint) followed by
///   [`restore`](SetRepr::restore) on a fresh backend of the same kind
///   must reproduce `set_eq`-equal reached/from sets.
///
/// These laws are enforced for every backend by the shared conformance
/// suite in `bfvr-reach`.
pub trait SetRepr {
    /// The backend's set value. `Clone` must be cheap-ish (handles or
    /// generator matrices, not deep graph copies).
    type Set: Clone;

    /// Which representation this backend implements.
    fn kind(&self) -> ReprKind;

    /// One-time setup before the loop: build the transition relation,
    /// cluster schedule, or conversion tables. Called exactly once,
    /// before [`initial`](SetRepr::initial) or
    /// [`restore`](SetRepr::restore).
    ///
    /// # Errors
    ///
    /// Resource limits tripped while building engine structures.
    fn prepare(&mut self, m: &mut BddManager) -> Result<(), BfvError> {
        let _ = m;
        Ok(())
    }

    /// The initial state set.
    ///
    /// # Errors
    ///
    /// Resource limits, or an FSM whose initial state is unrepresentable.
    fn initial(&mut self, m: &mut BddManager) -> Result<Self::Set, BfvError>;

    /// One image step: the successors of `from` under the transition
    /// structure captured at construction.
    ///
    /// # Errors
    ///
    /// Resource limits tripped mid-step.
    fn image(&mut self, m: &mut BddManager, from: &Self::Set) -> Result<Self::Set, BfvError>;

    /// Set union (for over-approximating backends: an upper bound of it).
    ///
    /// # Errors
    ///
    /// Resource limits tripped mid-union.
    fn union(
        &mut self,
        m: &mut BddManager,
        a: &Self::Set,
        b: &Self::Set,
    ) -> Result<Self::Set, BfvError>;

    /// Whether two sets are equal — the loop's fixpoint test. Must be
    /// allocation-free (canonical representations compare structurally).
    fn set_eq(&self, m: &BddManager, a: &Self::Set, b: &Self::Set) -> bool;

    /// Representation size used by the frontier heuristic (iterate from
    /// the image when it is smaller than the reached set).
    fn size(&self, m: &BddManager, s: &Self::Set) -> usize;

    /// Representation size reported in results (defaults to
    /// [`size`](SetRepr::size); CDEC reports the decomposition, not the
    /// companion vector).
    fn repr_nodes(&self, m: &BddManager, s: &Self::Set) -> usize {
        self.size(m, s)
    }

    /// Appends the manager-resident GC roots of `s` (nothing, for
    /// manager-free representations).
    fn append_roots(&self, s: &Self::Set, out: &mut Vec<Bdd>);

    /// Appends backend-persistent GC roots (transition relations,
    /// cluster relations) that must survive every collection.
    fn persistent_roots(&self, out: &mut Vec<Bdd>) {
        let _ = out;
    }

    /// RAII pins for `s`, guarding it across collections triggered by
    /// observers. Empty for manager-free representations.
    fn pin(&self, m: &BddManager, s: &Self::Set) -> Vec<Func>;

    /// The borrowed observer view of a reached/from pair.
    fn view<'a>(&'a self, reached: &'a Self::Set, from: &'a Self::Set) -> SetView<'a>;

    /// Exact state count if the representation yields one for free
    /// (χ/ZDD/zonotope); `None` when counting requires a conversion
    /// (the driver then counts through [`to_chi`](SetRepr::to_chi)).
    fn count_states(&self, m: &BddManager, s: &Self::Set) -> Option<f64>;

    /// Canonicalizes `s` into a characteristic function over the state
    /// variables — the cross-representation escape hatch used for
    /// result reporting and audit equivalence.
    ///
    /// # Errors
    ///
    /// Resource limits tripped during conversion.
    fn to_chi(&mut self, m: &mut BddManager, s: &Self::Set) -> Result<Bdd, BfvError>;

    /// Imports a characteristic function. Returns `Ok(None)` when χ is
    /// unrepresentable (⊥ has no functional vector or zonotope);
    /// over-approximating backends return a superset hull.
    ///
    /// # Errors
    ///
    /// Resource limits tripped during conversion.
    // Not a constructor: imports into an existing backend, whose captured
    // state (space, stores) the conversion needs.
    #[allow(clippy::wrong_self_convention)]
    fn from_chi(&mut self, m: &mut BddManager, chi: Bdd) -> Result<Option<Self::Set>, BfvError>;

    /// Re-expresses the loop state in manager-stable handles for resume.
    ///
    /// # Errors
    ///
    /// Resource limits tripped while canonicalizing (ZDD → χ).
    fn checkpoint(
        &mut self,
        m: &mut BddManager,
        reached: &Self::Set,
        from: &Self::Set,
    ) -> Result<ReprCheckpoint, BfvError>;

    /// Rebuilds a reached/from pair from a checkpoint taken by a backend
    /// of the same kind. Returns `Ok(None)` on a representation
    /// mismatch (the driver reports an error outcome).
    ///
    /// # Errors
    ///
    /// Resource limits tripped while rebuilding.
    fn restore(
        &mut self,
        m: &mut BddManager,
        cp: &ReprCheckpoint,
    ) -> Result<Restored<Self::Set>, BfvError>;

    /// End-of-iteration hook for lane-private housekeeping (the ZDD
    /// backend collects its store here). The manager's own collection is
    /// the driver's job.
    fn end_of_iteration(&mut self, reached: &Self::Set, from: &Self::Set) {
        let _ = (reached, from);
    }

    /// Whether sets may strictly over-approximate the exact reached set.
    /// Over-approximating lanes never win races and never cancel exact
    /// lanes; their results are checked by containment, not equality.
    fn over_approximates(&self) -> bool {
        false
    }

    /// Whether the backend tolerates dynamic variable reordering
    /// ([`BddManager::sift`]) between iterations. Defaults to `false`
    /// because most representations carry order-dependent structure the
    /// manager cannot see: the BFV/CDEC vectors require component order
    /// = variable order (paper §3) for `space()` and the reparameterized
    /// image, ZDD stores label nodes with frozen levels, and zonotope
    /// generators are bound to an encoding pass. Backends whose loop
    /// state is plain χ BDDs (semantic `Var`s resolve levels at the API
    /// boundary) opt in by returning `true`.
    fn supports_reorder(&self) -> bool {
        false
    }

    /// Drains time spent in representation conversions since the last
    /// call (CBM-style bridge costs are reported, not hidden).
    fn take_conversion(&mut self) -> Duration {
        Duration::ZERO
    }

    /// Drains the per-phase timing breakdown of the last
    /// [`image`](SetRepr::image) call when it ran on the frozen-function
    /// parallel backend — `("freeze", …)`, `("compose", …)`,
    /// `("intern", …)` in phase order. Backends on the sequential image
    /// path return nothing; the driver folds these into the iteration's
    /// op-class telemetry counters.
    fn take_image_phases(&mut self) -> Vec<(&'static str, Duration)> {
        Vec::new()
    }

    /// Effective worker-thread count of the frozen image pool, if this
    /// backend is running one (`None` on the sequential path). Reported
    /// in results and lane tables as the parallelism actually used.
    fn effective_jobs(&self) -> Option<usize> {
        None
    }
}
