//! Names for the pluggable set representations.

use std::fmt;

/// Which set representation a backend iterates on.
///
/// The first three are the paper's own axis (χ vs. BFV vs. conjunctive
/// decomposition); [`ReprKind::Zdd`] and [`ReprKind::Zonotope`] are the
/// related-work lanes (Kojima's sets-of-sets argument for ZDDs, Alanwar
/// et al.'s logical zonotopes). Labels double as the CLI `--repr`
/// spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReprKind {
    /// Monolithic characteristic function over the state variables.
    Chi,
    /// Canonical Boolean functional vector (the paper's contribution).
    Bfv,
    /// McMillan's conjunctive decomposition of the characteristic function.
    Cdec,
    /// Zero-suppressed decision diagram over the state variables.
    Zdd,
    /// Logical zonotope: a GF(2) affine subspace (over-approximating).
    Zonotope,
}

impl ReprKind {
    /// Stable lowercase label (CLI `--repr` values, report tags).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReprKind::Chi => "chi",
            ReprKind::Bfv => "bfv",
            ReprKind::Cdec => "cdec",
            ReprKind::Zdd => "zdd",
            ReprKind::Zonotope => "zono",
        }
    }

    /// All representations, for sweeps.
    #[must_use]
    pub fn all() -> [ReprKind; 5] {
        [
            ReprKind::Chi,
            ReprKind::Bfv,
            ReprKind::Cdec,
            ReprKind::Zdd,
            ReprKind::Zonotope,
        ]
    }

    /// Parses a CLI label (the inverse of [`ReprKind::label`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<ReprKind> {
        ReprKind::all().into_iter().find(|k| k.label() == s)
    }

    /// Whether sets in this representation may over-approximate the
    /// exact reached set (affects race-winner eligibility and audit
    /// equivalence checks: containment instead of equality).
    #[must_use]
    pub fn over_approximates(self) -> bool {
        matches!(self, ReprKind::Zonotope)
    }

    /// Whether a lane iterating on this representation can honor a
    /// dynamic-reordering request (`--sift`). Mirrors
    /// [`crate::SetRepr::supports_reorder`] at the kind level, for lane
    /// display: only the plain χ representation survives a mid-run
    /// level permutation — BFV/CDEC tie component order to variable
    /// order (paper §3), ZDD label nodes freeze their creation levels,
    /// and zonotope generators are bound to the encoding pass.
    #[must_use]
    pub fn supports_reorder(self) -> bool {
        matches!(self, ReprKind::Chi)
    }
}

impl fmt::Display for ReprKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for k in ReprKind::all() {
            assert_eq!(ReprKind::parse(k.label()), Some(k));
        }
        assert_eq!(ReprKind::parse("qdd"), None);
    }

    #[test]
    fn only_zonotopes_over_approximate() {
        assert!(ReprKind::Zonotope.over_approximates());
        for k in [ReprKind::Chi, ReprKind::Bfv, ReprKind::Cdec, ReprKind::Zdd] {
            assert!(!k.over_approximates());
        }
    }

    #[test]
    fn only_chi_supports_reorder() {
        assert!(ReprKind::Chi.supports_reorder());
        for k in [
            ReprKind::Bfv,
            ReprKind::Cdec,
            ReprKind::Zdd,
            ReprKind::Zonotope,
        ] {
            assert!(!k.supports_reorder());
        }
    }
}
