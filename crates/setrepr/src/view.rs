//! Borrowed per-iteration views of a backend's live representation.

use crate::zonotope::Zonotope;
use bfvr_bdd::zdd::{Zdd, ZddStore};
use bfvr_bdd::Bdd;
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::Bfv;

/// A backend's set representation at one fixed-point iteration, borrowed
/// for the duration of an observer callback.
///
/// Each variant is the representation the backend *actually* iterates
/// on — no conversion is performed to build a view, so observing is free
/// for the engine (the observer itself may of course convert).
#[derive(Clone, Copy, Debug)]
pub enum SetView<'a> {
    /// χ-based backends (monolithic, CBM, IWLS95): characteristic
    /// functions over the current-state variables.
    Chi {
        /// States reached so far.
        reached: Bdd,
        /// Start set of the next iteration.
        from: Bdd,
    },
    /// The BFV backend: canonical Boolean functional vectors.
    Vector {
        /// Reached-set vector.
        reached: &'a Bfv,
        /// From-set vector.
        from: &'a Bfv,
    },
    /// The CDEC backend: conjunctive decomposition + from vector.
    Cdec {
        /// Reached set as McMillan's conjunctive decomposition.
        reached: &'a CDec,
        /// From-set vector.
        from: &'a Bfv,
    },
    /// The ZDD backend: zero-suppressed families in a lane-private store.
    Zdd {
        /// The store owning both families.
        store: &'a ZddStore,
        /// States reached so far.
        reached: Zdd,
        /// Start set of the next iteration.
        from: Zdd,
    },
    /// The logical-zonotope backend: GF(2) affine subspaces
    /// (over-approximating).
    Zonotope {
        /// Hull of the states reached so far.
        reached: &'a Zonotope,
        /// Hull of the start set of the next iteration.
        from: &'a Zonotope,
    },
}
