//! # bfvr-nlint — static netlist analysis
//!
//! A pass-based linter over [`bfvr_netlist::Netlist`], one layer below
//! `bfvr-audit`'s BDD-graph passes and sharing its diagnostic shape:
//! [`Finding`]s with a pass id, severity, signal path and witness,
//! collected into a sorted [`Report`] with rustc-like rendering.
//!
//! The passes ([`Pass`]):
//!
//! * `comb-cycle` — combinational cycles with a witness loop,
//! * `undriven` / `unread` — dangling and dead wiring,
//! * `const-prop` — ternary (0/1/X) propagation from the reset state:
//!   stuck-at gates and latches that never leave their reset value,
//! * `dead-latch` — state outside every output cone of influence,
//! * `dup-gate` — structural duplicates via hash-consing over the DAG,
//! * `support` — per-latch next-state support statistics.
//!
//! Two consumers sit on top:
//!
//! * [`simplify`] — a lint-gated rewrite (constant folding, dead-latch
//!   and COI pruning, buffer collapsing, duplicate merging) producing a
//!   provably smaller netlist whose reachable-state count matches the
//!   original (exactly when no dead latch was dropped — see
//!   [`Simplified::dead_latches`]);
//! * the [`support`] analyses, which feed the COI-interleaved and FORCE
//!   variable-ordering heuristics in `bfvr-sim`.
//!
//! [`run_mutations`] is the self-test harness behind
//! `bfvr lint --selftest`: nine seeded corruptions, each of which must
//! be caught by its intended pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod finding;
mod mutation;
mod simplify;
pub mod support;
pub mod ternary;

pub use analyze::run_passes;
pub use finding::{Finding, Pass, Report, Severity, Witness};
pub use mutation::{run_mutations, MutationOutcome};
pub use simplify::{simplify, simplify_with, Simplified, SimplifyOptions};
