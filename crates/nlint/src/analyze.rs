//! The lint passes and their driver.

use std::collections::HashMap;

use bfvr_netlist::{topo, Driver, GateKind, Netlist, SignalId};

use crate::finding::{Finding, Pass, Report, Severity, Witness};
use crate::support::latch_supports;
use crate::ternary;

/// Runs every lint pass over the netlist and collects the findings.
///
/// The structural passes ([`Pass::CombCycle`], [`Pass::Undriven`],
/// [`Pass::Unread`]) tolerate arbitrary signal tables — including
/// netlists from [`bfvr_netlist::NetlistBuilder::finish_unchecked`].
/// The semantic passes assume well-formedness and are skipped (each
/// with an [`Severity::Info`] finding) when a structural pass errors.
#[must_use]
pub fn run_passes(net: &Netlist) -> Report {
    let mut report = Report::new();
    comb_cycle(net, &mut report);
    undriven(net, &mut report);
    unread(net, &mut report);
    if report.has_errors() {
        for pass in [
            Pass::ConstProp,
            Pass::DeadLatch,
            Pass::DupGate,
            Pass::Support,
        ] {
            report.push(Finding {
                pass,
                severity: Severity::Info,
                path: "netlist".to_string(),
                message: "skipped: structural errors present".to_string(),
                witness: None,
            });
        }
        return report;
    }
    // Structurally clean ⇒ the topological order exists.
    let Ok(order) = topo::order(net) else {
        return report; // unreachable: comb_cycle found nothing
    };
    const_prop(net, &order, &mut report);
    dead_latch(net, &mut report);
    dup_gate(net, &order, &mut report);
    support_stats(net, &mut report);
    report
}

/// Combinational-cycle detection with a witness loop, by grey-path DFS
/// over the gate DAG (latch outputs and inputs are sources; feedback
/// through a latch is sequential, not a cycle).
fn comb_cycle(net: &Netlist, report: &mut Report) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = net.num_signals();
    let mut marks = vec![Mark::White; n];
    let mut flagged = vec![false; n];
    for root in 0..n {
        if marks[root] != Mark::White {
            continue;
        }
        // Frames carry (signal, next fan-in index); the frame stack *is*
        // the grey path, so a grey hit yields the witness loop directly.
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        marks[root] = Mark::Grey;
        while let Some(&(s, i)) = frames.last() {
            let sid = SignalId::from_index(s);
            let fanin: &[SignalId] = match net.driver_opt(sid) {
                Some(Driver::Gate(g)) => &net.gates()[g].inputs,
                _ => &[],
            };
            if i < fanin.len() {
                if let Some(top) = frames.last_mut() {
                    top.1 += 1;
                }
                let next = fanin[i];
                match marks[next.index()] {
                    Mark::White => {
                        marks[next.index()] = Mark::Grey;
                        frames.push((next.index(), 0));
                    }
                    Mark::Grey => {
                        if !flagged[next.index()] {
                            flagged[next.index()] = true;
                            let start = frames
                                .iter()
                                .position(|&(f, _)| f == next.index())
                                .unwrap_or(0);
                            let names: Vec<String> = frames[start..]
                                .iter()
                                .map(|&(f, _)| net.signal_name(SignalId::from_index(f)).to_string())
                                .collect();
                            report.push(Finding {
                                pass: Pass::CombCycle,
                                severity: Severity::Error,
                                path: format!("signal/{}", net.signal_name(next)),
                                message: format!(
                                    "combinational cycle through {} signal(s)",
                                    names.len()
                                ),
                                witness: Some(Witness::Cycle(names)),
                            });
                        }
                    }
                    Mark::Black => {}
                }
            } else {
                marks[s] = Mark::Black;
                frames.pop();
            }
        }
    }
}

fn undriven(net: &Netlist, report: &mut Report) {
    for i in 0..net.num_signals() {
        let sid = SignalId::from_index(i);
        if net.driver_opt(sid).is_none() {
            report.push(Finding {
                pass: Pass::Undriven,
                severity: Severity::Error,
                path: format!("signal/{}", net.signal_name(sid)),
                message: format!("signal `{}` is never driven", net.signal_name(sid)),
                witness: None,
            });
        }
    }
}

fn unread(net: &Netlist, report: &mut Report) {
    let mut read = vec![false; net.num_signals()];
    for g in net.gates() {
        for &s in &g.inputs {
            read[s.index()] = true;
        }
    }
    for l in net.latches() {
        read[l.input.index()] = true;
    }
    for &o in net.outputs() {
        read[o.index()] = true;
    }
    for (i, &was_read) in read.iter().enumerate() {
        if was_read {
            continue;
        }
        let sid = SignalId::from_index(i);
        let what = match net.driver_opt(sid) {
            Some(Driver::Input) => "input",
            Some(Driver::Latch(_)) => "latch",
            Some(Driver::Gate(_)) => "gate output",
            None => continue, // already an undriven error
        };
        report.push(Finding {
            pass: Pass::Unread,
            severity: Severity::Warning,
            path: format!("signal/{}", net.signal_name(sid)),
            message: format!(
                "{what} `{}` is never read by a gate, latch or output",
                net.signal_name(sid)
            ),
            witness: None,
        });
    }
}

fn const_prop(net: &Netlist, order: &[usize], report: &mut Report) {
    let fix = ternary::propagate(net, order);
    for (l, v) in fix.constant_latches(net) {
        let name = net.signal_name(net.latches()[l].output);
        report.push(Finding {
            pass: Pass::ConstProp,
            severity: Severity::Warning,
            path: format!("latch/{name}"),
            message: format!(
                "latch `{name}` never leaves its reset value {}",
                u8::from(v)
            ),
            witness: Some(Witness::Stuck(v)),
        });
    }
    for (g, v) in fix.stuck_gates(net) {
        let name = net.signal_name(net.gates()[g].output);
        report.push(Finding {
            pass: Pass::ConstProp,
            severity: Severity::Warning,
            path: format!("signal/{name}"),
            message: format!(
                "gate `{name}` is stuck at {} in every reachable state",
                u8::from(v)
            ),
            witness: Some(Witness::Stuck(v)),
        });
    }
}

fn dead_latch(net: &Netlist, report: &mut Report) {
    let (live, _) = topo::cone_of_influence(net, net.outputs());
    let mut in_cone = vec![false; net.latches().len()];
    for l in live {
        in_cone[l] = true;
    }
    for (l, latch) in net.latches().iter().enumerate() {
        if !in_cone[l] {
            let name = net.signal_name(latch.output);
            report.push(Finding {
                pass: Pass::DeadLatch,
                severity: Severity::Warning,
                path: format!("latch/{name}"),
                message: format!("latch `{name}` lies outside every output cone of influence"),
                witness: None,
            });
        }
    }
}

/// Structural hash key for a gate's function. `Cover` rows are folded
/// into the tag via their debug form — covers compare rarely enough
/// that the allocation is irrelevant.
pub(crate) fn kind_key(kind: &GateKind) -> (u8, String) {
    match kind {
        GateKind::And => (0, String::new()),
        GateKind::Or => (1, String::new()),
        GateKind::Nand => (2, String::new()),
        GateKind::Nor => (3, String::new()),
        GateKind::Not => (4, String::new()),
        GateKind::Buf => (5, String::new()),
        GateKind::Xor => (6, String::new()),
        GateKind::Xnor => (7, String::new()),
        GateKind::Const0 => (8, String::new()),
        GateKind::Const1 => (9, String::new()),
        GateKind::Cover(rows) => (10, format!("{rows:?}")),
    }
}

pub(crate) fn commutative(kind: &GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

/// Hash-consing over the gate DAG in topological order. Two gates are
/// duplicates when they compute the same function of the same
/// *canonicalized* fan-ins; `Buf` gates are transparent (their output
/// canonicalizes to their fan-in), so duplicates hiding behind buffers
/// are still found.
pub(crate) fn canonicalize(net: &Netlist, order: &[usize]) -> Vec<SignalId> {
    let mut canon: Vec<SignalId> = (0..net.num_signals()).map(SignalId::from_index).collect();
    let mut interned: HashMap<((u8, String), Vec<SignalId>), SignalId> = HashMap::new();
    for &g in order {
        let gate = &net.gates()[g];
        if matches!(gate.kind, GateKind::Buf) {
            canon[gate.output.index()] = canon[gate.inputs[0].index()];
            continue;
        }
        let mut ins: Vec<SignalId> = gate.inputs.iter().map(|s| canon[s.index()]).collect();
        if commutative(&gate.kind) {
            ins.sort_unstable();
        }
        let key = (kind_key(&gate.kind), ins);
        match interned.get(&key) {
            Some(&rep) => canon[gate.output.index()] = rep,
            None => {
                interned.insert(key, gate.output);
            }
        }
    }
    canon
}

fn dup_gate(net: &Netlist, order: &[usize], report: &mut Report) {
    let canon = canonicalize(net, order);
    for &g in order {
        let gate = &net.gates()[g];
        if matches!(gate.kind, GateKind::Buf) {
            continue; // transparent, not a duplicate of its source
        }
        let rep = canon[gate.output.index()];
        if rep != gate.output {
            let name = net.signal_name(gate.output);
            let first = net.signal_name(rep);
            report.push(Finding {
                pass: Pass::DupGate,
                severity: Severity::Warning,
                path: format!("signal/{name}"),
                message: format!("gate `{name}` is structurally identical to `{first}`"),
                witness: Some(Witness::Signals(vec![first.to_string(), name.to_string()])),
            });
        }
    }
}

fn support_stats(net: &Netlist, report: &mut Report) {
    let sups = latch_supports(net);
    for (l, sup) in sups.iter().enumerate() {
        let latch = &net.latches()[l];
        let name = net.signal_name(latch.output);
        let mut slots: Vec<String> = sup
            .latches
            .iter()
            .map(|&i| net.signal_name(net.latches()[i].output).to_string())
            .collect();
        slots.extend(
            sup.inputs
                .iter()
                .map(|&i| net.signal_name(net.inputs()[i]).to_string()),
        );
        report.push(Finding {
            pass: Pass::Support,
            severity: Severity::Info,
            path: format!("latch/{name}"),
            message: format!(
                "next-state support: {} slot(s) ({} latches, {} inputs)",
                sup.len(),
                sup.latches.len(),
                sup.inputs.len()
            ),
            witness: if slots.is_empty() {
                None
            } else {
                Some(Witness::Signals(slots))
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::NetlistBuilder;

    fn clean() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        b.input("a").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("d", GateKind::Xor, &["a", "q"]).unwrap();
        b.output("q");
        b.finish().unwrap()
    }

    #[test]
    fn clean_netlist_has_no_errors_or_warnings() {
        let r = run_passes(&clean());
        assert!(!r.has_errors());
        assert_eq!(r.count_at(Severity::Warning), 0);
        // Support stats always fire, one per latch.
        assert_eq!(r.by_pass(Pass::Support).count(), 1);
    }

    #[test]
    fn cycle_reported_with_witness_loop() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("x", GateKind::And, &["a", "y"]).unwrap();
        b.gate("y", GateKind::Or, &["x", "q"]).unwrap();
        b.gate("d", GateKind::Buf, &["y"]).unwrap();
        b.output("q");
        let net = b.finish_unchecked();
        let r = run_passes(&net);
        assert!(r.has_errors());
        let f: Vec<_> = r.by_pass(Pass::CombCycle).collect();
        assert_eq!(f.len(), 1);
        match &f[0].witness {
            Some(Witness::Cycle(names)) => {
                assert!(names.contains(&"x".to_string()) && names.contains(&"y".to_string()));
            }
            w => panic!("expected cycle witness, got {w:?}"),
        }
        // Semantic passes were skipped with info findings.
        assert!(r
            .by_pass(Pass::ConstProp)
            .all(|f| f.severity == Severity::Info));
    }

    #[test]
    fn undriven_and_unread_are_structural() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("d", GateKind::And, &["a", "ghost"]).unwrap();
        b.gate("orphan", GateKind::Not, &["q"]).unwrap();
        b.output("q");
        let net = b.finish_unchecked();
        let r = run_passes(&net);
        assert_eq!(r.by_pass(Pass::Undriven).count(), 1);
        assert!(r.by_pass(Pass::Unread).any(|f| f.path == "signal/orphan"));
    }

    #[test]
    fn duplicates_found_through_buffers() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("ab", GateKind::Buf, &["a"]).unwrap();
        b.gate("x", GateKind::And, &["a", "q"]).unwrap();
        b.gate("y", GateKind::And, &["q", "ab"]).unwrap(); // = x through the buf, commuted
        b.gate("d", GateKind::Xor, &["x", "y"]).unwrap();
        b.output("q");
        let net = b.finish().unwrap();
        let r = run_passes(&net);
        let dups: Vec<_> = r.by_pass(Pass::DupGate).collect();
        assert_eq!(dups.len(), 1);
        // Which of the pair is the representative depends on traversal
        // order; the witness must name both.
        match &dups[0].witness {
            Some(Witness::Signals(names)) => {
                assert!(names.contains(&"x".to_string()) && names.contains(&"y".to_string()));
            }
            w => panic!("expected signals witness, got {w:?}"),
        }
    }

    #[test]
    fn dead_and_constant_latches_reported() {
        let mut b = NetlistBuilder::new("dl");
        b.latch("q", "d", false).unwrap();
        b.gate("d", GateKind::Not, &["q"]).unwrap();
        b.latch("dead", "dn", false).unwrap();
        b.gate("dn", GateKind::Not, &["dead"]).unwrap();
        b.latch("hold", "hold", true).unwrap();
        b.output("q");
        b.output("hold");
        let net = b.finish().unwrap();
        let r = run_passes(&net);
        assert!(r.by_pass(Pass::DeadLatch).any(|f| f.path == "latch/dead"));
        assert!(r
            .by_pass(Pass::ConstProp)
            .any(|f| f.path == "latch/hold" && f.witness == Some(Witness::Stuck(true))));
    }
}
