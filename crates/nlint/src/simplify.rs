//! Lint-gated netlist simplification: constant folding, dead-latch and
//! cone-of-influence pruning, buffer collapsing and duplicate merging.
//!
//! Every rewrite is justified by a lint pass:
//!
//! * latches the ternary fixpoint proves constant are folded into
//!   `Const0`/`Const1` gates — the reachable set of the original always
//!   has them at that value, so the reached-state **count is
//!   preserved** exactly;
//! * gates the fixpoint proves stuck are folded the same way;
//! * latches outside every output cone of influence are dropped along
//!   with their logic **when [`SimplifyOptions::prune_dead`] is set**
//!   (this projects the reachable set onto the surviving latches —
//!   counts are preserved iff the dead component never branches, so
//!   [`Simplified::dead_latches`] reports exactly what was dropped; the
//!   default mode keeps dead latches and counts stay exact);
//! * `Buf` gates are collapsed and structurally duplicate gates merged
//!   (pure rewiring: the transition functions are unchanged).

use std::collections::HashMap;

use bfvr_netlist::{topo, Driver, GateKind, Netlist, NetlistBuilder, NetlistError, SignalId};

use crate::ternary;

/// The result of [`simplify`]: the rewritten netlist plus an account of
/// everything removed.
#[derive(Clone, Debug)]
pub struct Simplified {
    /// The simplified netlist (never larger than the input).
    pub netlist: Netlist,
    /// Latches folded to constants (reached-state count preserved).
    pub folded_latches: Vec<String>,
    /// Dead latches dropped (reachable set projected; counts preserved
    /// only if this is empty).
    pub dead_latches: Vec<String>,
    /// Gates merged away: structural duplicates plus collapsed buffers.
    pub merged_gates: usize,
    /// Gates dropped because they lie outside every live cone.
    pub pruned_gates: usize,
    /// Primary inputs dropped because nothing live reads them.
    pub pruned_inputs: Vec<String>,
}

/// How a signal reads after simplification.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Res {
    /// Replaced by the constant representative for this value.
    Const(bool),
    /// Rewired to this (possibly aliased) signal.
    Sig(SignalId),
}

/// Knobs for [`simplify_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimplifyOptions {
    /// Also drop latches outside every output cone of influence. Off by
    /// default: pruning dead state projects the reachable set, so the
    /// reached-state **count** is no longer comparable to the original
    /// (the paper's benchmark metric counts *all* latches).
    pub prune_dead: bool,
}

/// Count-preserving simplification: constant folding, duplicate
/// merging, buffer collapsing and pruning of logic nothing reads — but
/// no dead-latch removal, so the reached-state count always matches the
/// input circuit. Idempotent: simplifying the result again removes
/// nothing further.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the input's topological sort (a
/// combinational cycle) — run the lint passes first for diagnostics.
pub fn simplify(net: &Netlist) -> Result<Simplified, NetlistError> {
    simplify_with(net, SimplifyOptions::default())
}

/// [`simplify`] with knobs; `prune_dead` adds cone-of-influence latch
/// pruning (see [`Simplified::dead_latches`] for the parity caveat).
///
/// # Errors
///
/// Propagates [`NetlistError`] from the input's topological sort.
pub fn simplify_with(net: &Netlist, opts: SimplifyOptions) -> Result<Simplified, NetlistError> {
    let order = topo::order(net)?;
    let fix = ternary::propagate(net, &order);

    let nl = net.latches().len();
    let mut const_latch: Vec<Option<bool>> = vec![None; nl];
    for (l, v) in fix.constant_latches(net) {
        const_latch[l] = Some(v);
    }
    let (cone, _) = topo::cone_of_influence(net, net.outputs());
    let mut in_cone = vec![false; nl];
    for l in cone {
        in_cone[l] = true;
    }
    let live: Vec<bool> = (0..nl)
        .map(|l| const_latch[l].is_none() && (!opts.prune_dead || in_cone[l]))
        .collect();
    // Degenerate machine (every latch constant or dead): folding would
    // leave a combinational netlist the reachability encoders reject, so
    // keep the state elements and only merge/prune logic.
    let fold = live.iter().any(|&b| b) || nl == 0;
    let (const_latch, live): (Vec<Option<bool>>, Vec<bool>) = if fold {
        (const_latch, live)
    } else {
        (vec![None; nl], vec![true; nl])
    };

    // A signal is const-replaced when the fixpoint proves it definite
    // and it is produced by logic or by a folded latch (inputs and live
    // latch outputs always stay symbolic).
    let is_const = |s: SignalId| -> Option<bool> {
        if !fold {
            return None;
        }
        let v = fix.values[s.index()].definite()?;
        match net.driver(s) {
            Driver::Gate(_) => Some(v),
            Driver::Latch(l) => const_latch[l].map(|_| v),
            Driver::Input => None,
        }
    };

    // Mark what the outputs and the live latches' next-state functions
    // actually need, stopping at const-replaced signals.
    let mut needed = vec![false; net.num_signals()];
    let mut stack: Vec<SignalId> = net.outputs().to_vec();
    for (l, latch) in net.latches().iter().enumerate() {
        if live[l] {
            stack.push(latch.input);
        }
    }
    while let Some(s) = stack.pop() {
        if needed[s.index()] {
            continue;
        }
        needed[s.index()] = true;
        if is_const(s).is_some() {
            continue;
        }
        if let Driver::Gate(g) = net.driver(s) {
            stack.extend(net.gates()[g].inputs.iter().copied());
        }
    }

    // Pick one representative signal per constant value, in signal order.
    let mut const_rep: [Option<SignalId>; 2] = [None, None];
    for (i, &is_needed) in needed.iter().enumerate() {
        let s = SignalId::from_index(i);
        if is_needed {
            if let Some(v) = is_const(s) {
                let slot = &mut const_rep[usize::from(v)];
                if slot.is_none() {
                    *slot = Some(s);
                }
            }
        }
    }

    // Hash-cons the kept gates: collapse buffers, merge duplicates.
    let mut alias: Vec<SignalId> = (0..net.num_signals()).map(SignalId::from_index).collect();
    let resolve = |alias: &[SignalId], s: SignalId| -> Res {
        match is_const(s) {
            Some(v) => Res::Const(v),
            None => Res::Sig(alias[s.index()]),
        }
    };
    let mut interned: HashMap<((u8, String), Vec<Res>), SignalId> = HashMap::new();
    let mut emit_gates: Vec<usize> = Vec::new();
    let mut merged = 0usize;
    for &g in &order {
        let gate = &net.gates()[g];
        let out = gate.output;
        if !needed[out.index()] || is_const(out).is_some() {
            continue;
        }
        if matches!(gate.kind, GateKind::Buf) {
            // Transparent: rewire readers straight to the source.
            if let Res::Sig(src) = resolve(&alias, gate.inputs[0]) {
                alias[out.index()] = src;
                merged += 1;
                continue;
            }
        }
        let mut ins: Vec<Res> = gate.inputs.iter().map(|&s| resolve(&alias, s)).collect();
        if crate::analyze::commutative(&gate.kind) {
            ins.sort_by_key(|r| match *r {
                Res::Const(v) => (0usize, usize::from(v)),
                Res::Sig(s) => (1, s.index()),
            });
        }
        let key = (crate::analyze::kind_key(&gate.kind), ins);
        match interned.get(&key) {
            Some(&rep) => {
                alias[out.index()] = rep;
                merged += 1;
            }
            None => {
                interned.insert(key, out);
                emit_gates.push(g);
            }
        }
    }

    // Rebuild.
    let mut b = NetlistBuilder::new(net.name().to_string());
    let mut pruned_inputs = Vec::new();
    for &i in net.inputs() {
        if needed[i.index()] {
            b.input(net.signal_name(i))?;
        } else {
            pruned_inputs.push(net.signal_name(i).to_string());
        }
    }
    for v in [false, true] {
        if let Some(rep) = const_rep[usize::from(v)] {
            let kind = if v {
                GateKind::Const1
            } else {
                GateKind::Const0
            };
            b.gate(net.signal_name(rep), kind, &[] as &[&str])?;
        }
    }
    // Resolved name of a signal after aliasing/const replacement.
    let res_name = |s: SignalId| -> &str {
        match resolve(&alias, s) {
            Res::Const(v) => {
                let rep = const_rep[usize::from(v)].unwrap_or(s);
                net.signal_name(rep)
            }
            Res::Sig(r) => net.signal_name(r),
        }
    };
    let mut folded_latches = Vec::new();
    let mut dead_latches = Vec::new();
    for (l, latch) in net.latches().iter().enumerate() {
        let name = net.signal_name(latch.output).to_string();
        if live[l] {
            b.latch(&name, res_name(latch.input), latch.init)?;
        } else if const_latch[l].is_some() {
            folded_latches.push(name);
        } else {
            dead_latches.push(name);
        }
    }
    for &g in &emit_gates {
        let gate = &net.gates()[g];
        let ins: Vec<&str> = gate.inputs.iter().map(|&s| res_name(s)).collect();
        b.gate(net.signal_name(gate.output), gate.kind.clone(), &ins)?;
    }
    for &o in net.outputs() {
        let want = net.signal_name(o);
        let have = res_name(o);
        if want != have {
            // The output's driver was folded or merged away; keep the
            // output name observable through a buffer.
            b.gate(want, GateKind::Buf, &[have])?;
        }
        b.output(want);
    }
    let pruned_gates = net
        .gates()
        .iter()
        .filter(|g| !needed[g.output.index()])
        .count();
    Ok(Simplified {
        netlist: b.finish()?,
        folded_latches,
        dead_latches,
        merged_gates: merged,
        pruned_gates,
        pruned_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    #[test]
    fn constant_latch_folds_and_stuck_cone_collapses() {
        let mut b = NetlistBuilder::new("t");
        b.input("i").unwrap();
        b.latch("hold", "hold", false).unwrap();
        b.latch("q", "nq", false).unwrap();
        // nq = (i ⊕ q) ∨ hold: with hold ≡ 0 this is just i ⊕ q.
        b.gate("x", GateKind::Xor, &["i", "q"]).unwrap();
        b.gate("nq", GateKind::Or, &["x", "hold"]).unwrap();
        b.output("q");
        b.output("hold");
        let net = b.finish().unwrap();
        let s = simplify(&net).unwrap();
        assert_eq!(s.folded_latches, vec!["hold".to_string()]);
        assert_eq!(s.netlist.latches().len(), 1);
        assert!(s.dead_latches.is_empty());
        // The folded output stays observable (via the const/buf chain).
        assert!(s.netlist.find_signal("hold").is_some());
        assert!(s.netlist.stats().gates <= net.stats().gates + 1);
    }

    #[test]
    fn dead_latch_and_its_logic_are_pruned() {
        let mut b = NetlistBuilder::new("t");
        b.input("i").unwrap();
        b.latch("q", "nq", false).unwrap();
        b.gate("nq", GateKind::Xor, &["i", "q"]).unwrap();
        b.latch("dead", "dn", false).unwrap();
        b.gate("dn", GateKind::Not, &["dead"]).unwrap();
        b.output("q");
        let net = b.finish().unwrap();
        // Default mode keeps the dead latch: counts stay comparable.
        let kept = simplify(&net).unwrap();
        assert!(kept.dead_latches.is_empty());
        assert_eq!(kept.netlist.latches().len(), 2);
        // Pruning mode drops it and its feeding logic.
        let s = simplify_with(&net, SimplifyOptions { prune_dead: true }).unwrap();
        assert_eq!(s.dead_latches, vec!["dead".to_string()]);
        assert_eq!(s.netlist.latches().len(), 1);
        assert_eq!(s.pruned_gates, 1);
        assert!(s.netlist.find_signal("dead").is_none());
    }

    #[test]
    fn coi_pruning_projects_the_pair_family() {
        // Only pair 0 feeds the `match` output, so COI pruning keeps
        // exactly one register pair of the hostile §3 ordering example.
        let net = generators::paired_registers(4);
        let s = simplify_with(&net, SimplifyOptions { prune_dead: true }).unwrap();
        assert_eq!(s.netlist.latches().len(), 2);
        assert_eq!(s.dead_latches.len(), 6);
    }

    #[test]
    fn duplicates_and_buffers_merge() {
        let mut b = NetlistBuilder::new("t");
        b.input("a").unwrap();
        b.latch("q", "d", false).unwrap();
        b.gate("ab", GateKind::Buf, &["a"]).unwrap();
        b.gate("x", GateKind::And, &["a", "q"]).unwrap();
        b.gate("y", GateKind::And, &["q", "ab"]).unwrap();
        b.gate("d", GateKind::Xor, &["x", "y"]).unwrap();
        b.output("q");
        let net = b.finish().unwrap();
        let s = simplify(&net).unwrap();
        // y = x through the buffer, so both the buf and y merge away;
        // d = x ⊕ x survives as a gate reading x twice.
        assert_eq!(s.merged_gates, 2);
        assert_eq!(s.netlist.stats().gates, 2);
    }

    #[test]
    fn fully_constant_machine_keeps_its_state_elements() {
        let mut b = NetlistBuilder::new("t");
        b.latch("hold", "hold", true).unwrap();
        b.output("hold");
        let net = b.finish().unwrap();
        let s = simplify(&net).unwrap();
        assert_eq!(s.netlist.latches().len(), 1);
        assert!(s.folded_latches.is_empty());
    }

    #[test]
    fn generators_are_already_tight() {
        // The bundled families should lose nothing except buffers and
        // the odd duplicate — and never a latch.
        for (name, net) in generators::standard_suite() {
            let s = simplify(&net).unwrap();
            assert!(s.folded_latches.is_empty(), "{name}: folded latches");
            assert!(s.dead_latches.is_empty(), "{name}: dead latches");
            assert_eq!(
                s.netlist.latches().len(),
                net.latches().len(),
                "{name}: latch count changed"
            );
            let before = net.stats();
            let after = s.netlist.stats();
            assert!(after.gates <= before.gates, "{name}: grew");
            // Idempotence: a second pass removes nothing.
            let s2 = simplify(&s.netlist).unwrap();
            assert_eq!(s2.netlist.stats(), after, "{name}: not idempotent");
        }
    }
}
