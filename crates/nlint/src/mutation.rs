//! The lint self-test: seeded netlist corruptions that the passes must
//! catch — the netlist-level mirror of `bfvr-audit`'s mutation harness.
//!
//! Each mutation plants one specific defect in an otherwise healthy
//! netlist (a combinational splice, a held latch, a ghost signal…) and
//! records whether the *intended* pass diagnosed the planted object.
//! `bfvr lint --selftest` fails unless every mutation is caught.

use bfvr_netlist::{GateKind, Netlist, NetlistBuilder, NetlistError};

use crate::analyze::run_passes;
use crate::finding::{Pass, Report, Witness};

/// The outcome of one seeded corruption.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// Which corruption was applied, e.g. `cycle/splice`.
    pub label: &'static str,
    /// The pass that must catch it.
    pub expected: Pass,
    /// Whether the expected pass produced a finding naming the planted
    /// object.
    pub fired: bool,
    /// Whether that finding carried a witness.
    pub with_witness: bool,
    /// Total findings from the expected pass.
    pub findings: usize,
}

/// Re-emits `net` into a fresh builder so a mutation can splice in its
/// corruption before (or during) reconstruction.
fn rebuild(net: &Netlist) -> Result<NetlistBuilder, NetlistError> {
    let mut b = NetlistBuilder::new(net.name().to_string());
    for &i in net.inputs() {
        b.input(net.signal_name(i))?;
    }
    for l in net.latches() {
        b.latch(net.signal_name(l.output), net.signal_name(l.input), l.init)?;
    }
    for g in net.gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|&s| net.signal_name(s)).collect();
        b.gate(net.signal_name(g.output), g.kind.clone(), &ins)?;
    }
    for &o in net.outputs() {
        b.output(net.signal_name(o));
    }
    Ok(b)
}

/// Like [`rebuild`] but rewires the first fan-in of gate `target` to the
/// gate's own output — a combinational self-loop.
fn rebuild_spliced(net: &Netlist, target: usize) -> Result<NetlistBuilder, NetlistError> {
    let mut b = NetlistBuilder::new(net.name().to_string());
    for &i in net.inputs() {
        b.input(net.signal_name(i))?;
    }
    for l in net.latches() {
        b.latch(net.signal_name(l.output), net.signal_name(l.input), l.init)?;
    }
    for (gi, g) in net.gates().iter().enumerate() {
        let out = net.signal_name(g.output);
        let mut ins: Vec<&str> = g.inputs.iter().map(|&s| net.signal_name(s)).collect();
        if gi == target {
            ins[0] = out;
        }
        b.gate(out, g.kind.clone(), &ins)?;
    }
    for &o in net.outputs() {
        b.output(net.signal_name(o));
    }
    Ok(b)
}

fn finding_mentions(report: &Report, pass: Pass, target: &str) -> (bool, bool, usize) {
    let mut fired = false;
    let mut with_witness = false;
    let mut count = 0;
    for f in report.by_pass(pass) {
        count += 1;
        let mentions = f.path.ends_with(&format!("/{target}"))
            || f.message.contains(target)
            || match &f.witness {
                Some(Witness::Cycle(names) | Witness::Signals(names)) => {
                    names.iter().any(|n| n == target)
                }
                _ => false,
            };
        if mentions {
            fired = true;
            with_witness |= f.witness.is_some();
        }
    }
    (fired, with_witness, count)
}

/// Applies every seeded corruption to (a rebuild of) `net` and reports,
/// per mutation, whether its intended pass caught the planted object.
///
/// `net` must be a healthy sequential netlist with at least one latch
/// and one gate (any generator circuit qualifies).
///
/// # Errors
///
/// Propagates builder errors from the rebuilds — impossible for a
/// well-formed input netlist.
pub fn run_mutations(net: &Netlist) -> Result<Vec<MutationOutcome>, NetlistError> {
    let first_latch = net
        .latches()
        .first()
        .map(|l| net.signal_name(l.output).to_string())
        .ok_or(NetlistError::Undriven {
            name: "(selftest needs a latch)".to_string(),
        })?;
    let x = first_latch.as_str();
    let mut outcomes = Vec::new();
    let mut run = |label: &'static str, expected: Pass, target: &str, mutated: Netlist| {
        let report = run_passes(&mutated);
        let (fired, with_witness, findings) = finding_mentions(&report, expected, target);
        outcomes.push(MutationOutcome {
            label,
            expected,
            fired,
            with_witness,
            findings,
        });
    };

    // 1. Splice a gate's fan-in onto its own output: a combinational
    //    cycle the builder would normally reject.
    {
        let target = net.gates()[0].output;
        let b = rebuild_spliced(net, 0)?;
        run(
            "cycle/splice",
            Pass::CombCycle,
            net.signal_name(target),
            b.finish_unchecked(),
        );
    }

    // 2. Read a signal nothing ever drives.
    {
        let mut b = rebuild(net)?;
        b.gate("mut_ghost_t", GateKind::Buf, &["mut_ghost"])?;
        b.output("mut_ghost_t");
        run(
            "undriven/ghost",
            Pass::Undriven,
            "mut_ghost",
            b.finish_unchecked(),
        );
    }

    // 3. Drive a signal nothing ever reads.
    {
        let mut b = rebuild(net)?;
        b.gate("mut_orphan", GateKind::Not, &[x])?;
        run(
            "unread/orphan",
            Pass::Unread,
            "mut_orphan",
            b.finish_unchecked(),
        );
    }

    // 4. An unread primary input (distinct diagnosis from 3).
    {
        let mut b = rebuild(net)?;
        b.input("mut_nc")?;
        run("unread/input", Pass::Unread, "mut_nc", b.finish_unchecked());
    }

    // 5. A gate forced to 0 by a constant: stuck-at-0.
    {
        let mut b = rebuild(net)?;
        b.gate("mut_zero", GateKind::Const0, &[] as &[&str])?;
        b.gate("mut_blocked", GateKind::And, &[x, "mut_zero"])?;
        b.output("mut_blocked");
        run(
            "stuck/and0",
            Pass::ConstProp,
            "mut_blocked",
            b.finish_unchecked(),
        );
    }

    // 6. A gate forced to 1 by a constant: stuck-at-1.
    {
        let mut b = rebuild(net)?;
        b.gate("mut_one", GateKind::Const1, &[] as &[&str])?;
        b.gate("mut_forced", GateKind::Or, &[x, "mut_one"])?;
        b.output("mut_forced");
        run(
            "stuck/or1",
            Pass::ConstProp,
            "mut_forced",
            b.finish_unchecked(),
        );
    }

    // 7. A latch feeding itself: constant at its reset value forever.
    {
        let mut b = rebuild(net)?;
        b.latch("mut_hold", "mut_hold", false)?;
        b.output("mut_hold");
        run(
            "latch/constant",
            Pass::ConstProp,
            "mut_hold",
            b.finish_unchecked(),
        );
    }

    // 8. A toggling latch no output can observe: dead state.
    {
        let mut b = rebuild(net)?;
        b.latch("mut_dead", "mut_dead_n", false)?;
        b.gate("mut_dead_n", GateKind::Not, &["mut_dead"])?;
        run(
            "latch/dead",
            Pass::DeadLatch,
            "mut_dead",
            b.finish_unchecked(),
        );
    }

    // 9. A planted pair of structurally identical gates. (A fresh pair
    //    rather than a copy of an existing gate: some families are
    //    all-`Buf`, and buffers collapse instead of reporting.)
    {
        let mut b = rebuild(net)?;
        b.gate("mut_twin_a", GateKind::Nand, &[x, x])?;
        b.gate("mut_twin_b", GateKind::Nand, &[x, x])?;
        b.output("mut_twin_a");
        b.output("mut_twin_b");
        run(
            "gate/duplicate",
            Pass::DupGate,
            "mut_twin_b",
            b.finish_unchecked(),
        );
    }

    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    #[test]
    fn every_mutation_is_caught_on_every_family() {
        for (name, net) in generators::standard_suite() {
            let outcomes = run_mutations(&net).unwrap();
            assert_eq!(outcomes.len(), 9);
            for o in &outcomes {
                assert!(
                    o.fired,
                    "{name}: mutation {} not caught by {}",
                    o.label,
                    o.expected.id()
                );
            }
        }
    }

    #[test]
    fn witnesses_accompany_the_witnessable_passes() {
        let net = generators::counter(4);
        let outcomes = run_mutations(&net).unwrap();
        for o in outcomes {
            let expect_witness = matches!(
                o.expected,
                Pass::CombCycle | Pass::ConstProp | Pass::DupGate
            );
            if expect_witness {
                assert!(o.with_witness, "{}: no witness", o.label);
            }
        }
    }
}
