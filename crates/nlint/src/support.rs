//! Combinational support analysis: which latches and inputs each
//! next-state function (or output) actually reads.
//!
//! This is the raw material shared by the [`crate::Pass::Support`]
//! statistics pass and the COI/FORCE static variable-ordering heuristics
//! in `bfvr-sim`: a hyperedge per latch (the latch plus its support) is
//! exactly the connectivity the FORCE center-of-gravity iteration
//! minimizes span over.

use bfvr_netlist::{Driver, Netlist, SignalId};

/// The combinational support of one signal: the latches and inputs its
/// cone reads, *stopping* at latch outputs (unlike the transitive
/// [`bfvr_netlist::topo::cone_of_influence`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Support {
    /// Indices into [`Netlist::latches`], sorted.
    pub latches: Vec<usize>,
    /// Indices into [`Netlist::inputs`], sorted.
    pub inputs: Vec<usize>,
}

impl Support {
    /// Total number of slots (latches + inputs) in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latches.len() + self.inputs.len()
    }

    /// Whether the support is empty (a constant cone).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latches.is_empty() && self.inputs.is_empty()
    }
}

/// The combinational support of `root`: latches and inputs reachable
/// through gates only. Tolerates undriven signals (they contribute
/// nothing).
#[must_use]
pub fn signal_support(net: &Netlist, root: SignalId) -> Support {
    let input_index = input_index(net);
    let mut seen = vec![false; net.num_signals()];
    let mut s = Support::default();
    collect(net, root, &input_index, &mut seen, &mut s);
    s.latches.sort_unstable();
    s.inputs.sort_unstable();
    s
}

/// Per-latch support of the next-state function, in latch declaration
/// order.
#[must_use]
pub fn latch_supports(net: &Netlist) -> Vec<Support> {
    let input_index = input_index(net);
    net.latches()
        .iter()
        .map(|l| {
            let mut seen = vec![false; net.num_signals()];
            let mut s = Support::default();
            collect(net, l.input, &input_index, &mut seen, &mut s);
            s.latches.sort_unstable();
            s.inputs.sort_unstable();
            s
        })
        .collect()
}

/// Per-output combinational support, in output declaration order.
#[must_use]
pub fn output_supports(net: &Netlist) -> Vec<Support> {
    let input_index = input_index(net);
    net.outputs()
        .iter()
        .map(|&o| {
            let mut seen = vec![false; net.num_signals()];
            let mut s = Support::default();
            collect(net, o, &input_index, &mut seen, &mut s);
            s.latches.sort_unstable();
            s.inputs.sort_unstable();
            s
        })
        .collect()
}

fn input_index(net: &Netlist) -> Vec<Option<usize>> {
    let mut idx = vec![None; net.num_signals()];
    for (i, s) in net.inputs().iter().enumerate() {
        idx[s.index()] = Some(i);
    }
    idx
}

fn collect(
    net: &Netlist,
    root: SignalId,
    input_index: &[Option<usize>],
    seen: &mut [bool],
    out: &mut Support,
) {
    let mut stack = vec![root];
    while let Some(s) = stack.pop() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        match net.driver_opt(s) {
            Some(Driver::Input) => {
                if let Some(i) = input_index[s.index()] {
                    out.inputs.push(i);
                }
            }
            Some(Driver::Latch(l)) => out.latches.push(l),
            Some(Driver::Gate(g)) => stack.extend(net.gates()[g].inputs.iter().copied()),
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::{GateKind, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.latch("q", "d", false).unwrap();
        b.latch("r", "nr", false).unwrap();
        b.gate("x", GateKind::And, &["a", "q"]).unwrap();
        b.gate("d", GateKind::Xor, &["x", "b"]).unwrap();
        b.gate("nr", GateKind::Buf, &["q"]).unwrap();
        b.output("x");
        b.finish().unwrap()
    }

    #[test]
    fn latch_supports_stop_at_latch_outputs() {
        let net = sample();
        let sup = latch_supports(&net);
        // d = (a ∧ q) ⊕ b: reads latch q and both inputs.
        assert_eq!(sup[0].latches, vec![0]);
        assert_eq!(sup[0].inputs, vec![0, 1]);
        assert_eq!(sup[0].len(), 3);
        // nr = q: reads only latch q.
        assert_eq!(sup[1].latches, vec![0]);
        assert!(sup[1].inputs.is_empty());
    }

    #[test]
    fn output_support_is_combinational() {
        let net = sample();
        let sup = output_supports(&net);
        assert_eq!(sup[0].latches, vec![0]);
        assert_eq!(sup[0].inputs, vec![0]);
    }

    #[test]
    fn constant_cone_has_empty_support() {
        let mut b = NetlistBuilder::new("konst");
        b.latch("q", "one", false).unwrap();
        b.gate("one", GateKind::Const1, &[] as &[&str]).unwrap();
        b.output("q");
        let net = b.finish().unwrap();
        assert!(signal_support(&net, net.find_signal("one").unwrap()).is_empty());
    }
}
