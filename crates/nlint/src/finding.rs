//! The diagnostic vocabulary: passes, severities, witnesses, findings and
//! the sorted report — the netlist-level twin of `bfvr-audit`'s.

use std::fmt;

/// How serious a finding is.
///
/// Ordered so that `Info < Warning < Error`; reports sort descending.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Structure the caller may want to know about (support statistics,
    /// passes skipped as inconclusive).
    Info,
    /// Logic that inflates the representation without making results
    /// wrong: constant or dead latches, duplicate gates, unread signals.
    Warning,
    /// A malformed circuit: reachability results cannot be trusted (or
    /// computed at all).
    Error,
}

impl Severity {
    /// Lowercase label, as rendered in diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysis passes of the netlist linter, in the order they run.
///
/// The first two are *structural*: they hold on any signal table. The
/// rest are *semantic* and assume a well-formed netlist, so they are
/// skipped (with an [`Severity::Info`] finding) whenever a structural
/// pass reports an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Combinational cycles, reported with a witness loop of signal
    /// names (SCC detection over the gate DAG; latches cut feedback).
    CombCycle,
    /// Signals referenced but never driven by an input, latch or gate.
    Undriven,
    /// Signals never read by a gate, a latch next-state function or a
    /// primary output.
    Unread,
    /// Ternary (0/1/X) constant propagation from the initial state:
    /// gates stuck at a constant in every reachable state, and latches
    /// that never leave their reset value.
    ConstProp,
    /// Latches outside every output cone of influence (transitively,
    /// through next-state functions): they can never affect an output.
    DeadLatch,
    /// Structurally duplicate gates (same function, same canonicalized
    /// fan-ins), found by hash-consing over the gate DAG.
    DupGate,
    /// Per-latch next-state support statistics — the raw material of
    /// the COI/FORCE ordering heuristics.
    Support,
}

impl Pass {
    /// Every pass, in run order.
    pub const ALL: [Pass; 7] = [
        Pass::CombCycle,
        Pass::Undriven,
        Pass::Unread,
        Pass::ConstProp,
        Pass::DeadLatch,
        Pass::DupGate,
        Pass::Support,
    ];

    /// Stable pass identifier, as rendered in diagnostics
    /// (`error[comb-cycle]`).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Pass::CombCycle => "comb-cycle",
            Pass::Undriven => "undriven",
            Pass::Unread => "unread",
            Pass::ConstProp => "const-prop",
            Pass::DeadLatch => "dead-latch",
            Pass::DupGate => "dup-gate",
            Pass::Support => "support",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Concrete evidence attached to a finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Witness {
    /// A combinational loop of signal names; rendering closes the loop
    /// back onto the first name.
    Cycle(Vec<String>),
    /// A constant value from ternary propagation.
    Stuck(bool),
    /// A set of signal names (a duplicate group, a support set).
    Signals(Vec<String>),
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::Cycle(names) => {
                for n in names {
                    write!(f, "{n} -> ")?;
                }
                match names.first() {
                    Some(first) => write!(f, "{first}"),
                    None => f.write_str("(empty loop)"),
                }
            }
            Witness::Stuck(v) => write!(f, "stuck-at-{}", u8::from(*v)),
            Witness::Signals(names) => f.write_str(&names.join(", ")),
        }
    }
}

/// One diagnostic: a pass, a severity, the path of the offending signal,
/// a message and (where extractable) concrete evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced this finding.
    pub pass: Pass,
    /// How serious it is.
    pub severity: Severity,
    /// Path of the offending object, e.g. `signal/count2` or
    /// `latch/q0`.
    pub path: String,
    /// One-line description with the concrete names and numbers.
    pub message: String,
    /// Evidence, when the pass can extract it.
    pub witness: Option<Witness>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.pass, self.message)?;
        write!(f, "\n  --> {}", self.path)?;
        if let Some(w) = &self.witness {
            write!(f, "\n  witness: {w}")?;
        }
        Ok(())
    }
}

/// An accumulating collection of findings with stable, diff-friendly
/// ordering: severity (most severe first), then pass id, then path.
#[derive(Clone, Debug, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings in sorted order (severity desc, pass id, path,
    /// message).
    #[must_use]
    pub fn sorted(&self) -> Vec<&Finding> {
        let mut v: Vec<&Finding> = self.findings.iter().collect();
        v.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.pass.id().cmp(b.pass.id()))
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.message.cmp(&b.message))
        });
        v
    }

    /// The most severe finding level, if any.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether any finding is at [`Severity::Error`] (the exit-code
    /// contract of `bfvr lint`: nonzero iff this is true).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Count of findings at exactly `severity`.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// All findings produced by `pass`, unsorted.
    pub fn by_pass(&self, pass: Pass) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.pass == pass)
    }

    /// Renders every finding in sorted order, one compiler-style block
    /// per finding, separated by blank lines.
    #[must_use]
    pub fn render(&self) -> String {
        let blocks: Vec<String> = self.sorted().iter().map(|f| f.to_string()).collect();
        blocks.join("\n\n")
    }

    /// The compact `2e/3w/5i` summary recorded in trace meta headers.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}e/{}w/{}i",
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: Pass, severity: Severity, path: &str) -> Finding {
        Finding {
            pass,
            severity,
            path: path.to_string(),
            message: "m".to_string(),
            witness: None,
        }
    }

    #[test]
    fn report_sorts_by_severity_then_pass_then_path() {
        let mut r = Report::new();
        r.push(finding(Pass::DupGate, Severity::Warning, "b"));
        r.push(finding(Pass::Undriven, Severity::Error, "z"));
        r.push(finding(Pass::CombCycle, Severity::Error, "a"));
        r.push(finding(Pass::DupGate, Severity::Warning, "a"));
        let order: Vec<(&str, &str)> = r
            .sorted()
            .iter()
            .map(|f| (f.pass.id(), f.path.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("comb-cycle", "a"),
                ("undriven", "z"),
                ("dup-gate", "a"),
                ("dup-gate", "b"),
            ]
        );
        assert!(r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(r.count_at(Severity::Warning), 2);
        assert_eq!(r.summary(), "2e/2w/0i");
    }

    #[test]
    fn finding_renders_compiler_style() {
        let f = Finding {
            pass: Pass::CombCycle,
            severity: Severity::Error,
            path: "signal/x".to_string(),
            message: "combinational cycle through 2 signals".to_string(),
            witness: Some(Witness::Cycle(vec!["x".into(), "y".into()])),
        };
        assert_eq!(
            f.to_string(),
            "error[comb-cycle]: combinational cycle through 2 signals\n  --> signal/x\n  witness: x -> y -> x"
        );
    }

    #[test]
    fn witness_variants_render() {
        assert_eq!(Witness::Stuck(true).to_string(), "stuck-at-1");
        assert_eq!(Witness::Stuck(false).to_string(), "stuck-at-0");
        assert_eq!(
            Witness::Signals(vec!["a".into(), "b".into()]).to_string(),
            "a, b"
        );
        assert_eq!(Witness::Cycle(vec![]).to_string(), "(empty loop)");
    }
}
