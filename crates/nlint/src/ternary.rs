//! Ternary (0/1/X) constant propagation from the initial state.
//!
//! A three-valued abstraction of the sequential semantics: latches start
//! at their reset values, primary inputs are unknown (`X`), gates
//! evaluate in topological order, and any latch whose computed next
//! value disagrees with its current value is demoted to `X`. The
//! iteration is monotone (values only ever move toward `X`), so it
//! reaches a fixpoint in at most `latches + 1` rounds. Any signal still
//! definite at the fixpoint provably holds that value in **every**
//! reachable state — the abstraction over-approximates reachability, so
//! "definite" is sound evidence for the `const-prop` lint pass and for
//! the constant-folding simplifier.

use bfvr_netlist::{GateKind, Netlist};

/// A three-valued signal level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tern {
    /// Definitely 0 in every reachable state.
    Zero,
    /// Definitely 1 in every reachable state.
    One,
    /// Unknown / varying.
    X,
}

impl Tern {
    /// The definite Boolean value, if any.
    #[must_use]
    pub fn definite(self) -> Option<bool> {
        match self {
            Tern::Zero => Some(false),
            Tern::One => Some(true),
            Tern::X => None,
        }
    }

    fn of(b: bool) -> Tern {
        if b {
            Tern::One
        } else {
            Tern::Zero
        }
    }

    fn not(self) -> Tern {
        match self {
            Tern::Zero => Tern::One,
            Tern::One => Tern::Zero,
            Tern::X => Tern::X,
        }
    }
}

/// The ternary fixpoint: one [`Tern`] per signal.
#[derive(Clone, Debug)]
pub struct TernaryFix {
    /// Fixpoint value of every signal, indexed by
    /// [`bfvr_netlist::SignalId::index`].
    pub values: Vec<Tern>,
}

impl TernaryFix {
    /// Latches still definite at the fixpoint: `(latch index, value)`,
    /// in declaration order. These never leave their reset value.
    #[must_use]
    pub fn constant_latches(&self, net: &Netlist) -> Vec<(usize, bool)> {
        net.latches()
            .iter()
            .enumerate()
            .filter_map(|(i, l)| self.values[l.output.index()].definite().map(|v| (i, v)))
            .collect()
    }

    /// Gates whose output is definite at the fixpoint — stuck at a
    /// constant in every reachable state. `(gate index, value)`, in gate
    /// order; deliberately constant gates (`Const0`/`Const1`) are not
    /// "stuck" and are excluded.
    #[must_use]
    pub fn stuck_gates(&self, net: &Netlist) -> Vec<(usize, bool)> {
        net.gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| !matches!(g.kind, GateKind::Const0 | GateKind::Const1))
            .filter_map(|(i, g)| self.values[g.output.index()].definite().map(|v| (i, v)))
            .collect()
    }
}

/// Runs ternary propagation to its fixpoint. `topo` is the gate order
/// from [`bfvr_netlist::topo::order`] (the caller has already verified
/// acyclicity).
#[must_use]
pub fn propagate(net: &Netlist, topo: &[usize]) -> TernaryFix {
    let mut values = vec![Tern::X; net.num_signals()];
    for l in net.latches() {
        values[l.output.index()] = Tern::of(l.init);
    }
    loop {
        for &g in topo {
            let gate = &net.gates()[g];
            let ins: Vec<Tern> = gate.inputs.iter().map(|s| values[s.index()]).collect();
            values[gate.output.index()] = eval(&gate.kind, &ins);
        }
        let mut changed = false;
        for l in net.latches() {
            let cur = values[l.output.index()];
            let next = values[l.input.index()];
            if cur != Tern::X && cur != next {
                values[l.output.index()] = Tern::X;
                changed = true;
            }
        }
        if !changed {
            return TernaryFix { values };
        }
    }
}

fn eval(kind: &GateKind, ins: &[Tern]) -> Tern {
    match kind {
        GateKind::And => and(ins),
        GateKind::Or => or(ins),
        GateKind::Nand => and(ins).not(),
        GateKind::Nor => or(ins).not(),
        GateKind::Not => ins[0].not(),
        GateKind::Buf => ins[0],
        GateKind::Xor => parity(ins),
        GateKind::Xnor => parity(ins).not(),
        GateKind::Const0 => Tern::Zero,
        GateKind::Const1 => Tern::One,
        GateKind::Cover(rows) => {
            let mut any_x = false;
            for row in rows {
                match row_value(row, ins) {
                    Tern::One => return Tern::One,
                    Tern::X => any_x = true,
                    Tern::Zero => {}
                }
            }
            if any_x {
                Tern::X
            } else {
                Tern::Zero
            }
        }
    }
}

fn and(ins: &[Tern]) -> Tern {
    if ins.contains(&Tern::Zero) {
        Tern::Zero
    } else if ins.iter().all(|&t| t == Tern::One) {
        Tern::One
    } else {
        Tern::X
    }
}

fn or(ins: &[Tern]) -> Tern {
    if ins.contains(&Tern::One) {
        Tern::One
    } else if ins.iter().all(|&t| t == Tern::Zero) {
        Tern::Zero
    } else {
        Tern::X
    }
}

fn parity(ins: &[Tern]) -> Tern {
    let mut odd = false;
    for &t in ins {
        match t {
            Tern::X => return Tern::X,
            Tern::One => odd = !odd,
            Tern::Zero => {}
        }
    }
    Tern::of(odd)
}

/// One cube of a BLIF cover: AND of its literal matches.
fn row_value(row: &[Option<bool>], ins: &[Tern]) -> Tern {
    let mut all_definite = true;
    for (lit, &v) in row.iter().zip(ins) {
        let Some(want) = lit else { continue };
        match v.definite() {
            Some(got) if got != *want => return Tern::Zero,
            Some(_) => {}
            None => all_definite = false,
        }
    }
    if all_definite {
        Tern::One
    } else {
        Tern::X
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::{topo, NetlistBuilder};

    #[test]
    fn toggling_latch_demotes_to_x() {
        let mut b = NetlistBuilder::new("t");
        b.latch("q", "nq", false).unwrap();
        b.gate("nq", GateKind::Not, &["q"]).unwrap();
        b.output("q");
        let net = b.finish().unwrap();
        let ord = topo::order(&net).unwrap();
        let fix = propagate(&net, &ord);
        assert!(fix.constant_latches(&net).is_empty());
    }

    #[test]
    fn held_latch_stays_definite_and_blocks_downstream() {
        let mut b = NetlistBuilder::new("t");
        b.input("i").unwrap();
        b.latch("hold", "hold", false).unwrap(); // self-feedback: constant 0
        b.latch("live", "nl", false).unwrap();
        b.gate("nl", GateKind::Not, &["live"]).unwrap();
        // blocked = i ∧ hold is stuck at 0 because hold never rises.
        b.gate("blocked", GateKind::And, &["i", "hold"]).unwrap();
        b.output("blocked");
        let net = b.finish().unwrap();
        let ord = topo::order(&net).unwrap();
        let fix = propagate(&net, &ord);
        assert_eq!(fix.constant_latches(&net), vec![(0, false)]);
        let stuck = fix.stuck_gates(&net);
        let blocked = net.find_signal("blocked").unwrap();
        assert!(stuck
            .iter()
            .any(|&(g, v)| net.gates()[g].output == blocked && !v));
    }

    #[test]
    fn xnor_parity_and_cover_rows() {
        let mut b = NetlistBuilder::new("t");
        b.input("i").unwrap();
        b.latch("a", "na", true).unwrap(); // constant 1 (self-feedback)
        b.gate("na", GateKind::Buf, &["a"]).unwrap();
        b.gate("x", GateKind::Xnor, &["a", "a"]).unwrap(); // 1⊕̄1 = 1
        b.gate(
            "c",
            GateKind::Cover(vec![vec![Some(true), None]]),
            &["a", "i"],
        )
        .unwrap(); // row matches on a=1 regardless of i
        b.output("x");
        b.output("c");
        let net = b.finish().unwrap();
        let ord = topo::order(&net).unwrap();
        let fix = propagate(&net, &ord);
        let x = net.find_signal("x").unwrap();
        let c = net.find_signal("c").unwrap();
        assert_eq!(fix.values[x.index()], Tern::One);
        assert_eq!(fix.values[c.index()], Tern::One);
    }
}
