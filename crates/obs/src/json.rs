//! A minimal JSON value model with a writer and a recursive-descent
//! parser, covering exactly the subset the trace schema emits: objects,
//! arrays, strings, finite numbers, booleans and `null`.
//!
//! Hand-rolled on purpose: the workspace builds offline with no external
//! crates, and the trace schema (see [`crate::event`]) is small enough
//! that a purpose-built ~200-line parser is simpler to audit than a
//! serde dependency would be to vendor.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the schema never needs more than f64 precision;
    /// every counter the tracer emits is far below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are kept sorted so encoding is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object map, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips through `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience field lookup on an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes the value as compact JSON (no whitespace), with object
    /// keys in sorted order so identical values encode identically.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a number the way the schema expects: integers without a
/// fractional part, everything else via the shortest `f64` display.
/// Non-finite values (which the tracer never produces) encode as `null`.
pub(crate) fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in our traces;
                            // map a lone surrogate to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is valid UTF-8:
                    // it came in as &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        Ok(Value::Num(n))
    }
}

/// Builds an object value from key/value pairs (test and encoder helper).
#[must_use]
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":-2.25}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(v.get("d").and_then(Value::as_num), Some(-2.25));
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        let enc = v.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&enc).unwrap(), v);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Value::Num(42.0).encode(), "42");
        assert_eq!(Value::Num(42.5).encode(), "42.5");
        assert_eq!(Value::Num(42.0).as_u64(), Some(42));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(0.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
