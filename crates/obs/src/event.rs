//! The trace event model and its JSONL encoding (schema version 1).
//!
//! One [`Event`] encodes as one JSON object per line. Every line carries
//! the envelope fields `seq` (per-stream sequence number), `t_us`
//! (microseconds since the emitting tracer's epoch, monotonic) and an
//! optional `lane` (set when a racing lane's stream was merged into the
//! main trace — lane timestamps are relative to the *lane's* epoch). The
//! `ev` field selects the payload variant.
//!
//! The full schema is documented in `docs/observability.md`; the
//! round-trip guarantee (`encode` → [`Event::parse`] → identical event)
//! is what `bfvr report` and the CI trace validation build on.

use std::borrow::Cow;
use std::collections::BTreeMap;

use crate::json::{self, Value};

/// Current schema version, written into the [`EventKind::Meta`] header.
pub const SCHEMA_VERSION: u64 = 1;

/// Where a span sits in the taxonomy `run > engine > iteration > op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One traced activity: a CLI invocation or one benchmark cell.
    Run,
    /// One engine's traversal inside a run.
    Engine,
    /// One fixed-point iteration (usually emitted as an [`EventKind::Iter`]
    /// complete-event instead of an open/close pair; see the tracer docs).
    Iteration,
    /// One operation class inside an iteration (image, union, convert).
    Op,
}

impl SpanKind {
    /// Stable schema label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Engine => "engine",
            SpanKind::Iteration => "iteration",
            SpanKind::Op => "op",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "run" => SpanKind::Run,
            "engine" => SpanKind::Engine,
            "iteration" => SpanKind::Iteration,
            "op" => SpanKind::Op,
            _ => return None,
        })
    }
}

/// Which resource ceiling an [`EventKind::Limit`] event reports. Injected
/// faults (see `bfvr_bdd::FaultPlan`) surface through the same two kinds:
/// a deterministic fault is indistinguishable from the real exhaustion it
/// simulates, by design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// The node ceiling tripped (`M.O.`).
    NodeLimit,
    /// The wall-clock deadline tripped (`T.O.`).
    Deadline,
}

impl LimitKind {
    /// Stable schema label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LimitKind::NodeLimit => "node_limit",
            LimitKind::Deadline => "deadline",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "node_limit" => LimitKind::NodeLimit,
            "deadline" => LimitKind::Deadline,
            _ => return None,
        })
    }
}

/// A named counter set: an ordered list of `(name, value)` pairs.
///
/// The registry pattern: producers snapshot whatever counters they own
/// (manager stats, cache stats, unique-table stats, GC stats) under
/// stable names; [`Counters::delta`] subtracts snapshots pairwise, which
/// is how per-span counter deltas are derived. Values are `f64` — every
/// counter in the system is an integer far below 2^53, and f64 keeps the
/// JSON mapping exact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    pairs: Vec<(Cow<'static, str>, f64)>,
}

impl Counters {
    /// An empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Inserts (or overwrites) a counter. Pairs are kept sorted by name
    /// so a `Counters` has exactly one representation: the JSON object
    /// encoding (sorted keys) round-trips back to an equal value.
    pub fn set(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        let name = name.into();
        match self.pairs.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => self.pairs.insert(i, (name, value)),
        }
    }

    /// Builder-style [`Counters::set`].
    #[must_use]
    pub fn with(mut self, name: impl Into<Cow<'static, str>>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Reads a counter by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.pairs.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// Number of counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// `self − earlier`, pairwise by name: the per-span delta of two
    /// cumulative snapshots. Counters missing from `earlier` are treated
    /// as starting at zero; counters only in `earlier` are dropped
    /// (a producer stopped reporting them — nothing to say).
    #[must_use]
    pub fn delta(&self, earlier: &Counters) -> Counters {
        let mut out = Counters::new();
        for (name, v) in &self.pairs {
            let before = earlier.get(name).unwrap_or(0.0);
            out.set(name.clone(), v - before);
        }
        out
    }

    #[cfg(test)]
    fn to_value(&self) -> Value {
        Value::Obj(
            self.pairs
                .iter()
                .map(|(n, v)| (n.to_string(), Value::Num(*v)))
                .collect(),
        )
    }

    /// Writes the counter set as a compact JSON object. Pairs are
    /// already sorted by name, so this matches the `Value::Obj`
    /// encoding byte for byte without building a map.
    fn write_obj(&self, out: &mut String) {
        out.push('{');
        for (i, (n, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(n, out);
            out.push(':');
            json::write_num(*v, out);
        }
        out.push('}');
    }

    fn from_value(v: &Value) -> Option<Self> {
        let map = v.as_obj()?;
        let mut c = Counters::new();
        for (k, v) in map {
            c.set(k.clone(), v.as_num()?);
        }
        Some(c)
    }
}

impl FromIterator<(Cow<'static, str>, f64)> for Counters {
    fn from_iter<T: IntoIterator<Item = (Cow<'static, str>, f64)>>(iter: T) -> Self {
        // Route through `set` so the sorted-pairs invariant (and with it
        // the one-representation guarantee) holds regardless of the
        // producer's insertion order.
        let mut c = Counters::new();
        for (name, value) in iter {
            c.set(name, value);
        }
        c
    }
}

/// Per-iteration telemetry record — the workhorse event of the stream,
/// emitted once per *sampled* fixed-point iteration. Carries the
/// engine-level iteration stats the paper's evaluation plots (frontier
/// size, representation size, live/peak nodes, reached states) plus a
/// cumulative counter snapshot and per-op-class durations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IterRecord {
    /// Engine label (`BFV`, `CBM`, `MONO`, `IWLS95`, `CDEC`).
    pub engine: Cow<'static, str>,
    /// 1-based iteration number.
    pub iteration: u64,
    /// Wall time of this iteration, microseconds.
    pub dur_us: u64,
    /// BDD nodes of the iteration's start set (the frontier).
    pub frontier_nodes: u64,
    /// Shared BDD nodes of the reached-set representation.
    pub reached_nodes: u64,
    /// Live nodes after the engine's (possibly deferred) collection.
    pub live_nodes: u64,
    /// Nodes currently allocated in the arena (live + deferred garbage).
    pub allocated_nodes: u64,
    /// Peak allocated nodes so far in this traversal.
    pub peak_nodes: u64,
    /// Nodes reclaimed by this iteration's collection (0 when deferred).
    pub gc_collected: u64,
    /// Reached-state count, when the representation makes counting free
    /// (χ-based engines); `None` for vector/CDec engines, where counting
    /// would require a conversion the engine itself never performs.
    pub states: Option<f64>,
    /// Cumulative manager counter snapshot (see the counter registry in
    /// `docs/observability.md`).
    pub snapshot: Counters,
    /// Op-class durations within this iteration, microseconds
    /// (`image`, `union`, `convert`, … — engine-dependent).
    pub ops: Counters,
}

/// The payload of one trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Stream header: always the first event of a stream.
    Meta {
        /// Schema version ([`SCHEMA_VERSION`]).
        version: u64,
        /// Iteration sampling stride (1 = every iteration).
        sample_every: u64,
        /// Free-form producer label (CLI invocation, bench binary).
        label: String,
    },
    /// A span opened (kinds `run`/`engine`; iterations and ops are
    /// emitted as complete events instead).
    SpanOpen {
        /// Stream-unique span id.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Taxonomy level.
        kind: SpanKind,
        /// Human-readable name (circuit/order, engine label, …).
        name: String,
    },
    /// A span closed; carries its duration and the counter delta between
    /// open and close.
    SpanClose {
        /// Id from the matching [`EventKind::SpanOpen`].
        id: u64,
        /// Taxonomy level (repeated so lines are self-describing).
        kind: SpanKind,
        /// Name (repeated so lines are self-describing).
        name: String,
        /// Wall time between open and close, microseconds.
        dur_us: u64,
        /// Counter movement across the span (`close − open`).
        delta: Counters,
    },
    /// One sampled fixed-point iteration.
    Iter(IterRecord),
    /// An engine finished (in any way); the trace-level mirror of
    /// `ReachResult`.
    EngineEnd {
        /// Engine label.
        engine: Cow<'static, str>,
        /// Outcome label (`ok`, `T.O.`, `M.O.`, `I.L.`, `ERR`).
        outcome: Cow<'static, str>,
        /// Iterations completed.
        iterations: u64,
        /// Reached-state count, when known.
        states: Option<f64>,
        /// Peak allocated nodes.
        peak_nodes: u64,
        /// Traversal wall time, microseconds.
        dur_us: u64,
    },
    /// A resource ceiling stopped an engine — real or fault-injected,
    /// the stream does not distinguish (that is the point of injection).
    Limit {
        /// Engine label.
        engine: Cow<'static, str>,
        /// Which ceiling.
        kind: LimitKind,
        /// Iterations completed when it tripped.
        iterations: u64,
    },
    /// A racing lane was stopped (or skipped) because another lane won.
    Cancel {
        /// Engine label of the cancelled lane.
        engine: Cow<'static, str>,
    },
    /// A racing lane won.
    Winner {
        /// Engine label of the winning lane.
        engine: Cow<'static, str>,
    },
    /// A dynamic variable reorder (sift pass) ran between iterations.
    Reorder {
        /// Engine label.
        engine: Cow<'static, str>,
        /// Iterations completed when the reorder triggered.
        iteration: u64,
        /// Live nodes before the pass.
        before: u64,
        /// Live nodes after the pass.
        after: u64,
        /// Wall time of the pass, microseconds.
        dur_us: u64,
    },
    /// One budget-escalation round completed.
    Round {
        /// Engine label.
        engine: Cow<'static, str>,
        /// 0-based round number (0 = the initial run).
        round: u64,
        /// Outcome label of this round.
        outcome: Cow<'static, str>,
        /// Whether the round resumed from a checkpoint.
        resumed: bool,
        /// Node budget of this round, if bounded.
        node_limit: Option<u64>,
        /// Time budget of this round in microseconds, if bounded.
        time_limit_us: Option<u64>,
    },
}

impl EventKind {
    /// The `ev` discriminator string of this payload.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Meta { .. } => "meta",
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::Iter(_) => "iter",
            EventKind::EngineEnd { .. } => "engine_end",
            EventKind::Limit { .. } => "limit",
            EventKind::Cancel { .. } => "cancel",
            EventKind::Winner { .. } => "winner",
            EventKind::Reorder { .. } => "reorder",
            EventKind::Round { .. } => "round",
        }
    }
}

/// One trace line: envelope plus payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Per-stream sequence number (0-based, dense).
    pub seq: u64,
    /// Microseconds since the emitting tracer's monotonic epoch.
    pub t_us: u64,
    /// Racing lane index, set when this event was merged from a lane
    /// stream (lane `t_us` values are relative to the lane's own epoch).
    pub lane: Option<u64>,
    /// The payload.
    pub kind: EventKind,
}

/// A schema decoding failure (structurally valid JSON that is not a
/// valid event).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

/// Incremental writer for one event line. Fields must be appended in
/// globally sorted key order: the `Value::Obj` encoding this replaces
/// sorted all keys alphabetically, and byte-identical output is part of
/// the round-trip contract (asserted against the map-based oracle in
/// the tests below). Writing fields directly skips the per-event
/// `BTreeMap<String, Value>` the oracle builds — this is the hot path
/// of every sink, called once per sampled iteration from inside engine
/// fixed-point loops.
struct FieldWriter {
    out: String,
}

impl FieldWriter {
    fn new() -> Self {
        let mut out = String::with_capacity(192);
        out.push('{');
        FieldWriter { out }
    }

    fn key(&mut self, k: &str) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
        json::write_str(k, &mut self.out);
        self.out.push(':');
    }

    fn int(&mut self, k: &str, v: u64) {
        self.key(k);
        json::write_num(v as f64, &mut self.out);
    }

    fn opt_int(&mut self, k: &str, v: Option<u64>) {
        self.key(k);
        match v {
            Some(x) => json::write_num(x as f64, &mut self.out),
            None => self.out.push_str("null"),
        }
    }

    fn opt_num(&mut self, k: &str, v: Option<f64>) {
        self.key(k);
        match v {
            Some(x) => json::write_num(x, &mut self.out),
            None => self.out.push_str("null"),
        }
    }

    fn text(&mut self, k: &str, v: &str) {
        self.key(k);
        json::write_str(v, &mut self.out);
    }

    fn flag(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn counters(&mut self, k: &str, c: &Counters) {
        self.key(k);
        c.write_obj(&mut self.out);
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn opt_u64_field(map: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, SchemaError> {
    match map.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| SchemaError(format!("field `{key}` is not a non-negative integer"))),
    }
}

fn u64_field(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, SchemaError> {
    opt_u64_field(map, key)?.ok_or_else(|| SchemaError(format!("missing field `{key}`")))
}

fn str_field(map: &BTreeMap<String, Value>, key: &str) -> Result<String, SchemaError> {
    map.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| SchemaError(format!("missing string field `{key}`")))
}

fn counters_field(map: &BTreeMap<String, Value>, key: &str) -> Result<Counters, SchemaError> {
    match map.get(key) {
        None => Ok(Counters::new()),
        Some(v) => Counters::from_value(v)
            .ok_or_else(|| SchemaError(format!("field `{key}` is not a counter object"))),
    }
}

impl Event {
    /// Encodes the event as one compact JSON line (no trailing newline).
    ///
    /// Fields appear in sorted key order, exactly as a `Value::Obj`
    /// encoding would produce them; the optional `lane` envelope field
    /// is interleaved at its alphabetical position in each variant.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut w = FieldWriter::new();
        match &self.kind {
            EventKind::Meta {
                version,
                sample_every,
                label,
            } => {
                w.text("ev", "meta");
                w.text("label", label);
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.int("sample_every", *sample_every);
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
                w.int("v", *version);
            }
            EventKind::SpanOpen {
                id,
                parent,
                kind,
                name,
            } => {
                w.text("ev", "span_open");
                w.int("id", *id);
                w.text("kind", kind.label());
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.text("name", name);
                w.opt_int("parent", *parent);
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
            }
            EventKind::SpanClose {
                id,
                kind,
                name,
                dur_us,
                delta,
            } => {
                w.counters("delta", delta);
                w.int("dur_us", *dur_us);
                w.text("ev", "span_close");
                w.int("id", *id);
                w.text("kind", kind.label());
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.text("name", name);
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
            }
            EventKind::Iter(r) => {
                w.int("allocated_nodes", r.allocated_nodes);
                w.int("dur_us", r.dur_us);
                w.text("engine", &r.engine);
                w.text("ev", "iter");
                w.int("frontier_nodes", r.frontier_nodes);
                w.int("gc_collected", r.gc_collected);
                w.int("iter", r.iteration);
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.int("live_nodes", r.live_nodes);
                w.counters("ops", &r.ops);
                w.int("peak_nodes", r.peak_nodes);
                w.int("reached_nodes", r.reached_nodes);
                w.int("seq", self.seq);
                w.counters("snapshot", &r.snapshot);
                w.opt_num("states", r.states);
                w.int("t_us", self.t_us);
            }
            EventKind::EngineEnd {
                engine,
                outcome,
                iterations,
                states,
                peak_nodes,
                dur_us,
            } => {
                w.int("dur_us", *dur_us);
                w.text("engine", engine);
                w.text("ev", "engine_end");
                w.int("iterations", *iterations);
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.text("outcome", outcome);
                w.int("peak_nodes", *peak_nodes);
                w.int("seq", self.seq);
                w.opt_num("states", *states);
                w.int("t_us", self.t_us);
            }
            EventKind::Limit {
                engine,
                kind,
                iterations,
            } => {
                w.text("engine", engine);
                w.text("ev", "limit");
                w.int("iterations", *iterations);
                w.text("kind", kind.label());
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
            }
            EventKind::Cancel { engine } | EventKind::Winner { engine } => {
                w.text("engine", engine);
                w.text("ev", self.kind.tag());
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
            }
            EventKind::Reorder {
                engine,
                iteration,
                before,
                after,
                dur_us,
            } => {
                w.int("after", *after);
                w.int("before", *before);
                w.int("dur_us", *dur_us);
                w.text("engine", engine);
                w.text("ev", "reorder");
                w.int("iter", *iteration);
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
            }
            EventKind::Round {
                engine,
                round,
                outcome,
                resumed,
                node_limit,
                time_limit_us,
            } => {
                w.text("engine", engine);
                w.text("ev", "round");
                if let Some(l) = self.lane {
                    w.int("lane", l);
                }
                w.opt_int("node_limit", *node_limit);
                w.text("outcome", outcome);
                w.flag("resumed", *resumed);
                w.int("round", *round);
                w.int("seq", self.seq);
                w.int("t_us", self.t_us);
                w.opt_int("time_limit_us", *time_limit_us);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line back into an event.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a structurally valid object that does
    /// not match the schema (unknown `ev`, missing/mistyped fields).
    pub fn parse(line: &str) -> Result<Event, SchemaError> {
        let v = json::parse(line).map_err(|e| SchemaError(e.to_string()))?;
        let map = v
            .as_obj()
            .ok_or_else(|| SchemaError("event line is not an object".into()))?;
        let seq = u64_field(map, "seq")?;
        let t_us = u64_field(map, "t_us")?;
        let lane = opt_u64_field(map, "lane")?;
        let tag = str_field(map, "ev")?;
        let kind = match tag.as_str() {
            "meta" => EventKind::Meta {
                version: u64_field(map, "v")?,
                sample_every: u64_field(map, "sample_every")?,
                label: str_field(map, "label")?,
            },
            "span_open" => EventKind::SpanOpen {
                id: u64_field(map, "id")?,
                parent: opt_u64_field(map, "parent")?,
                kind: SpanKind::from_label(&str_field(map, "kind")?)
                    .ok_or_else(|| SchemaError("unknown span kind".into()))?,
                name: str_field(map, "name")?,
            },
            "span_close" => EventKind::SpanClose {
                id: u64_field(map, "id")?,
                kind: SpanKind::from_label(&str_field(map, "kind")?)
                    .ok_or_else(|| SchemaError("unknown span kind".into()))?,
                name: str_field(map, "name")?,
                dur_us: u64_field(map, "dur_us")?,
                delta: counters_field(map, "delta")?,
            },
            "iter" => EventKind::Iter(IterRecord {
                engine: str_field(map, "engine")?.into(),
                iteration: u64_field(map, "iter")?,
                dur_us: u64_field(map, "dur_us")?,
                frontier_nodes: u64_field(map, "frontier_nodes")?,
                reached_nodes: u64_field(map, "reached_nodes")?,
                live_nodes: u64_field(map, "live_nodes")?,
                allocated_nodes: u64_field(map, "allocated_nodes")?,
                peak_nodes: u64_field(map, "peak_nodes")?,
                gc_collected: u64_field(map, "gc_collected")?,
                states: match map.get("states") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        v.as_num()
                            .ok_or_else(|| SchemaError("`states` is not a number".into()))?,
                    ),
                },
                snapshot: counters_field(map, "snapshot")?,
                ops: counters_field(map, "ops")?,
            }),
            "engine_end" => EventKind::EngineEnd {
                engine: str_field(map, "engine")?.into(),
                outcome: str_field(map, "outcome")?.into(),
                iterations: u64_field(map, "iterations")?,
                states: match map.get("states") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        v.as_num()
                            .ok_or_else(|| SchemaError("`states` is not a number".into()))?,
                    ),
                },
                peak_nodes: u64_field(map, "peak_nodes")?,
                dur_us: u64_field(map, "dur_us")?,
            },
            "limit" => EventKind::Limit {
                engine: str_field(map, "engine")?.into(),
                kind: LimitKind::from_label(&str_field(map, "kind")?)
                    .ok_or_else(|| SchemaError("unknown limit kind".into()))?,
                iterations: u64_field(map, "iterations")?,
            },
            "cancel" => EventKind::Cancel {
                engine: str_field(map, "engine")?.into(),
            },
            "winner" => EventKind::Winner {
                engine: str_field(map, "engine")?.into(),
            },
            "reorder" => EventKind::Reorder {
                engine: str_field(map, "engine")?.into(),
                iteration: u64_field(map, "iter")?,
                before: u64_field(map, "before")?,
                after: u64_field(map, "after")?,
                dur_us: u64_field(map, "dur_us")?,
            },
            "round" => EventKind::Round {
                engine: str_field(map, "engine")?.into(),
                round: u64_field(map, "round")?,
                outcome: str_field(map, "outcome")?.into(),
                resumed: map
                    .get("resumed")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| SchemaError("missing bool field `resumed`".into()))?,
                node_limit: opt_u64_field(map, "node_limit")?,
                time_limit_us: opt_u64_field(map, "time_limit_us")?,
            },
            other => return Err(SchemaError(format!("unknown event tag `{other}`"))),
        };
        Ok(Event {
            seq,
            t_us,
            lane,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_delta_subtracts_pairwise() {
        let a = Counters::new().with("x", 10.0).with("y", 3.0);
        let b = Counters::new()
            .with("x", 25.0)
            .with("y", 2.0)
            .with("z", 7.0);
        let d = b.delta(&a);
        assert_eq!(d.get("x"), Some(15.0));
        assert_eq!(d.get("y"), Some(-1.0));
        assert_eq!(d.get("z"), Some(7.0));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn counters_set_overwrites() {
        let mut c = Counters::new();
        c.set("a", 1.0);
        c.set("a", 2.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a"), Some(2.0));
    }

    /// The map-based encoder the direct [`FieldWriter`] path replaced,
    /// kept as the ordering oracle: `Value::Obj` sorts keys globally,
    /// so any field the fast path emits out of alphabetical order (or
    /// forgets) shows up as a byte diff here.
    fn encode_via_value(e: &Event) -> String {
        fn opt_num(v: Option<f64>) -> Value {
            v.map_or(Value::Null, Value::Num)
        }
        let mut map: BTreeMap<String, Value> = BTreeMap::new();
        map.insert("seq".into(), Value::Num(e.seq as f64));
        map.insert("t_us".into(), Value::Num(e.t_us as f64));
        if let Some(lane) = e.lane {
            map.insert("lane".into(), Value::Num(lane as f64));
        }
        map.insert("ev".into(), Value::Str(e.kind.tag().into()));
        match &e.kind {
            EventKind::Meta {
                version,
                sample_every,
                label,
            } => {
                map.insert("v".into(), Value::Num(*version as f64));
                map.insert("sample_every".into(), Value::Num(*sample_every as f64));
                map.insert("label".into(), Value::Str(label.clone()));
            }
            EventKind::SpanOpen {
                id,
                parent,
                kind,
                name,
            } => {
                map.insert("id".into(), Value::Num(*id as f64));
                map.insert("parent".into(), opt_num(parent.map(|p| p as f64)));
                map.insert("kind".into(), Value::Str(kind.label().into()));
                map.insert("name".into(), Value::Str(name.clone()));
            }
            EventKind::SpanClose {
                id,
                kind,
                name,
                dur_us,
                delta,
            } => {
                map.insert("id".into(), Value::Num(*id as f64));
                map.insert("kind".into(), Value::Str(kind.label().into()));
                map.insert("name".into(), Value::Str(name.clone()));
                map.insert("dur_us".into(), Value::Num(*dur_us as f64));
                map.insert("delta".into(), delta.to_value());
            }
            EventKind::Iter(r) => {
                map.insert("engine".into(), Value::Str(r.engine.to_string()));
                map.insert("iter".into(), Value::Num(r.iteration as f64));
                map.insert("dur_us".into(), Value::Num(r.dur_us as f64));
                map.insert("frontier_nodes".into(), Value::Num(r.frontier_nodes as f64));
                map.insert("reached_nodes".into(), Value::Num(r.reached_nodes as f64));
                map.insert("live_nodes".into(), Value::Num(r.live_nodes as f64));
                map.insert(
                    "allocated_nodes".into(),
                    Value::Num(r.allocated_nodes as f64),
                );
                map.insert("peak_nodes".into(), Value::Num(r.peak_nodes as f64));
                map.insert("gc_collected".into(), Value::Num(r.gc_collected as f64));
                map.insert("states".into(), opt_num(r.states));
                map.insert("snapshot".into(), r.snapshot.to_value());
                map.insert("ops".into(), r.ops.to_value());
            }
            EventKind::EngineEnd {
                engine,
                outcome,
                iterations,
                states,
                peak_nodes,
                dur_us,
            } => {
                map.insert("engine".into(), Value::Str(engine.to_string()));
                map.insert("outcome".into(), Value::Str(outcome.to_string()));
                map.insert("iterations".into(), Value::Num(*iterations as f64));
                map.insert("states".into(), opt_num(*states));
                map.insert("peak_nodes".into(), Value::Num(*peak_nodes as f64));
                map.insert("dur_us".into(), Value::Num(*dur_us as f64));
            }
            EventKind::Limit {
                engine,
                kind,
                iterations,
            } => {
                map.insert("engine".into(), Value::Str(engine.to_string()));
                map.insert("kind".into(), Value::Str(kind.label().into()));
                map.insert("iterations".into(), Value::Num(*iterations as f64));
            }
            EventKind::Cancel { engine } | EventKind::Winner { engine } => {
                map.insert("engine".into(), Value::Str(engine.to_string()));
            }
            EventKind::Reorder {
                engine,
                iteration,
                before,
                after,
                dur_us,
            } => {
                map.insert("engine".into(), Value::Str(engine.to_string()));
                map.insert("iter".into(), Value::Num(*iteration as f64));
                map.insert("before".into(), Value::Num(*before as f64));
                map.insert("after".into(), Value::Num(*after as f64));
                map.insert("dur_us".into(), Value::Num(*dur_us as f64));
            }
            EventKind::Round {
                engine,
                round,
                outcome,
                resumed,
                node_limit,
                time_limit_us,
            } => {
                map.insert("engine".into(), Value::Str(engine.to_string()));
                map.insert("round".into(), Value::Num(*round as f64));
                map.insert("outcome".into(), Value::Str(outcome.to_string()));
                map.insert("resumed".into(), Value::Bool(*resumed));
                map.insert("node_limit".into(), opt_num(node_limit.map(|n| n as f64)));
                map.insert(
                    "time_limit_us".into(),
                    opt_num(time_limit_us.map(|n| n as f64)),
                );
            }
        }
        Value::Obj(map).encode()
    }

    fn every_variant() -> Vec<EventKind> {
        let counters = Counters::new()
            .with("mk_calls", 42.0)
            .with("cache.ite.hits", 7.0);
        vec![
            EventKind::Meta {
                version: SCHEMA_VERSION,
                sample_every: 4,
                label: "unit \"quoted\" label".into(),
            },
            EventKind::SpanOpen {
                id: 3,
                parent: Some(1),
                kind: SpanKind::Engine,
                name: "BFV".into(),
            },
            EventKind::SpanOpen {
                id: 0,
                parent: None,
                kind: SpanKind::Run,
                name: "s27/S1".into(),
            },
            EventKind::SpanClose {
                id: 3,
                kind: SpanKind::Engine,
                name: "BFV".into(),
                dur_us: 1234,
                delta: counters.clone(),
            },
            EventKind::Iter(IterRecord {
                engine: "CBM".into(),
                iteration: 9,
                dur_us: 55,
                frontier_nodes: 1,
                reached_nodes: 2,
                live_nodes: 3,
                allocated_nodes: 4,
                peak_nodes: 5,
                gc_collected: 6,
                states: Some(17.0),
                snapshot: counters.clone(),
                ops: Counters::new().with("image", 40.5),
            }),
            EventKind::Iter(IterRecord {
                engine: "BFV".into(),
                states: None,
                ..IterRecord::default()
            }),
            EventKind::EngineEnd {
                engine: "MONO".into(),
                outcome: "ok".into(),
                iterations: 12,
                states: Some(4096.0),
                peak_nodes: 99,
                dur_us: 100,
            },
            EventKind::Limit {
                engine: "IWLS95".into(),
                kind: LimitKind::NodeLimit,
                iterations: 7,
            },
            EventKind::Limit {
                engine: "CDEC".into(),
                kind: LimitKind::Deadline,
                iterations: 2,
            },
            EventKind::Cancel {
                engine: "BFV".into(),
            },
            EventKind::Winner {
                engine: "CBM".into(),
            },
            EventKind::Reorder {
                engine: "MONO".into(),
                iteration: 5,
                before: 120_000,
                after: 44_000,
                dur_us: 8_700,
            },
            EventKind::Round {
                engine: "BFV".into(),
                round: 1,
                outcome: "M.O.".into(),
                resumed: true,
                node_limit: Some(50_000),
                time_limit_us: None,
            },
        ]
    }

    #[test]
    fn direct_encoder_matches_the_map_based_oracle_on_every_variant() {
        for (i, kind) in every_variant().into_iter().enumerate() {
            for lane in [None, Some(2)] {
                let e = Event {
                    seq: i as u64,
                    t_us: 1000 + i as u64,
                    lane,
                    kind: kind.clone(),
                };
                assert_eq!(
                    e.encode(),
                    encode_via_value(&e),
                    "variant #{i}, lane {lane:?}"
                );
            }
        }
    }

    #[test]
    fn every_variant_round_trips_through_parse() {
        for (i, kind) in every_variant().into_iter().enumerate() {
            let e = Event {
                seq: i as u64,
                t_us: 7 * i as u64,
                lane: if i % 2 == 0 { None } else { Some(i as u64) },
                kind,
            };
            let back = Event::parse(&e.encode()).expect("round trip");
            assert_eq!(back, e, "variant #{i}");
        }
    }

    #[test]
    fn unknown_tag_is_a_schema_error() {
        let line = r#"{"seq":0,"t_us":1,"ev":"bogus"}"#;
        assert!(Event::parse(line).is_err());
    }

    #[test]
    fn missing_field_is_a_schema_error() {
        let line = r#"{"seq":0,"t_us":1,"ev":"cancel"}"#;
        assert!(Event::parse(line)
            .unwrap_err()
            .to_string()
            .contains("engine"));
    }
}
